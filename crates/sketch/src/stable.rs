//! Classical p-stable linear sketches for `ℓ₁` and `ℓ₂` norms.
//!
//! A p-stable sketch multiplies the input by a random matrix whose entries are i.i.d.
//! p-stable random variables; each coordinate of the sketched vector is then distributed
//! as `‖x‖_p · S` for a standard p-stable `S`, and a robust location estimator (the
//! median of absolute values for `p = 1`, the scaled median or root-mean-square for
//! `p = 2`) recovers the norm. These are the "linear sketches for ℓ_p" the paper cites
//! from [5, 57] and the simplest members of the family the max-stability sketch
//! ([`crate::maxstable`]) generalises to `κ > 2`.

use crate::error::{Result, SketchError};
use ips_linalg::random::{standard_cauchy, standard_gaussian};
use ips_linalg::{DenseVector, Matrix};
use rand::Rng;

/// Which stable distribution the sketch uses, i.e. which norm it estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StableKind {
    /// Cauchy entries: estimates `‖x‖₁` via the median of absolute coordinates.
    Cauchy,
    /// Gaussian entries: estimates `‖x‖₂` via the root-mean-square of coordinates.
    Gaussian,
}

/// A dense p-stable linear sketch `x ↦ Πx` with `rows` output coordinates.
#[derive(Debug, Clone)]
pub struct StableSketch {
    kind: StableKind,
    matrix: Matrix,
}

impl StableSketch {
    /// Samples a sketch of the given kind for `dim`-dimensional inputs with `rows`
    /// output coordinates.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        kind: StableKind,
        dim: usize,
        rows: usize,
    ) -> Result<Self> {
        if dim == 0 || rows == 0 {
            return Err(SketchError::InvalidParameter {
                name: "dim/rows",
                reason: format!("sketch dimensions must be positive, got {dim} x {rows}"),
            });
        }
        let mut matrix = Matrix::zeros(rows, dim);
        for r in 0..rows {
            for c in 0..dim {
                let value = match kind {
                    StableKind::Cauchy => standard_cauchy(rng),
                    StableKind::Gaussian => standard_gaussian(rng),
                };
                matrix.set(r, c, value);
            }
        }
        Ok(Self { kind, matrix })
    }

    /// The sketch kind.
    pub fn kind(&self) -> StableKind {
        self.kind
    }

    /// Number of output coordinates.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Applies the sketch to a vector.
    pub fn apply(&self, x: &DenseVector) -> Result<DenseVector> {
        if x.dim() != self.dim() {
            return Err(SketchError::DimensionMismatch {
                expected: self.dim(),
                actual: x.dim(),
            });
        }
        Ok(self.matrix.matvec(x)?)
    }

    /// Estimates the relevant norm (`‖x‖₁` for Cauchy, `‖x‖₂` for Gaussian) from the
    /// sketched vector.
    pub fn estimate_norm(&self, x: &DenseVector) -> Result<f64> {
        let sketched = self.apply(x)?;
        Ok(match self.kind {
            StableKind::Cauchy => median_abs(sketched.as_slice()),
            StableKind::Gaussian => {
                // E[(gᵀx)²] = ‖x‖₂², so the RMS of the coordinates estimates ‖x‖₂.
                (sketched.norm_sq() / sketched.dim() as f64).sqrt()
            }
        })
    }
}

/// Median of absolute values (the standard Cauchy location estimator).
pub fn median_abs(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut abs: Vec<f64> = values.iter().map(|v| v.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in sketch output"));
    let mid = abs.len() / 2;
    if abs.len() % 2 == 1 {
        abs[mid]
    } else {
        0.5 * (abs[mid - 1] + abs[mid])
    }
}

/// Median of a slice (used for boosting independent estimates).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in estimates"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x57AB1E)
    }

    #[test]
    fn parameter_validation() {
        let mut r = rng();
        assert!(StableSketch::sample(&mut r, StableKind::Cauchy, 0, 5).is_err());
        assert!(StableSketch::sample(&mut r, StableKind::Gaussian, 5, 0).is_err());
        let s = StableSketch::sample(&mut r, StableKind::Cauchy, 8, 16).unwrap();
        assert_eq!(s.kind(), StableKind::Cauchy);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.rows(), 16);
        assert!(s.apply(&DenseVector::zeros(3)).is_err());
    }

    #[test]
    fn median_helpers() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_abs(&[-4.0, 1.0, -2.0]), 2.0);
        assert_eq!(median_abs(&[]), 0.0);
    }

    #[test]
    fn gaussian_sketch_estimates_l2_norm() {
        let mut r = rng();
        let dim = 32;
        let sketch = StableSketch::sample(&mut r, StableKind::Gaussian, dim, 600).unwrap();
        for _ in 0..5 {
            let x = random_unit_vector(&mut r, dim).unwrap().scaled(3.0);
            let est = sketch.estimate_norm(&x).unwrap();
            assert!(
                (est - 3.0).abs() / 3.0 < 0.15,
                "estimate {est} too far from 3.0"
            );
        }
    }

    #[test]
    fn cauchy_sketch_estimates_l1_norm() {
        let mut r = rng();
        let dim = 32;
        let sketch = StableSketch::sample(&mut r, StableKind::Cauchy, dim, 800).unwrap();
        for _ in 0..5 {
            let x = random_unit_vector(&mut r, dim).unwrap();
            let l1 = x.lp_norm(1.0).unwrap();
            let est = sketch.estimate_norm(&x).unwrap();
            assert!(
                (est - l1).abs() / l1 < 0.2,
                "estimate {est} too far from {l1}"
            );
        }
    }

    #[test]
    fn sketch_is_linear() {
        let mut r = rng();
        let dim = 10;
        let sketch = StableSketch::sample(&mut r, StableKind::Gaussian, dim, 20).unwrap();
        let x = random_unit_vector(&mut r, dim).unwrap();
        let y = random_unit_vector(&mut r, dim).unwrap();
        let combined = x.scaled(2.0).add(&y.scaled(-0.5)).unwrap();
        let lhs = sketch.apply(&combined).unwrap();
        let rhs = sketch
            .apply(&x)
            .unwrap()
            .scaled(2.0)
            .add(&sketch.apply(&y).unwrap().scaled(-0.5))
            .unwrap();
        for i in 0..lhs.dim() {
            assert!((lhs[i] - rhs[i]).abs() < 1e-9);
        }
    }
}
