//! # ips-sketch
//!
//! Linear sketches for `ℓ_p` norms and the unsigned `c`-MIPS data structure of
//! Section 4.3 of the paper.
//!
//! The paper's final upper bound sidesteps LSH entirely: view the data set as an
//! `n × d` matrix `A`; then for a query `q` the vector of inner products is `Aq` and the
//! unsigned maximum inner product is `‖Aq‖_∞`. Estimating `‖Aq‖_∞` directly is hard, but
//! `‖Aq‖_κ` is within a factor `n^{1/κ}` of it, and `‖·‖_κ` admits *linear* sketches of
//! dimension `Õ(n^{1−2/κ})` (Andoni's max-stability sketch, reference \[5\]). Because the
//! sketch is linear it can be pre-applied to `A`: store `Π·A` (an `Õ(n^{1−2/κ}) × d`
//! matrix) and at query time compute `‖(ΠA)q‖_∞` in `Õ(d·n^{1−2/κ})` time — a
//! `c ≈ n^{−1/κ}` approximation of the maximum absolute inner product.
//!
//! Modules:
//!
//! * [`stable`] — classical p-stable sketches (Cauchy for `ℓ₁`, Gaussian for `ℓ₂`) with
//!   median estimators, the textbook substrate the max-stability construction builds on;
//! * [`maxstable`] — the max-stability sketch for `ℓ_κ`, `κ ≥ 2`;
//! * [`linf_mips`] — the `‖Aq‖_∞` estimator (value only);
//! * [`recovery`] — the bit-by-bit / prefix-tree index recovery structure that also
//!   returns *which* row attains (approximately) the maximum;
//! * [`join`] — the unsigned `(cs, s)` join built on top of the recovery structure,
//!   including the query-scaling reduction described in the paper;
//! * [`cost`] — closed-form build/query flop predictions for the adaptive join
//!   planner in `ips-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod error;
pub mod join;
pub mod linf_mips;
pub mod maxstable;
pub mod recovery;
pub mod stable;

pub use error::{Result, SketchError};
pub use linf_mips::MaxIpEstimator;
pub use maxstable::MaxStableSketch;
pub use recovery::SketchMipsIndex;
