//! Unsigned `(cs, s)` join and `c`-MIPS reductions built on the sketch structures.
//!
//! Two reductions from Section 4.3 are implemented:
//!
//! * [`sketch_unsigned_join`]: the unsigned `(cs, s)` join between `P` and `Q` computed
//!   by building one [`SketchMipsIndex`] over `P` and querying it with every `q ∈ Q`;
//!   each reported pair is verified exactly against `cs`, so false positives are
//!   impossible (the approximation only affects recall, exactly as in Definition 1).
//! * [`c_mips_via_threshold_search`]: the paper's observation that unsigned `c`-MIPS can
//!   be solved by a data structure for unsigned `(cs, s)` *search* by scaling the query
//!   up (`q/cⁱ`) until the threshold fires — "intuitively, we are scaling up the query
//!   until the largest inner product becomes larger than the threshold s".

use crate::error::{Result, SketchError};
use crate::linf_mips::MaxIpConfig;
use crate::recovery::{MipsCandidate, SketchMipsIndex};
use ips_linalg::DenseVector;
use rand::Rng;

/// One pair reported by the sketch-based join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Index into the data set `P`.
    pub data_index: usize,
    /// Index into the query set `Q`.
    pub query_index: usize,
    /// The exact inner product of the pair.
    pub inner_product: f64,
}

/// Computes the unsigned `(cs, s)` join: for every query, the sketch index proposes a
/// candidate maximiser which is kept when its *exact* absolute inner product reaches
/// `cs`.
pub fn sketch_unsigned_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    cs: f64,
    config: MaxIpConfig,
    leaf_size: usize,
) -> Result<Vec<JoinPair>> {
    if queries.is_empty() {
        return Err(SketchError::EmptyDataSet);
    }
    if cs < 0.0 {
        return Err(SketchError::InvalidParameter {
            name: "cs",
            reason: format!("approximate threshold must be nonnegative, got {cs}"),
        });
    }
    let index = SketchMipsIndex::build(rng, data.to_vec(), config, leaf_size)?;
    let mut out = Vec::new();
    for (j, q) in queries.iter().enumerate() {
        let candidate = index.query(q)?;
        if candidate.inner_product.abs() >= cs {
            out.push(JoinPair {
                data_index: candidate.index,
                query_index: j,
                inner_product: candidate.inner_product,
            });
        }
    }
    Ok(out)
}

/// A data structure answering unsigned `(cs, s)` *search* queries: given a query `q`, it
/// returns some index whose absolute inner product with `q` is at least `cs`, under the
/// promise that some point reaches `s`; otherwise it may return `None`.
pub trait ThresholdSearch {
    /// The threshold `s` the structure was built for.
    fn threshold(&self) -> f64;

    /// The approximation factor `c ∈ (0, 1)`.
    fn approximation(&self) -> f64;

    /// Answers one search query.
    fn search(&self, q: &DenseVector) -> Result<Option<MipsCandidate>>;
}

/// Solves unsigned `c`-MIPS through a [`ThresholdSearch`] structure by query scaling:
/// the query is repeatedly divided by `c` (i.e. effectively scaled up) until the
/// structure reports a point, following the reduction described in Section 4.3. `gamma`
/// is the smallest inner product that should still be recovered (the paper's numerical
/// precision floor); the number of probes is `⌈log_{1/c}(s/γ)⌉ + 1`.
pub fn c_mips_via_threshold_search<T: ThresholdSearch>(
    structure: &T,
    query: &DenseVector,
    gamma: f64,
) -> Result<Option<MipsCandidate>> {
    let c = structure.approximation();
    if !(c > 0.0 && c < 1.0) {
        return Err(SketchError::InvalidParameter {
            name: "approximation",
            reason: format!("approximation factor must be in (0,1), got {c}"),
        });
    }
    if !(gamma > 0.0) {
        return Err(SketchError::InvalidParameter {
            name: "gamma",
            reason: format!("precision floor must be positive, got {gamma}"),
        });
    }
    let s = structure.threshold();
    let max_probes = ((s / gamma).ln() / (1.0 / c).ln()).ceil().max(0.0) as usize + 1;
    let mut best: Option<MipsCandidate> = None;
    for i in 0..max_probes {
        let scaled = query.scaled(1.0 / c.powi(i as i32));
        if let Some(candidate) = structure.search(&scaled)? {
            // Recompute the inner product against the *original* query.
            let better = best
                .as_ref()
                .map(|b| candidate.inner_product.abs() / c.powi(i as i32) > b.inner_product.abs())
                .unwrap_or(true);
            if better {
                best = Some(MipsCandidate {
                    index: candidate.index,
                    inner_product: candidate.inner_product / (1.0 / c.powi(i as i32)),
                });
            }
            // The first probe that fires already gives a c-approximation; keep going is
            // unnecessary, mirroring the paper's argument.
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x30AF)
    }

    fn config() -> MaxIpConfig {
        MaxIpConfig {
            kappa: 2.0,
            copies: 15,
            rows: None,
        }
    }

    #[test]
    fn join_rejects_bad_inputs() {
        let mut r = rng();
        let data = vec![DenseVector::from(&[1.0, 0.0][..])];
        assert!(sketch_unsigned_join(&mut r, &data, &[], 0.5, config(), 4).is_err());
        let queries = vec![DenseVector::from(&[1.0, 0.0][..])];
        assert!(sketch_unsigned_join(&mut r, &data, &queries, -1.0, config(), 4).is_err());
        assert!(sketch_unsigned_join(&mut r, &[], &queries, 0.5, config(), 4).is_err());
    }

    #[test]
    fn join_finds_planted_pairs_and_rejects_low_ones() {
        let mut r = rng();
        let dim = 16;
        let n = 96;
        // Background with tiny inner products; two planted partners for queries 0 and 2.
        let mut data: Vec<DenseVector> = (0..n)
            .map(|_| random_unit_vector(&mut r, dim).unwrap().scaled(0.05))
            .collect();
        let queries: Vec<DenseVector> = (0..4)
            .map(|_| random_unit_vector(&mut r, dim).unwrap())
            .collect();
        data[10] = queries[0].scaled(6.0);
        data[40] = queries[2].scaled(-5.0);
        let pairs = sketch_unsigned_join(&mut r, &data, &queries, 2.0, config(), 8).unwrap();
        let found: Vec<(usize, usize)> = pairs
            .iter()
            .map(|p| (p.data_index, p.query_index))
            .collect();
        assert!(
            found.contains(&(10, 0)),
            "missing planted pair for query 0: {found:?}"
        );
        assert!(
            found.contains(&(40, 2)),
            "missing planted pair for query 2: {found:?}"
        );
        // Queries 1 and 3 have no partner above the threshold; every reported pair must
        // genuinely clear cs (no false positives by construction).
        for p in &pairs {
            assert!(p.inner_product.abs() >= 2.0);
            assert!(p.query_index != 1 && p.query_index != 3);
        }
    }

    /// A trivially correct threshold-search structure used to exercise the query-scaling
    /// reduction.
    struct ExactThresholdSearch {
        data: Vec<DenseVector>,
        s: f64,
        c: f64,
    }

    impl ThresholdSearch for ExactThresholdSearch {
        fn threshold(&self) -> f64 {
            self.s
        }

        fn approximation(&self) -> f64 {
            self.c
        }

        fn search(&self, q: &DenseVector) -> Result<Option<MipsCandidate>> {
            for (i, p) in self.data.iter().enumerate() {
                let ip = p.dot(q)?;
                if ip.abs() >= self.c * self.s {
                    return Ok(Some(MipsCandidate {
                        index: i,
                        inner_product: ip,
                    }));
                }
            }
            Ok(None)
        }
    }

    #[test]
    fn query_scaling_recovers_small_maxima() {
        let mut r = rng();
        let dim = 8;
        let q = random_unit_vector(&mut r, dim).unwrap();
        // The best inner product (0.3) is far below the structure's threshold s = 4, so
        // only the scaling loop can find it.
        let data = vec![
            random_unit_vector(&mut r, dim).unwrap().scaled(0.01),
            q.scaled(0.3),
            random_unit_vector(&mut r, dim).unwrap().scaled(0.02),
        ];
        let structure = ExactThresholdSearch {
            data,
            s: 4.0,
            c: 0.5,
        };
        let result = c_mips_via_threshold_search(&structure, &q, 1e-3)
            .unwrap()
            .expect("the scaled query must eventually fire");
        assert_eq!(result.index, 1);
        assert!((result.inner_product - 0.3).abs() < 1e-9);
    }

    #[test]
    fn query_scaling_validates_parameters() {
        let structure = ExactThresholdSearch {
            data: vec![DenseVector::from(&[1.0][..])],
            s: 1.0,
            c: 1.5,
        };
        let q = DenseVector::from(&[1.0][..]);
        assert!(c_mips_via_threshold_search(&structure, &q, 1e-3).is_err());
        let structure = ExactThresholdSearch {
            data: vec![DenseVector::from(&[1.0][..])],
            s: 1.0,
            c: 0.5,
        };
        assert!(c_mips_via_threshold_search(&structure, &q, 0.0).is_err());
    }
}
