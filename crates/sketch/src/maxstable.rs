//! The max-stability sketch for `ℓ_κ`, `κ ≥ 2`.
//!
//! Andoni's construction (reference \[5\] of the paper, "High frequency moments via
//! max-stability") exploits the fact that for i.i.d. exponential variables `E_i`, the
//! random variable `max_i |x_i| / E_i^{1/κ}` is Fréchet-distributed with scale `‖x‖_κ`:
//!
//! ```text
//! Pr[ max_i |x_i|/E_i^{1/κ} ≤ t ] = exp( −‖x‖_κ^κ / t^κ ).
//! ```
//!
//! Scaling every coordinate by `1/E_i^{1/κ}`, attaching a random sign, and *hashing the
//! coordinates into `m = Õ(n^{1−2/κ})` buckets* therefore produces a **linear** map `Π`
//! with `‖Πx‖_∞ = Θ(‖x‖_κ)` with constant probability: the bucket containing the
//! maximum scaled coordinate is dominated by it, while the other coordinates in the
//! bucket contribute only an `ℓ₂`-bounded noise term (this is where `m ≳ n^{1−2/κ}` is
//! needed). Taking the median over independent copies boosts the success probability —
//! that boosting lives in [`crate::linf_mips`].

use crate::error::{Result, SketchError};
use ips_linalg::random::standard_exponential;
use ips_linalg::{DenseVector, Matrix};
use rand::Rng;

/// One max-stability sketch `Π : R^n → R^m` for the `ℓ_κ` norm.
///
/// The matrix has exactly one nonzero per column: column `i` contributes
/// `σ_i / E_i^{1/κ}` to row `h(i)`.
#[derive(Debug, Clone)]
pub struct MaxStableSketch {
    kappa: f64,
    input_dim: usize,
    rows: usize,
    /// Per input coordinate: (bucket, signed scale σ_i / E_i^{1/κ}).
    columns: Vec<(usize, f64)>,
}

impl MaxStableSketch {
    /// Samples a sketch for `input_dim`-dimensional vectors with `rows` buckets.
    ///
    /// `kappa` must be at least 2 (the paper's data structure is stated for `κ ≥ 2`;
    /// smaller values have better classical sketches anyway).
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        input_dim: usize,
        rows: usize,
        kappa: f64,
    ) -> Result<Self> {
        if input_dim == 0 || rows == 0 {
            return Err(SketchError::InvalidParameter {
                name: "input_dim/rows",
                reason: format!("dimensions must be positive, got {input_dim} x {rows}"),
            });
        }
        if !(kappa >= 2.0) {
            return Err(SketchError::InvalidParameter {
                name: "kappa",
                reason: format!("kappa must be at least 2, got {kappa}"),
            });
        }
        let columns = (0..input_dim)
            .map(|_| {
                let bucket = rng.gen_range(0..rows);
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let exp = standard_exponential(rng).max(1e-300);
                (bucket, sign / exp.powf(1.0 / kappa))
            })
            .collect();
        Ok(Self {
            kappa,
            input_dim,
            rows,
            columns,
        })
    }

    /// The recommended number of buckets for an `n`-dimensional input:
    /// `⌈4 · n^{1−2/κ} · ln(n+2)⌉ + 8`, matching the `Õ(n^{1−2/κ})` bound of \[5\] with a
    /// small-instance floor.
    pub fn recommended_rows(n: usize, kappa: f64) -> usize {
        let n = n.max(1) as f64;
        (4.0 * n.powf(1.0 - 2.0 / kappa) * (n + 2.0).ln()).ceil() as usize + 8
    }

    /// The stability exponent `κ`.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Input dimension `n`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of output buckets `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Applies the sketch to a vector.
    pub fn apply(&self, x: &DenseVector) -> Result<DenseVector> {
        if x.dim() != self.input_dim {
            return Err(SketchError::DimensionMismatch {
                expected: self.input_dim,
                actual: x.dim(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, &(bucket, scale)) in self.columns.iter().enumerate() {
            out[bucket] += scale * x[i];
        }
        Ok(DenseVector::new(out))
    }

    /// Pre-applies the sketch to a matrix whose *rows* are indexed by the sketch input:
    /// returns `Π·A` where `A` is `input_dim × d`, given as a list of rows.
    ///
    /// This is the pre-computation the Section 4.3 data structure performs on the data
    /// matrix so that a query only costs `O(d·m)`.
    pub fn apply_to_rows(&self, rows: &[DenseVector]) -> Result<Matrix> {
        if rows.len() != self.input_dim {
            return Err(SketchError::DimensionMismatch {
                expected: self.input_dim,
                actual: rows.len(),
            });
        }
        let d = rows.first().ok_or(SketchError::EmptyDataSet)?.dim();
        let mut out = Matrix::zeros(self.rows, d);
        for (i, &(bucket, scale)) in self.columns.iter().enumerate() {
            let row = &rows[i];
            if row.dim() != d {
                return Err(SketchError::DimensionMismatch {
                    expected: d,
                    actual: row.dim(),
                });
            }
            for c in 0..d {
                out.set(bucket, c, out.get(bucket, c) + scale * row[c]);
            }
        }
        Ok(out)
    }

    /// Point estimate of `‖x‖_κ` from one sketch: `‖Πx‖_∞ · (ln 2)^{1/κ}` (the median
    /// correction of the Fréchet distribution).
    pub fn estimate_kappa_norm(&self, x: &DenseVector) -> Result<f64> {
        let sketched = self.apply(x)?;
        Ok(Self::estimate_from_sketched(&sketched, self.kappa))
    }

    /// Applies the Fréchet median correction to an already-sketched vector.
    pub fn estimate_from_sketched(sketched: &DenseVector, kappa: f64) -> f64 {
        sketched.max_abs() * std::f64::consts::LN_2.powf(1.0 / kappa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::median;
    use ips_linalg::random::gaussian_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x3A87)
    }

    #[test]
    fn parameter_validation() {
        let mut r = rng();
        assert!(MaxStableSketch::sample(&mut r, 0, 4, 2.0).is_err());
        assert!(MaxStableSketch::sample(&mut r, 4, 0, 2.0).is_err());
        assert!(MaxStableSketch::sample(&mut r, 4, 4, 1.5).is_err());
        let s = MaxStableSketch::sample(&mut r, 16, 8, 3.0).unwrap();
        assert_eq!(s.kappa(), 3.0);
        assert_eq!(s.input_dim(), 16);
        assert_eq!(s.rows(), 8);
        assert!(s.apply(&DenseVector::zeros(3)).is_err());
    }

    #[test]
    fn recommended_rows_grows_with_kappa() {
        // m = Õ(n^{1−2/κ}): a better approximation factor n^{1/κ} (larger κ) costs more
        // buckets, approaching linear space as κ → ∞.
        let n = 10_000;
        let m2 = MaxStableSketch::recommended_rows(n, 2.0);
        let m4 = MaxStableSketch::recommended_rows(n, 4.0);
        let m8 = MaxStableSketch::recommended_rows(n, 8.0);
        assert!(m2 < m4 && m4 < m8, "{m2} < {m4} < {m8} expected");
        assert!(m2 >= 8);
        assert!(m8 < n * 10);
    }

    #[test]
    fn sketch_is_linear() {
        let mut r = rng();
        let s = MaxStableSketch::sample(&mut r, 20, 6, 2.0).unwrap();
        let x = gaussian_vector(&mut r, 20);
        let y = gaussian_vector(&mut r, 20);
        let combined = x.scaled(1.5).add(&y.scaled(-2.0)).unwrap();
        let lhs = s.apply(&combined).unwrap();
        let rhs = s
            .apply(&x)
            .unwrap()
            .scaled(1.5)
            .add(&s.apply(&y).unwrap().scaled(-2.0))
            .unwrap();
        for i in 0..lhs.dim() {
            assert!((lhs[i] - rhs[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_estimate_is_within_constant_factor() {
        // Median over independent sketches should land within a small constant factor of
        // the true kappa-norm. Use a vector with a clearly dominant coordinate (the MIPS
        // regime the data structure targets).
        let mut r = rng();
        let n = 400;
        let kappa = 3.0;
        let mut coords = vec![0.05; n];
        coords[37] = 10.0;
        let x = DenseVector::new(coords);
        let truth = x.lp_norm(kappa).unwrap();
        let m = MaxStableSketch::recommended_rows(n, kappa);
        let estimates: Vec<f64> = (0..21)
            .map(|_| {
                MaxStableSketch::sample(&mut r, n, m, kappa)
                    .unwrap()
                    .estimate_kappa_norm(&x)
                    .unwrap()
            })
            .collect();
        let est = median(&estimates);
        let ratio = est / truth;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "estimate {est} vs truth {truth} (ratio {ratio})"
        );
    }

    #[test]
    fn apply_to_rows_commutes_with_matvec() {
        // (Π A) q must equal Π (A q): the linearity the Section 4.3 structure relies on.
        let mut r = rng();
        let n = 30;
        let d = 8;
        let s = MaxStableSketch::sample(&mut r, n, 10, 2.0).unwrap();
        let rows: Vec<DenseVector> = (0..n).map(|_| gaussian_vector(&mut r, d)).collect();
        let q = gaussian_vector(&mut r, d);
        let pre = s.apply_to_rows(&rows).unwrap();
        let lhs = pre.matvec(&q).unwrap();
        let aq = DenseVector::new(rows.iter().map(|a| a.dot(&q).unwrap()).collect());
        let rhs = s.apply(&aq).unwrap();
        for i in 0..lhs.dim() {
            assert!((lhs[i] - rhs[i]).abs() < 1e-9);
        }
        // Shape errors.
        assert!(s.apply_to_rows(&rows[..5]).is_err());
    }
}
