//! Error types for the sketch crate, on the workspace error pattern
//! ([`ips_linalg::define_error!`]).

use ips_linalg::LinalgError;

ips_linalg::define_error! {
    /// Errors produced by sketch construction and queries.
    #[derive(Clone, PartialEq)]
    SketchError, Result {
        variants {
            /// A vector had the wrong dimensionality.
            DimensionMismatch {
                /// Expected dimension.
                expected: usize,
                /// Offending dimension.
                actual: usize,
            } => ("dimension mismatch: expected {expected}, got {actual}"),
            /// A parameter was outside its legal range.
            InvalidParameter {
                /// Name of the offending parameter.
                name: &'static str,
                /// Explanation of the constraint that was violated.
                reason: String,
            } => ("invalid parameter `{name}`: {reason}"),
            /// A data set was empty where at least one vector was required.
            EmptyDataSet => ("data set must contain at least one vector"),
        }
        wraps {
            /// An underlying linear-algebra operation failed.
            Linalg(LinalgError) => "linear algebra error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SketchError::EmptyDataSet
            .to_string()
            .contains("at least one"));
        assert!(SketchError::DimensionMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(SketchError::InvalidParameter {
            name: "kappa",
            reason: "too small".into()
        }
        .to_string()
        .contains("kappa"));
    }

    #[test]
    fn linalg_conversion_preserves_source() {
        let e: SketchError = LinalgError::Empty { op: "norm" }.into();
        assert!(matches!(e, SketchError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
