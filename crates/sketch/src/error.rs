//! Error types for the sketch crate.

use ips_linalg::LinalgError;
use std::fmt;

/// Result alias used throughout `ips-sketch`.
pub type Result<T> = std::result::Result<T, SketchError>;

/// Errors produced by sketch construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// A vector had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Offending dimension.
        actual: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A data set was empty where at least one vector was required.
    EmptyDataSet,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SketchError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SketchError::EmptyDataSet => write!(f, "data set must contain at least one vector"),
            SketchError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for SketchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SketchError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SketchError {
    fn from(e: LinalgError) -> Self {
        SketchError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SketchError::EmptyDataSet.to_string().contains("at least one"));
        assert!(SketchError::DimensionMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(SketchError::InvalidParameter {
            name: "kappa",
            reason: "too small".into()
        }
        .to_string()
        .contains("kappa"));
    }

    #[test]
    fn linalg_conversion_preserves_source() {
        let e: SketchError = LinalgError::Empty { op: "norm" }.into();
        assert!(matches!(e, SketchError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
