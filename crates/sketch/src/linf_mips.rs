//! Estimating the maximum absolute inner product `‖Aq‖_∞` (Section 4.3, value version).
//!
//! The estimator stores several independent pre-sketched matrices `Π_t·A` and answers a
//! query `q` with the median over `t` of `‖(Π_t A) q‖_∞` (after the Fréchet median
//! correction). Since `‖Aq‖_∞ ≤ ‖Aq‖_κ ≤ n^{1/κ}·‖Aq‖_∞`, the value returned is an
//! `n^{1/κ}`-approximation of the true maximum absolute inner product — the
//! `c ≥ 1/n^{1/κ}` guarantee of the paper — while each query costs only
//! `O(copies · d · m)` with `m = Õ(n^{1−2/κ})` instead of `O(n·d)`.

use crate::error::{Result, SketchError};
use crate::maxstable::MaxStableSketch;
use crate::stable::median;
use ips_linalg::{DenseVector, Matrix};
use rand::Rng;

/// Configuration of the `‖Aq‖_∞` estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxIpConfig {
    /// Norm exponent `κ ≥ 2`; the approximation factor is `n^{1/κ}`.
    pub kappa: f64,
    /// Number of independent sketch copies over which the median is taken.
    pub copies: usize,
    /// Number of buckets per sketch; `None` selects
    /// [`MaxStableSketch::recommended_rows`].
    pub rows: Option<usize>,
}

impl Default for MaxIpConfig {
    fn default() -> Self {
        Self {
            kappa: 2.0,
            copies: 9,
            rows: None,
        }
    }
}

/// The Section 4.3 value estimator: a stack of pre-sketched data matrices.
#[derive(Debug, Clone)]
pub struct MaxIpEstimator {
    kappa: f64,
    n: usize,
    dim: usize,
    /// One `(m × d)` pre-sketched matrix per independent copy.
    sketched: Vec<Matrix>,
}

impl MaxIpEstimator {
    /// Builds the estimator over the data rows (each row is one data vector).
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        data: &[DenseVector],
        config: MaxIpConfig,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(SketchError::EmptyDataSet);
        }
        if config.copies == 0 {
            return Err(SketchError::InvalidParameter {
                name: "copies",
                reason: "at least one sketch copy is required".into(),
            });
        }
        if !(config.kappa >= 2.0) {
            return Err(SketchError::InvalidParameter {
                name: "kappa",
                reason: format!("kappa must be at least 2, got {}", config.kappa),
            });
        }
        let n = data.len();
        let dim = data[0].dim();
        for row in data {
            if row.dim() != dim {
                return Err(SketchError::DimensionMismatch {
                    expected: dim,
                    actual: row.dim(),
                });
            }
        }
        let rows = config
            .rows
            .unwrap_or_else(|| MaxStableSketch::recommended_rows(n, config.kappa));
        let mut sketched = Vec::with_capacity(config.copies);
        for _ in 0..config.copies {
            let sketch = MaxStableSketch::sample(rng, n, rows, config.kappa)?;
            sketched.push(sketch.apply_to_rows(data)?);
        }
        Ok(Self {
            kappa: config.kappa,
            n,
            dim,
            sketched,
        })
    }

    /// Number of data vectors `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the estimator indexes no vectors (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Data dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The guaranteed approximation factor `n^{1/κ}`: the true maximum lies within
    /// `[estimate / slack, estimate · slack]` up to the sketch's constant factors.
    pub fn approximation_factor(&self) -> f64 {
        (self.n as f64).powf(1.0 / self.kappa)
    }

    /// Number of buckets per sketch copy (the `m` in the `Õ(d·m)` query cost).
    pub fn rows_per_copy(&self) -> usize {
        self.sketched.first().map_or(0, Matrix::rows)
    }

    /// The norm exponent `κ` the estimator was built with.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The pre-sketched `Π_t·A` matrices, one per independent copy (persistence
    /// accessor — together with `κ`, `n` and `d` this is the estimator's whole state).
    pub fn sketched(&self) -> &[Matrix] {
        &self.sketched
    }

    /// Reassembles an estimator from previously extracted state — the inverse of
    /// [`MaxIpEstimator::sketched`] and friends, used by snapshot persistence to
    /// restore an estimator without re-drawing its sketches.
    ///
    /// Returns an error for an invalid `κ`, an empty copy list, `n == 0`, or sketched
    /// matrices that disagree on shape (every copy must be `m × d`).
    pub fn from_raw_parts(kappa: f64, n: usize, dim: usize, sketched: Vec<Matrix>) -> Result<Self> {
        if !(kappa >= 2.0) {
            return Err(SketchError::InvalidParameter {
                name: "kappa",
                reason: format!("kappa must be at least 2, got {kappa}"),
            });
        }
        if n == 0 {
            return Err(SketchError::EmptyDataSet);
        }
        let first_rows = match sketched.first() {
            Some(m) => m.rows(),
            None => {
                return Err(SketchError::InvalidParameter {
                    name: "sketched",
                    reason: "at least one sketch copy is required".into(),
                })
            }
        };
        for m in &sketched {
            if m.cols() != dim || m.rows() != first_rows {
                return Err(SketchError::InvalidParameter {
                    name: "sketched",
                    reason: format!(
                        "every copy must be {first_rows}x{dim}, got {}x{}",
                        m.rows(),
                        m.cols()
                    ),
                });
            }
        }
        Ok(Self {
            kappa,
            n,
            dim,
            sketched,
        })
    }

    /// Estimates `‖Aq‖_κ` (which sandwiches `‖Aq‖_∞` within `n^{1/κ}`).
    pub fn estimate(&self, q: &DenseVector) -> Result<f64> {
        if q.dim() != self.dim {
            return Err(SketchError::DimensionMismatch {
                expected: self.dim,
                actual: q.dim(),
            });
        }
        let estimates: Vec<f64> = self
            .sketched
            .iter()
            .map(|m| {
                let sk = m.matvec(q)?;
                Ok(MaxStableSketch::estimate_from_sketched(&sk, self.kappa))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(median(&estimates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::random::{gaussian_vector, random_unit_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x11F)
    }

    #[test]
    fn build_validation() {
        let mut r = rng();
        let data = vec![gaussian_vector(&mut r, 6); 10];
        assert!(MaxIpEstimator::build(&mut r, &[], MaxIpConfig::default()).is_err());
        let bad_copies = MaxIpConfig {
            copies: 0,
            ..Default::default()
        };
        assert!(MaxIpEstimator::build(&mut r, &data, bad_copies).is_err());
        let bad_kappa = MaxIpConfig {
            kappa: 1.0,
            ..Default::default()
        };
        assert!(MaxIpEstimator::build(&mut r, &data, bad_kappa).is_err());
        let mut mixed = data.clone();
        mixed.push(gaussian_vector(&mut r, 5));
        assert!(MaxIpEstimator::build(&mut r, &mixed, MaxIpConfig::default()).is_err());
        let est = MaxIpEstimator::build(&mut r, &data, MaxIpConfig::default()).unwrap();
        assert_eq!(est.len(), 10);
        assert!(!est.is_empty());
        assert_eq!(est.dim(), 6);
        assert!(est.rows_per_copy() > 0);
        assert!(est.estimate(&DenseVector::zeros(3)).is_err());
    }

    #[test]
    fn approximation_factor_formula() {
        let mut r = rng();
        let data = vec![gaussian_vector(&mut r, 4); 100];
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 3,
            rows: Some(16),
        };
        let est = MaxIpEstimator::build(&mut r, &data, config).unwrap();
        assert!((est.approximation_factor() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn planted_large_inner_product_is_detected() {
        // Background points nearly orthogonal to the query; one planted point aligned
        // with it. The estimate must be much closer to the planted value than to the
        // background noise level.
        let mut r = rng();
        let dim = 24;
        let n = 300;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data: Vec<DenseVector> = (0..n)
            .map(|_| random_unit_vector(&mut r, dim).unwrap().scaled(0.2))
            .collect();
        data[123] = query.scaled(5.0); // inner product 5 with the query
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 15,
            rows: None,
        };
        let est = MaxIpEstimator::build(&mut r, &data, config).unwrap();
        let value = est.estimate(&query).unwrap();
        // True max-|IP| is 5; the kappa-norm of Aq is at most sqrt(5² + n·0.2²) ≈ 6.1.
        assert!(
            value > 2.0 && value < 15.0,
            "estimate {value} not within a small constant factor of the planted 5.0"
        );
    }

    #[test]
    fn estimate_scales_linearly_with_query() {
        let mut r = rng();
        let dim = 12;
        let data: Vec<DenseVector> = (0..80).map(|_| gaussian_vector(&mut r, dim)).collect();
        let est = MaxIpEstimator::build(&mut r, &data, MaxIpConfig::default()).unwrap();
        let q = random_unit_vector(&mut r, dim).unwrap();
        let base = est.estimate(&q).unwrap();
        let doubled = est.estimate(&q.scaled(2.0)).unwrap();
        assert!((doubled - 2.0 * base).abs() < 1e-9 * doubled.max(1.0));
    }
}
