//! Recovering *which* vector attains the (approximate) maximum inner product.
//!
//! The value estimator of [`crate::linf_mips`] only reports `‖Aq‖_∞`; Section 4.3 of
//! the paper recovers the maximiser's *index* "bit by bit": for every prefix of the
//! index's binary representation, a separate estimator is built over the subset of data
//! vectors whose indices share that prefix, and the query walks down the implied binary
//! tree, always descending into the half with the larger estimated maximum. Every data
//! vector appears in `⌈log₂ n⌉` estimators, so space and construction time only grow by
//! a logarithmic factor.
//!
//! At the leaves (subsets of at most `leaf_size` vectors) the exact inner products are
//! computed, so the returned index is always the exact argmax *within the leaf the walk
//! ends at* — the approximation error comes only from taking wrong turns higher up.

use crate::error::{Result, SketchError};
use crate::linf_mips::{MaxIpConfig, MaxIpEstimator};
use ips_linalg::DenseVector;
use rand::Rng;

/// The result of a recovery query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MipsCandidate {
    /// Index of the recovered data vector.
    pub index: usize,
    /// The exact inner product of that vector with the query.
    pub inner_product: f64,
}

/// One node of the recovery prefix tree.
///
/// The variants are public so snapshot persistence can walk and reassemble the tree
/// (see [`SketchMipsIndex::root`] / [`SketchMipsIndex::from_raw_parts`]); ordinary
/// queries never need to touch them.
pub enum Node {
    /// An internal split: one estimator per half, and the two subtrees.
    Internal {
        /// Estimator over the vectors whose indices fall in the left half.
        estimator_left: MaxIpEstimator,
        /// Estimator over the vectors whose indices fall in the right half.
        estimator_right: MaxIpEstimator,
        /// Subtree over the left half.
        left: Box<Node>,
        /// Subtree over the right half.
        right: Box<Node>,
    },
    /// A leaf, where exact evaluation takes over.
    Leaf {
        /// Global indices of the vectors stored in this leaf.
        indices: Vec<usize>,
    },
}

/// The prefix-tree MIPS index of Section 4.3.
pub struct SketchMipsIndex {
    data: Vec<DenseVector>,
    root: Node,
    config: MaxIpConfig,
    leaf_size: usize,
}

impl SketchMipsIndex {
    /// Builds the index over the data vectors.
    ///
    /// `leaf_size` controls where the tree stops and exact evaluation takes over; it
    /// must be at least 1.
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        data: Vec<DenseVector>,
        config: MaxIpConfig,
        leaf_size: usize,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(SketchError::EmptyDataSet);
        }
        if leaf_size == 0 {
            return Err(SketchError::InvalidParameter {
                name: "leaf_size",
                reason: "leaf size must be at least 1".into(),
            });
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(SketchError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = Self::build_node(rng, &data, &indices, config, leaf_size)?;
        Ok(Self {
            data,
            root,
            config,
            leaf_size,
        })
    }

    fn build_node<R: Rng + ?Sized>(
        rng: &mut R,
        data: &[DenseVector],
        indices: &[usize],
        config: MaxIpConfig,
        leaf_size: usize,
    ) -> Result<Node> {
        if indices.len() <= leaf_size {
            return Ok(Node::Leaf {
                indices: indices.to_vec(),
            });
        }
        let mid = indices.len() / 2;
        let (left_idx, right_idx) = indices.split_at(mid);
        let left_rows: Vec<DenseVector> = left_idx.iter().map(|&i| data[i].clone()).collect();
        let right_rows: Vec<DenseVector> = right_idx.iter().map(|&i| data[i].clone()).collect();
        Ok(Node::Internal {
            estimator_left: MaxIpEstimator::build(rng, &left_rows, config)?,
            estimator_right: MaxIpEstimator::build(rng, &right_rows, config)?,
            left: Box::new(Self::build_node(rng, data, left_idx, config, leaf_size)?),
            right: Box::new(Self::build_node(rng, data, right_idx, config, leaf_size)?),
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the index holds no vectors (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The sketch configuration used per tree node.
    pub fn config(&self) -> MaxIpConfig {
        self.config
    }

    /// The leaf size used when building the tree.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// The indexed data vectors (persistence accessor).
    pub fn data(&self) -> &[DenseVector] {
        &self.data
    }

    /// The root of the prefix tree (persistence accessor).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Reassembles an index from previously extracted state — the inverse of
    /// [`SketchMipsIndex::data`] / [`SketchMipsIndex::root`] / accessors, used by
    /// snapshot persistence to restore the tree without re-drawing its sketches.
    ///
    /// Performs the same input validation as [`SketchMipsIndex::build`] plus a check
    /// that every leaf index points into `data`; it does not re-verify the estimator
    /// contents (a snapshot's checksum covers corruption).
    pub fn from_raw_parts(
        data: Vec<DenseVector>,
        root: Node,
        config: MaxIpConfig,
        leaf_size: usize,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(SketchError::EmptyDataSet);
        }
        if leaf_size == 0 {
            return Err(SketchError::InvalidParameter {
                name: "leaf_size",
                reason: "leaf size must be at least 1".into(),
            });
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(SketchError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        fn check(node: &Node, n: usize) -> Result<()> {
            match node {
                Node::Internal { left, right, .. } => {
                    check(left, n)?;
                    check(right, n)
                }
                Node::Leaf { indices } => {
                    if indices.is_empty() || indices.iter().any(|&i| i >= n) {
                        return Err(SketchError::InvalidParameter {
                            name: "root",
                            reason: "leaf holds an empty or out-of-range index list".into(),
                        });
                    }
                    Ok(())
                }
            }
        }
        check(&root, data.len())?;
        Ok(Self {
            data,
            root,
            config,
            leaf_size,
        })
    }

    /// Recovers an (approximate) maximiser of `|p_iᵀq|` by walking the prefix tree.
    pub fn query(&self, q: &DenseVector) -> Result<MipsCandidate> {
        let dim = self.data[0].dim();
        if q.dim() != dim {
            return Err(SketchError::DimensionMismatch {
                expected: dim,
                actual: q.dim(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal {
                    estimator_left,
                    estimator_right,
                    left,
                    right,
                } => {
                    let l = estimator_left.estimate(q)?;
                    let r = estimator_right.estimate(q)?;
                    node = if l >= r { left } else { right };
                }
                Node::Leaf { indices } => {
                    let mut best = MipsCandidate {
                        index: indices[0],
                        inner_product: self.data[indices[0]].dot(q)?,
                    };
                    for &i in &indices[1..] {
                        let ip = self.data[i].dot(q)?;
                        if ip.abs() > best.inner_product.abs() {
                            best = MipsCandidate {
                                index: i,
                                inner_product: ip,
                            };
                        }
                    }
                    return Ok(best);
                }
            }
        }
    }

    /// Exact (quadratic-time) maximiser of `|p_iᵀq|`, used as ground truth by the
    /// experiments.
    pub fn exact_max(&self, q: &DenseVector) -> Result<MipsCandidate> {
        let mut best: Option<MipsCandidate> = None;
        for (i, p) in self.data.iter().enumerate() {
            let ip = p.dot(q)?;
            if best
                .as_ref()
                .map(|b| ip.abs() > b.inner_product.abs())
                .unwrap_or(true)
            {
                best = Some(MipsCandidate {
                    index: i,
                    inner_product: ip,
                });
            }
        }
        best.ok_or(SketchError::EmptyDataSet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::random::{random_unit_vector, standard_gaussian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    fn background(rng: &mut StdRng, n: usize, dim: usize, scale: f64) -> Vec<DenseVector> {
        (0..n)
            .map(|_| random_unit_vector(rng, dim).unwrap().scaled(scale))
            .collect()
    }

    #[test]
    fn build_validation() {
        let mut r = rng();
        assert!(SketchMipsIndex::build(&mut r, vec![], MaxIpConfig::default(), 4).is_err());
        let data = background(&mut r, 8, 6, 1.0);
        assert!(SketchMipsIndex::build(&mut r, data.clone(), MaxIpConfig::default(), 0).is_err());
        let mut mixed = data.clone();
        mixed.push(DenseVector::zeros(5));
        assert!(SketchMipsIndex::build(&mut r, mixed, MaxIpConfig::default(), 4).is_err());
        let index = SketchMipsIndex::build(&mut r, data, MaxIpConfig::default(), 4).unwrap();
        assert_eq!(index.len(), 8);
        assert!(!index.is_empty());
        assert_eq!(index.leaf_size(), 4);
        assert_eq!(index.config(), MaxIpConfig::default());
        assert!(index.query(&DenseVector::zeros(5)).is_err());
    }

    #[test]
    fn exact_max_finds_planted_point() {
        let mut r = rng();
        let dim = 16;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data = background(&mut r, 50, dim, 0.3);
        data[17] = query.scaled(4.0);
        let index = SketchMipsIndex::build(&mut r, data, MaxIpConfig::default(), 8).unwrap();
        let exact = index.exact_max(&query).unwrap();
        assert_eq!(exact.index, 17);
        assert!((exact.inner_product - 4.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_finds_dominant_inner_product() {
        let mut r = rng();
        let dim = 20;
        let n = 128;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data = background(&mut r, n, dim, 0.1);
        data[93] = query.scaled(8.0);
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 15,
            rows: None,
        };
        let index = SketchMipsIndex::build(&mut r, data, config, 8).unwrap();
        let candidate = index.query(&query).unwrap();
        assert_eq!(candidate.index, 93, "tree walk missed the dominant point");
        assert!((candidate.inner_product - 8.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_handles_negative_dominant_inner_product() {
        // The structure is for *unsigned* MIPS: a large negative inner product must be
        // recoverable too.
        let mut r = rng();
        let dim = 20;
        let n = 64;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data = background(&mut r, n, dim, 0.1);
        data[5] = query.scaled(-7.0);
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 15,
            rows: None,
        };
        let index = SketchMipsIndex::build(&mut r, data, config, 8).unwrap();
        let candidate = index.query(&query).unwrap();
        assert_eq!(candidate.index, 5);
        assert!(candidate.inner_product < 0.0);
    }

    #[test]
    fn small_data_sets_degenerate_to_exact_search() {
        let mut r = rng();
        let dim = 10;
        let data = background(&mut r, 6, dim, 1.0);
        // leaf_size >= n: the root is a leaf and the query is exact.
        let index =
            SketchMipsIndex::build(&mut r, data.clone(), MaxIpConfig::default(), 16).unwrap();
        for _ in 0..5 {
            let q = random_unit_vector(&mut r, dim).unwrap();
            let approx = index.query(&q).unwrap();
            let exact = index.exact_max(&q).unwrap();
            assert_eq!(approx.index, exact.index);
        }
        let _ = standard_gaussian(&mut r);
    }
}
