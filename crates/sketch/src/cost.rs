//! Cost estimators for the Section 4.3 sketch structures.
//!
//! Like `ips_lsh::cost`, this module predicts what the sketch index *would*
//! cost without building it, for the adaptive join planner in `ips-core`. The
//! dominant work is dense linear algebra with exactly known shapes, so the
//! estimates are arithmetic identities over the same recursion the builder
//! runs — they just never touch a vector:
//!
//! * building one [`crate::MaxIpEstimator`] over `n` rows is `copies`
//!   applications of an `m × n` sketch to an `n × d` matrix (`m·n·d` flops
//!   each);
//! * querying it is `copies` sketched mat-vecs (`m·d` flops each);
//! * the recovery tree of [`crate::SketchMipsIndex`] builds *two* estimators
//!   per internal node (over the node's halves) and a query walks one
//!   root-to-leaf path, probing both children at every level, then re-scores
//!   the leaf exactly.
//!
//! Flops are fused multiply-add units; the per-machine nanoseconds-per-unit
//! constant is fitted by the `calibrate_planner` binary in `ips-bench`.

use crate::linf_mips::MaxIpConfig;
use crate::maxstable::MaxStableSketch;

/// The number of buckets one sketch copy uses over `n` rows: the explicit
/// `rows` override when set, [`MaxStableSketch::recommended_rows`] otherwise —
/// exactly the resolution rule of [`crate::MaxIpEstimator::build`].
pub fn resolved_rows(n: usize, config: &MaxIpConfig) -> usize {
    config
        .rows
        .unwrap_or_else(|| MaxStableSketch::recommended_rows(n, config.kappa))
}

/// Flops to build one value estimator over `n` rows of dimension `d`.
pub fn estimator_build_flops(n: usize, d: usize, config: &MaxIpConfig) -> f64 {
    (config.copies * resolved_rows(n, config) * n * d) as f64
}

/// Flops to answer one query against a value estimator over `n` rows.
pub fn estimator_query_flops(n: usize, d: usize, config: &MaxIpConfig) -> f64 {
    (config.copies * resolved_rows(n, config) * d) as f64
}

/// Flops to build the full recovery tree of [`crate::SketchMipsIndex`] over
/// `n` vectors of dimension `d` with the given leaf size.
pub fn tree_build_flops(n: usize, d: usize, config: &MaxIpConfig, leaf_size: usize) -> f64 {
    let leaf_size = leaf_size.max(1);
    if n <= leaf_size {
        return 0.0;
    }
    let mid = n / 2;
    estimator_build_flops(mid, d, config)
        + estimator_build_flops(n - mid, d, config)
        + tree_build_flops(mid, d, config, leaf_size)
        + tree_build_flops(n - mid, d, config, leaf_size)
}

/// Flops to answer one query against the recovery tree: both children's
/// estimators are probed at every internal node of the walk (which always
/// descends into the larger half first in this cost recursion — the walk's
/// *worst-case* path), plus the exact re-scoring of one leaf.
pub fn tree_query_flops(n: usize, d: usize, config: &MaxIpConfig, leaf_size: usize) -> f64 {
    let leaf_size = leaf_size.max(1);
    if n <= leaf_size {
        return (n * d) as f64;
    }
    let mid = n / 2;
    estimator_query_flops(mid, d, config)
        + estimator_query_flops(n - mid, d, config)
        + tree_query_flops(n - mid, d, config, leaf_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(rows: Option<usize>) -> MaxIpConfig {
        MaxIpConfig {
            kappa: 2.0,
            copies: 3,
            rows,
        }
    }

    #[test]
    fn resolved_rows_honours_override_and_default() {
        assert_eq!(resolved_rows(100, &config(Some(7))), 7);
        assert_eq!(
            resolved_rows(100, &config(None)),
            MaxStableSketch::recommended_rows(100, 2.0)
        );
    }

    #[test]
    fn estimator_flops_match_shapes() {
        let c = config(Some(16));
        assert_eq!(estimator_build_flops(50, 8, &c), (3 * 16 * 50 * 8) as f64);
        assert_eq!(estimator_query_flops(50, 8, &c), (3 * 16 * 8) as f64);
    }

    #[test]
    fn tree_costs_degenerate_at_the_leaf() {
        let c = config(Some(4));
        // n <= leaf_size: no estimators are built, queries are one exact scan.
        assert_eq!(tree_build_flops(6, 10, &c, 8), 0.0);
        assert_eq!(tree_query_flops(6, 10, &c, 8), 60.0);
    }

    #[test]
    fn tree_costs_grow_with_n_and_shrink_with_leaf_size() {
        let c = config(None);
        assert!(tree_build_flops(512, 16, &c, 8) > tree_build_flops(128, 16, &c, 8));
        assert!(tree_build_flops(512, 16, &c, 64) < tree_build_flops(512, 16, &c, 8));
        assert!(tree_query_flops(512, 16, &c, 8) > tree_query_flops(128, 16, &c, 8));
    }

    #[test]
    fn tree_build_counts_both_children_per_node() {
        // One internal node over n=8, leaf=4: two estimators over 4 rows each.
        let c = config(Some(5));
        let expected = 2.0 * estimator_build_flops(4, 3, &c);
        assert_eq!(tree_build_flops(8, 3, &c, 4), expected);
        // And a query probes both children then scans one 4-row leaf.
        let q = 2.0 * estimator_query_flops(4, 3, &c) + 12.0;
        assert_eq!(tree_query_flops(8, 3, &c, 4), q);
    }
}
