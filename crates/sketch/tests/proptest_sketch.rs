//! Property-based tests for the sketch layer: linearity of every sketch, the
//! `‖·‖_∞ ≤ ‖·‖_κ ≤ n^{1/κ}·‖·‖_∞` sandwich the Section 4.3 analysis rests on, and
//! consistency of the recovery structure with exact search on small inputs.

use ips_linalg::DenseVector;
use ips_sketch::linf_mips::{MaxIpConfig, MaxIpEstimator};
use ips_sketch::maxstable::MaxStableSketch;
use ips_sketch::recovery::SketchMipsIndex;
use ips_sketch::stable::{median, StableKind, StableSketch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vector(len: usize) -> impl Strategy<Value = DenseVector> {
    prop::collection::vec(-5.0f64..5.0, len).prop_map(DenseVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn max_stable_sketch_is_linear(x in vector(24), y in vector(24), alpha in -3.0f64..3.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sketch = MaxStableSketch::sample(&mut rng, 24, 8, 2.0).unwrap();
        let lhs = sketch.apply(&x.scaled(alpha).add(&y).unwrap()).unwrap();
        let rhs_a = sketch.apply(&x).unwrap().scaled(alpha);
        let rhs_b = sketch.apply(&y).unwrap();
        let rhs = rhs_a.add(&rhs_b).unwrap();
        for i in 0..lhs.dim() {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn stable_sketch_is_linear(x in vector(16), y in vector(16), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sketch = StableSketch::sample(&mut rng, StableKind::Gaussian, 16, 12).unwrap();
        let lhs = sketch.apply(&x.add(&y).unwrap()).unwrap();
        let rhs = sketch.apply(&x).unwrap().add(&sketch.apply(&y).unwrap()).unwrap();
        for i in 0..lhs.dim() {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn norm_sandwich_justifies_the_approximation(x in vector(50), kappa in 2.0f64..6.0) {
        // ||x||_inf <= ||x||_kappa <= n^{1/kappa} ||x||_inf — the inequality chain that
        // turns a kappa-norm estimate into an n^{1/kappa}-approximate max-|IP|.
        let linf = x.lp_norm(f64::INFINITY).unwrap();
        let lk = x.lp_norm(kappa).unwrap();
        let slack = (x.dim() as f64).powf(1.0 / kappa);
        prop_assert!(linf <= lk + 1e-9);
        prop_assert!(lk <= slack * linf + 1e-9);
    }

    #[test]
    fn median_is_between_min_and_max(values in prop::collection::vec(-100.0f64..100.0, 1..30)) {
        let m = median(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-12 && m <= max + 1e-12);
    }

    #[test]
    fn estimator_scales_linearly(seed in any::<u64>(), scale in 0.1f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<DenseVector> = (0..40)
            .map(|i| DenseVector::new((0..8).map(|j| ((i * 8 + j) % 7) as f64 - 3.0).collect()))
            .collect();
        let estimator = MaxIpEstimator::build(
            &mut rng,
            &data,
            MaxIpConfig { kappa: 2.0, copies: 3, rows: Some(16) },
        )
        .unwrap();
        let q = DenseVector::new(vec![0.3; 8]);
        let base = estimator.estimate(&q).unwrap();
        let scaled = estimator.estimate(&q.scaled(scale)).unwrap();
        prop_assert!((scaled - scale * base).abs() < 1e-6 * scaled.abs().max(1.0));
    }

    #[test]
    fn recovery_with_large_leaves_is_exact(seed in any::<u64>()) {
        // leaf_size >= n degenerates to an exact scan, so the recovered index must agree
        // with exact_max for every query.
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<DenseVector> = (0..12)
            .map(|i| DenseVector::new(vec![(i as f64 - 6.0) / 6.0, ((i * 3) % 5) as f64 / 5.0]))
            .collect();
        let index = SketchMipsIndex::build(&mut rng, data, MaxIpConfig::default(), 32).unwrap();
        let q = DenseVector::new(vec![0.7, -0.4]);
        let approx = index.query(&q).unwrap();
        let exact = index.exact_max(&q).unwrap();
        prop_assert!((approx.inner_product.abs() - exact.inner_product.abs()).abs() < 1e-12);
    }
}
