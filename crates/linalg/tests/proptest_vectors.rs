//! Property-based tests for the vector substrate: algebraic identities that every
//! higher-level construction in the workspace silently relies on.

use ips_linalg::ops::{concat, repeat, tensor, tensor_power};
use ips_linalg::{BinaryVector, DenseVector, SignVector};
use proptest::prelude::*;

fn dense_vec(len: usize) -> impl Strategy<Value = DenseVector> {
    prop::collection::vec(-10.0f64..10.0, len).prop_map(DenseVector::new)
}

fn bit_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_symmetric(a in dense_vec(16), b in dense_vec(16)) {
        let ab = a.dot(&b).unwrap();
        let ba = b.dot(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn dot_is_bilinear(a in dense_vec(12), b in dense_vec(12), c in dense_vec(12), alpha in -3.0f64..3.0) {
        let lhs = a.scaled(alpha).add(&b).unwrap().dot(&c).unwrap();
        let rhs = alpha * a.dot(&c).unwrap() + b.dot(&c).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn cauchy_schwarz(a in dense_vec(10), b in dense_vec(10)) {
        let ip = a.dot(&b).unwrap().abs();
        prop_assert!(ip <= a.norm() * b.norm() + 1e-9);
    }

    #[test]
    fn norm_matches_self_dot(a in dense_vec(10)) {
        prop_assert!((a.norm_sq() - a.dot(&a).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn lp_norms_are_ordered(a in dense_vec(10)) {
        // ||x||_inf <= ||x||_2 <= ||x||_1
        let linf = a.lp_norm(f64::INFINITY).unwrap();
        let l2 = a.norm();
        let l1 = a.lp_norm(1.0).unwrap();
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
    }

    #[test]
    fn normalization_gives_unit_norm(a in dense_vec(8)) {
        if a.norm() > 1e-9 {
            prop_assert!((a.normalized().unwrap().norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn concat_adds_and_tensor_multiplies(
        a1 in dense_vec(5), a2 in dense_vec(4), b1 in dense_vec(5), b2 in dense_vec(4)
    ) {
        let concat_ip = concat(&a1, &a2).dot(&concat(&b1, &b2)).unwrap();
        prop_assert!((concat_ip - (a1.dot(&b1).unwrap() + a2.dot(&b2).unwrap())).abs() < 1e-6);
        let tensor_ip = tensor(&a1, &a2).dot(&tensor(&b1, &b2)).unwrap();
        prop_assert!((tensor_ip - a1.dot(&b1).unwrap() * a2.dot(&b2).unwrap()).abs() < 1e-5);
    }

    #[test]
    fn repeat_scales_inner_product(a in dense_vec(6), b in dense_vec(6), k in 1usize..5) {
        let lhs = repeat(&a, k).dot(&repeat(&b, k)).unwrap();
        prop_assert!((lhs - k as f64 * a.dot(&b).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn tensor_power_raises_to_k(a in dense_vec(4), b in dense_vec(4), k in 0usize..4) {
        let lhs = tensor_power(&a, k).dot(&tensor_power(&b, k)).unwrap();
        let rhs = a.dot(&b).unwrap().powi(k as i32);
        let tol = 1e-5 * rhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() < tol);
    }

    #[test]
    fn binary_dot_matches_dense_conversion(xa in bit_vec(100), xb in bit_vec(100)) {
        let a = BinaryVector::from_bools(&xa);
        let b = BinaryVector::from_bools(&xb);
        let packed = a.dot(&b).unwrap() as f64;
        let dense = a.to_dense().dot(&b.to_dense()).unwrap();
        prop_assert_eq!(packed, dense);
        // Orthogonality agrees with a zero dot product.
        prop_assert_eq!(a.is_orthogonal_to(&b).unwrap(), a.dot(&b).unwrap() == 0);
    }

    #[test]
    fn binary_counts_and_hamming(xa in bit_vec(90), xb in bit_vec(90)) {
        let a = BinaryVector::from_bools(&xa);
        let b = BinaryVector::from_bools(&xb);
        // |A| + |B| = |A∩B| + |A∪B| and hamming = |A∪B| − |A∩B|.
        let inter = a.dot(&b).unwrap();
        let union = a.count_ones() + b.count_ones() - inter;
        prop_assert_eq!(a.hamming(&b).unwrap(), union - inter);
        // Jaccard stays in [0, 1].
        let j = a.jaccard(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn sign_dot_matches_dense_conversion(xa in bit_vec(70), xb in bit_vec(70)) {
        let signs_a: Vec<i8> = xa.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let signs_b: Vec<i8> = xb.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let a = SignVector::from_signs(&signs_a);
        let b = SignVector::from_signs(&signs_b);
        let packed = a.dot(&b).unwrap() as f64;
        let dense = a.to_dense().dot(&b.to_dense()).unwrap();
        prop_assert_eq!(packed, dense);
        // The dot product has the same parity as the dimension.
        prop_assert_eq!((a.dot(&b).unwrap().rem_euclid(2)) as usize, 70 % 2);
    }

    #[test]
    fn sign_negation_flips_dot(xa in bit_vec(40), xb in bit_vec(40)) {
        let signs_a: Vec<i8> = xa.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let signs_b: Vec<i8> = xb.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let a = SignVector::from_signs(&signs_a);
        let b = SignVector::from_signs(&signs_b);
        prop_assert_eq!(a.negated().dot(&b).unwrap(), -a.dot(&b).unwrap());
    }
}
