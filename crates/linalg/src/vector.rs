//! Dense real-valued vectors.
//!
//! [`DenseVector`] is the workhorse container for the real-valued domains of the paper
//! (the unit ball of radius 1 for data vectors and radius `U` for query vectors).
//! It deliberately exposes a small, allocation-conscious API: inner products, norms,
//! scaling, and the handful of constructors the embeddings need.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense vector of `f64` components.
///
/// Inner products between `DenseVector`s are the `pᵀq` quantities that the signed and
/// unsigned IPS join definitions (Definition 1 of the paper) are stated in terms of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVector {
    components: Vec<f64>,
}

impl DenseVector {
    /// Creates a vector from raw components.
    pub fn new(components: Vec<f64>) -> Self {
        Self { components }
    }

    /// Creates the all-zeros vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            components: vec![0.0; dim],
        }
    }

    /// Creates the all-ones vector of dimension `dim`.
    pub fn ones(dim: usize) -> Self {
        Self {
            components: vec![1.0; dim],
        }
    }

    /// Creates a standard basis vector `e_i` of dimension `dim`.
    ///
    /// Returns an error if `i >= dim`.
    pub fn basis(dim: usize, i: usize) -> Result<Self> {
        if i >= dim {
            return Err(LinalgError::InvalidParameter {
                name: "i",
                reason: format!("basis index {i} out of range for dimension {dim}"),
            });
        }
        let mut v = Self::zeros(dim);
        v.components[i] = 1.0;
        Ok(v)
    }

    /// Dimension (number of components) of the vector.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Read-only view of the components.
    pub fn as_slice(&self) -> &[f64] {
        &self.components
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.components
    }

    /// Consumes the vector, returning its components.
    pub fn into_vec(self) -> Vec<f64> {
        self.components
    }

    /// Inner product `selfᵀ other`.
    ///
    /// This is the similarity measure the whole paper is about; every join and search
    /// definition reduces to thresholding this value or its absolute value.
    pub fn dot(&self, other: &Self) -> Result<f64> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
                op: "dot",
            });
        }
        Ok(self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Inner product without the per-call dimension check: the hot-loop
    /// sibling of [`DenseVector::dot`] for trusted engine loops that have
    /// already validated dimensions once per batch.
    ///
    /// Accumulates in exactly the same order as [`DenseVector::dot`], so the
    /// result is bit-identical; dimensions are only checked under
    /// `debug_assertions`.
    #[inline]
    pub fn dot_unchecked_len(&self, other: &Self) -> f64 {
        debug_assert_eq!(
            self.dim(),
            other.dim(),
            "dot_unchecked_len requires equal dimensions"
        );
        crate::tile::dot_slices(&self.components, &other.components)
    }

    /// Squared Euclidean norm `‖self‖²`.
    pub fn norm_sq(&self) -> f64 {
        self.components.iter().map(|x| x * x).sum()
    }

    /// Euclidean norm `‖self‖`.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// `ℓ_p` norm for `p ≥ 1`; `p = f64::INFINITY` gives the max norm.
    pub fn lp_norm(&self, p: f64) -> Result<f64> {
        if p < 1.0 {
            return Err(LinalgError::InvalidParameter {
                name: "p",
                reason: format!("lp_norm requires p >= 1, got {p}"),
            });
        }
        if p.is_infinite() {
            return Ok(self
                .components
                .iter()
                .fold(0.0_f64, |acc, x| acc.max(x.abs())));
        }
        Ok(self
            .components
            .iter()
            .map(|x| x.abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p))
    }

    /// Squared Euclidean distance `‖self − other‖²`.
    pub fn distance_sq(&self, other: &Self) -> Result<f64> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
                op: "distance_sq",
            });
        }
        Ok(self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Euclidean distance `‖self − other‖`.
    pub fn distance(&self, other: &Self) -> Result<f64> {
        Ok(self.distance_sq(other)?.sqrt())
    }

    /// Cosine similarity `selfᵀother / (‖self‖·‖other‖)`.
    ///
    /// Returns an error when either vector has zero norm.
    pub fn cosine(&self, other: &Self) -> Result<f64> {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return Err(LinalgError::InvalidParameter {
                name: "self/other",
                reason: "cosine similarity undefined for zero-norm vectors".to_string(),
            });
        }
        Ok(self.dot(other)? / denom)
    }

    /// Returns `self` scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            components: self.components.iter().map(|x| x * factor).collect(),
        }
    }

    /// Scales the vector in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for x in &mut self.components {
            *x *= factor;
        }
    }

    /// Returns the component-wise sum `self + other`.
    pub fn add(&self, other: &Self) -> Result<Self> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
                op: "add",
            });
        }
        Ok(Self {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Returns the component-wise difference `self − other`.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
                op: "sub",
            });
        }
        Ok(Self {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Adds `factor * other` into `self` in place (axpy).
    pub fn axpy(&mut self, factor: f64, other: &Self) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
                op: "axpy",
            });
        }
        for (a, b) in self.components.iter_mut().zip(other.components.iter()) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Returns the vector negated component-wise.
    ///
    /// Negating the query set `Q` is exactly how the paper reduces the *unsigned* join
    /// to two *signed* joins (Section 1, "Problem definitions").
    pub fn negated(&self) -> Self {
        self.scaled(-1.0)
    }

    /// Returns a unit-norm copy, or an error when the vector is all zeros.
    pub fn normalized(&self) -> Result<Self> {
        let n = self.norm();
        if n == 0.0 {
            return Err(LinalgError::InvalidParameter {
                name: "self",
                reason: "cannot normalize the zero vector".to_string(),
            });
        }
        Ok(self.scaled(1.0 / n))
    }

    /// Concatenates `self` with `other`, producing a `dim() + other.dim()` vector.
    ///
    /// Concatenation adds inner products: `(x₁⊕x₂)ᵀ(y₁⊕y₂) = x₁ᵀy₁ + x₂ᵀy₂`, which is
    /// the property the paper's gap embeddings (Lemma 3) rely on.
    pub fn concat(&self, other: &Self) -> Self {
        let mut components = Vec::with_capacity(self.dim() + other.dim());
        components.extend_from_slice(&self.components);
        components.extend_from_slice(&other.components);
        Self { components }
    }

    /// Appends `value` to the end of the vector, increasing the dimension by one.
    pub fn push(&mut self, value: f64) {
        self.components.push(value);
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.components.iter()
    }

    /// Maximum absolute component.
    pub fn max_abs(&self) -> f64 {
        self.components
            .iter()
            .fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.components.iter().all(|x| x.is_finite())
    }
}

impl Index<usize> for DenseVector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.components[index]
    }
}

impl IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.components[index]
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(components: Vec<f64>) -> Self {
        Self::new(components)
    }
}

impl From<&[f64]> for DenseVector {
    fn from(components: &[f64]) -> Self {
        Self::new(components.to_vec())
    }
}

impl FromIterator<f64> for DenseVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a DenseVector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn dot_product_basic() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn unchecked_dot_is_bit_identical_to_checked() {
        let a = v(&[0.1, -2.7, 3.33, 1e-12, 123.456]);
        let b = v(&[9.9, 0.5, -1.25, 4e11, 0.003]);
        assert_eq!(
            a.dot(&b).unwrap().to_bits(),
            a.dot_unchecked_len(&b).to_bits()
        );
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norms() {
        let a = v(&[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.lp_norm(1.0).unwrap(), 7.0);
        assert_eq!(a.lp_norm(f64::INFINITY).unwrap(), 4.0);
        assert!(a.lp_norm(0.5).is_err());
    }

    #[test]
    fn distance_and_cosine() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        assert!((a.distance(&b).unwrap() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(a.cosine(&b).unwrap().abs() < 1e-12);
        let zero = DenseVector::zeros(2);
        assert!(a.cosine(&zero).is_err());
    }

    #[test]
    fn scaling_and_negation() {
        let a = v(&[1.0, -2.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.negated().as_slice(), &[-1.0, 2.0]);
        let mut b = a.clone();
        b.scale_in_place(0.5);
        assert_eq!(b.as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn add_sub_axpy() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
        assert!(a.add(&v(&[1.0])).is_err());
        assert!(a.sub(&v(&[1.0])).is_err());
        let mut d = a.clone();
        assert!(d.axpy(1.0, &v(&[1.0])).is_err());
    }

    #[test]
    fn normalization() {
        let a = v(&[3.0, 4.0]);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(DenseVector::zeros(3).normalized().is_err());
    }

    #[test]
    fn concat_adds_inner_products() {
        let x1 = v(&[1.0, 2.0]);
        let x2 = v(&[3.0]);
        let y1 = v(&[4.0, 5.0]);
        let y2 = v(&[6.0]);
        let lhs = x1.concat(&x2).dot(&y1.concat(&y2)).unwrap();
        let rhs = x1.dot(&y1).unwrap() + x2.dot(&y2).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn basis_vectors() {
        let e1 = DenseVector::basis(3, 1).unwrap();
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
        assert!(DenseVector::basis(3, 3).is_err());
    }

    #[test]
    fn indexing_and_iteration() {
        let mut a = v(&[1.0, 2.0, 3.0]);
        assert_eq!(a[2], 3.0);
        a[0] = 9.0;
        assert_eq!(a.as_slice(), &[9.0, 2.0, 3.0]);
        let total: f64 = a.iter().sum();
        assert_eq!(total, 14.0);
        let collected: DenseVector = a.iter().copied().collect();
        assert_eq!(collected, a);
    }

    #[test]
    fn max_abs_and_finite() {
        let a = v(&[-5.0, 2.0, 3.0]);
        assert_eq!(a.max_abs(), 5.0);
        assert!(a.is_finite());
        let b = v(&[f64::NAN]);
        assert!(!b.is_finite());
    }

    #[test]
    fn push_grows_dimension() {
        let mut a = DenseVector::zeros(2);
        a.push(7.0);
        assert_eq!(a.dim(), 3);
        assert_eq!(a[2], 7.0);
    }

    #[test]
    fn conversions_from_vec_and_slice() {
        let from_vec = DenseVector::from(vec![1.5, -2.5]);
        let from_slice = DenseVector::from(&[1.5, -2.5][..]);
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec.clone().into_vec(), vec![1.5, -2.5]);
        assert!(!from_vec.is_empty());
        assert!(DenseVector::zeros(0).is_empty());
    }
}
