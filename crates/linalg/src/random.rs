//! Random samplers and random vector generators.
//!
//! Only the `rand` crate is available offline, so the non-uniform distributions the
//! workspace needs are implemented here directly:
//!
//! * standard Gaussian via Box–Muller (2-stable, used by E2LSH, SimHash and
//!   Johnson–Lindenstrauss projections);
//! * standard Cauchy (1-stable, used by `ℓ₁` sketches);
//! * exponential (used to build *max-stable* sketches for `ℓ_κ`, Section 4.3);
//! * general symmetric α-stable via the Chambers–Mallows–Stuck transform.
//!
//! The module also offers convenience constructors for random dense / binary / sign
//! vectors used pervasively by tests, benchmarks and the data generators.

use crate::binary::BinaryVector;
use crate::error::{LinalgError, Result};
use crate::sign::SignVector;
use crate::vector::DenseVector;
use rand::Rng;
use std::f64::consts::PI;

/// Draws one standard Gaussian (mean 0, variance 1) sample using Box–Muller.
pub fn standard_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws one standard Cauchy sample (location 0, scale 1).
pub fn standard_cauchy<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Inverse CDF: tan(π (u − 1/2)). Keep u away from the endpoints.
    let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
    (PI * (u - 0.5)).tan()
}

/// Draws one standard exponential sample (rate 1).
pub fn standard_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln()
}

/// Draws one symmetric α-stable sample with scale 1 using the Chambers–Mallows–Stuck
/// method.
///
/// Returns an error when `alpha` is outside `(0, 2]`. For `alpha = 2` the result is a
/// Gaussian with variance 2 (the standard stable parameterisation); for `alpha = 1` it
/// is a standard Cauchy.
pub fn symmetric_stable<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> Result<f64> {
    if !(alpha > 0.0 && alpha <= 2.0) {
        return Err(LinalgError::InvalidParameter {
            name: "alpha",
            reason: format!("stability parameter must be in (0, 2], got {alpha}"),
        });
    }
    if (alpha - 1.0).abs() < 1e-12 {
        return Ok(standard_cauchy(rng));
    }
    let u: f64 = rng.gen_range(-PI / 2.0 + 1e-12..PI / 2.0 - 1e-12);
    let w: f64 = standard_exponential(rng).max(1e-300);
    let val = (alpha * u).sin() / u.cos().powf(1.0 / alpha)
        * ((u - alpha * u).cos() / w).powf((1.0 - alpha) / alpha);
    Ok(val)
}

/// Random dense vector with i.i.d. standard Gaussian entries.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> DenseVector {
    DenseVector::new((0..dim).map(|_| standard_gaussian(rng)).collect())
}

/// Random vector drawn uniformly from the unit sphere `S^{d-1}`.
pub fn random_unit_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Result<DenseVector> {
    if dim == 0 {
        return Err(LinalgError::InvalidParameter {
            name: "dim",
            reason: "cannot draw a unit vector in dimension 0".to_string(),
        });
    }
    loop {
        let v = gaussian_vector(rng, dim);
        if let Ok(u) = v.normalized() {
            return Ok(u);
        }
    }
}

/// Random vector drawn uniformly from the ball of the given radius.
pub fn random_ball_vector<R: Rng + ?Sized>(
    rng: &mut R,
    dim: usize,
    radius: f64,
) -> Result<DenseVector> {
    if radius < 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "radius",
            reason: format!("radius must be nonnegative, got {radius}"),
        });
    }
    let direction = random_unit_vector(rng, dim)?;
    // For the uniform distribution in a d-ball the radius has CDF (r/R)^d.
    let r = radius * rng.gen::<f64>().powf(1.0 / dim as f64);
    Ok(direction.scaled(r))
}

/// Random `{0,1}^d` vector where each bit is 1 independently with probability `p`.
pub fn random_binary_vector<R: Rng + ?Sized>(
    rng: &mut R,
    dim: usize,
    p: f64,
) -> Result<BinaryVector> {
    if !(0.0..=1.0).contains(&p) {
        return Err(LinalgError::InvalidParameter {
            name: "p",
            reason: format!("bit probability must be in [0,1], got {p}"),
        });
    }
    let mut v = BinaryVector::zeros(dim);
    for i in 0..dim {
        if rng.gen::<f64>() < p {
            v.set(i, true);
        }
    }
    Ok(v)
}

/// Random `{-1,+1}^d` vector with i.i.d. uniform signs.
pub fn random_sign_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> SignVector {
    let mut v = SignVector::all_minus(dim);
    for i in 0..dim {
        if rng.gen::<bool>() {
            v.set(i, 1);
        }
    }
    v
}

/// Generates a pair of unit vectors whose inner product is (exactly) `target_cos`.
///
/// Used to measure empirical collision probabilities at a prescribed similarity level.
/// Returns an error when `target_cos` is outside `[-1, 1]` or `dim < 2`.
pub fn correlated_unit_pair<R: Rng + ?Sized>(
    rng: &mut R,
    dim: usize,
    target_cos: f64,
) -> Result<(DenseVector, DenseVector)> {
    if !(-1.0..=1.0).contains(&target_cos) {
        return Err(LinalgError::InvalidParameter {
            name: "target_cos",
            reason: format!("cosine must lie in [-1,1], got {target_cos}"),
        });
    }
    if dim < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "dim",
            reason: "correlated pair needs dimension at least 2".to_string(),
        });
    }
    let a = random_unit_vector(rng, dim)?;
    // Sample b0 orthogonal to a by Gram–Schmidt, then mix.
    let mut b0 = loop {
        let candidate = random_unit_vector(rng, dim)?;
        let proj = candidate.dot(&a)?;
        let residual = candidate.sub(&a.scaled(proj))?;
        if residual.norm() > 1e-9 {
            break residual.normalized()?;
        }
    };
    let sin = (1.0 - target_cos * target_cos).max(0.0).sqrt();
    b0.scale_in_place(sin);
    let b = a.scaled(target_cos).add(&b0)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| standard_exponential(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn cauchy_median_is_zero() {
        let mut r = rng();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| standard_cauchy(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!(median.abs() < 0.05, "median = {median}");
    }

    #[test]
    fn stable_alpha_two_is_gaussian_like() {
        let mut r = rng();
        let n = 30_000;
        let var = (0..n)
            .map(|_| symmetric_stable(&mut r, 2.0).unwrap().powi(2))
            .sum::<f64>()
            / n as f64;
        // alpha=2 stable with scale 1 has variance 2.
        assert!((var - 2.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn stable_alpha_one_matches_cauchy_tail() {
        let mut r = rng();
        let n = 20_000;
        let frac_large = (0..n)
            .map(|_| symmetric_stable(&mut r, 1.0).unwrap())
            .filter(|x| x.abs() > 1.0)
            .count() as f64
            / n as f64;
        // P(|Cauchy| > 1) = 1/2.
        assert!((frac_large - 0.5).abs() < 0.03, "frac = {frac_large}");
    }

    #[test]
    fn stable_rejects_bad_alpha() {
        let mut r = rng();
        assert!(symmetric_stable(&mut r, 0.0).is_err());
        assert!(symmetric_stable(&mut r, 2.5).is_err());
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut r = rng();
        for _ in 0..20 {
            let v = random_unit_vector(&mut r, 17).unwrap();
            assert!((v.norm() - 1.0).abs() < 1e-10);
        }
        assert!(random_unit_vector(&mut r, 0).is_err());
    }

    #[test]
    fn ball_vectors_stay_inside() {
        let mut r = rng();
        for _ in 0..50 {
            let v = random_ball_vector(&mut r, 8, 2.5).unwrap();
            assert!(v.norm() <= 2.5 + 1e-10);
        }
        assert!(random_ball_vector(&mut r, 8, -1.0).is_err());
    }

    #[test]
    fn binary_density_is_respected() {
        let mut r = rng();
        let v = random_binary_vector(&mut r, 20_000, 0.3).unwrap();
        let density = v.count_ones() as f64 / 20_000.0;
        assert!((density - 0.3).abs() < 0.02, "density = {density}");
        assert!(random_binary_vector(&mut r, 10, 1.5).is_err());
    }

    #[test]
    fn sign_vector_is_balanced() {
        let mut r = rng();
        let v = random_sign_vector(&mut r, 20_000);
        let frac_plus = v.count_plus() as f64 / 20_000.0;
        assert!((frac_plus - 0.5).abs() < 0.02);
    }

    #[test]
    fn correlated_pair_hits_target() {
        let mut r = rng();
        for &target in &[-0.8, -0.2, 0.0, 0.5, 0.95] {
            let (a, b) = correlated_unit_pair(&mut r, 32, target).unwrap();
            assert!((a.norm() - 1.0).abs() < 1e-9);
            assert!((b.norm() - 1.0).abs() < 1e-9);
            assert!((a.dot(&b).unwrap() - target).abs() < 1e-9);
        }
        assert!(correlated_unit_pair(&mut r, 32, 1.5).is_err());
        assert!(correlated_unit_pair(&mut r, 1, 0.5).is_err());
    }
}
