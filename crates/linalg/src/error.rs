//! Error types shared by the linear algebra primitives, and the
//! [`define_error!`](crate::define_error) macro every workspace crate builds its
//! error type with.

/// Defines a crate error type on the workspace's one error pattern.
///
/// Every `ips-*` crate used to hand-roll the same ~100 lines: an enum of
/// descriptive variants, a `Display` impl, a `std::error::Error` impl whose
/// `source` walks into wrapped upstream errors, and one `From` impl per wrapped
/// error so cross-crate failures convert with `?` instead of being flattened
/// into strings. This macro is that pattern, stated once:
///
/// ```
/// ips_linalg::define_error! {
///     /// Errors produced by the frobnicator.
///     FrobError, FrobResult {
///         variants {
///             /// A parameter was outside its legal range.
///             InvalidParameter {
///                 /// Name of the offending parameter.
///                 name: &'static str,
///                 /// Explanation of the constraint that was violated.
///                 reason: String,
///             } => ("invalid parameter `{name}`: {reason}"),
///             /// The input was empty.
///             Empty => ("input must be non-empty"),
///         }
///         wraps {
///             /// An underlying linear-algebra operation failed.
///             Linalg(ips_linalg::LinalgError) => "linear algebra error",
///         }
///     }
/// }
///
/// let e: FrobError = ips_linalg::LinalgError::Empty { op: "dot" }.into();
/// assert!(e.to_string().starts_with("linear algebra error:"));
/// assert!(std::error::Error::source(&e).is_some());
/// ```
///
/// `variants` declares the crate's own failure modes with their `Display`
/// format (the parenthesised part is passed to `write!` verbatim, so extra
/// positional arguments work). `wraps` declares one tuple variant per upstream
/// error type; each gets its `From` impl, a `"label: {inner}"` display, and a
/// `source()` arm. The second identifier names the generated
/// `Result<T> = Result<T, Error>` alias.
///
/// The generated enum derives `Debug`; add further derives (`Clone`,
/// `PartialEq`, ...) as attributes on the invocation when every payload
/// supports them.
#[macro_export]
macro_rules! define_error {
    (
        $(#[$enum_meta:meta])*
        $name:ident, $result:ident {
            variants {
                $(
                    $(#[$vmeta:meta])*
                    $variant:ident $({
                        $( $(#[$fmeta:meta])* $field:ident: $ftype:ty ),+ $(,)?
                    })? => ( $($fmt:tt)+ ),
                )+
            }
            $(wraps {
                $(
                    $(#[$wmeta:meta])*
                    $wvariant:ident($wty:ty) => $wlabel:literal,
                )+
            })?
        }
    ) => {
        $(#[$enum_meta])*
        #[derive(Debug)]
        pub enum $name {
            $(
                $(#[$vmeta])*
                $variant $({
                    $( $(#[$fmeta])* $field: $ftype ),+
                })?,
            )+
            $($(
                $(#[$wmeta])*
                $wvariant($wty),
            )+)?
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                match self {
                    $(
                        $name::$variant $({ $($field),+ })? => write!(f, $($fmt)+),
                    )+
                    $($(
                        $name::$wvariant(inner) => write!(f, concat!($wlabel, ": {}"), inner),
                    )+)?
                }
            }
        }

        impl ::std::error::Error for $name {
            fn source(&self) -> Option<&(dyn ::std::error::Error + 'static)> {
                #[allow(unreachable_patterns)]
                match self {
                    $($(
                        $name::$wvariant(inner) => Some(inner),
                    )+)?
                    _ => None,
                }
            }
        }

        $($(
            impl ::std::convert::From<$wty> for $name {
                fn from(e: $wty) -> Self {
                    $name::$wvariant(e)
                }
            }
        )+)?

        /// Result alias for this crate's error type.
        pub type $result<T> = ::std::result::Result<T, $name>;
    };
}

crate::define_error! {
    /// Errors produced by vector / matrix operations.
    #[derive(Clone, PartialEq, Eq)]
    LinalgError, Result {
        variants {
            /// Two operands had incompatible dimensions.
            DimensionMismatch {
                /// Dimension of the left operand.
                left: usize,
                /// Dimension of the right operand.
                right: usize,
                /// Human-readable description of the operation that failed.
                op: &'static str,
            } => ("dimension mismatch in {op}: {left} vs {right}"),
            /// An operation required a non-empty vector or matrix.
            Empty {
                /// Description of the operation that failed.
                op: &'static str,
            } => ("operation {op} requires non-empty input"),
            /// A parameter was outside its legal range.
            InvalidParameter {
                /// Name of the offending parameter.
                name: &'static str,
                /// Explanation of the constraint that was violated.
                reason: String,
            } => ("invalid parameter `{name}`: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            left: 3,
            right: 4,
            op: "dot",
        };
        assert_eq!(e.to_string(), "dimension mismatch in dot: 3 vs 4");
    }

    #[test]
    fn display_empty() {
        let e = LinalgError::Empty { op: "mean" };
        assert_eq!(e.to_string(), "operation mean requires non-empty input");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = LinalgError::InvalidParameter {
            name: "kappa",
            reason: "must be >= 2".to_string(),
        };
        assert!(e.to_string().contains("kappa"));
        assert!(e.to_string().contains("must be >= 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }

    #[test]
    fn own_variants_have_no_source() {
        assert!(std::error::Error::source(&LinalgError::Empty { op: "dot" }).is_none());
    }
}
