//! Error types shared by the linear algebra primitives.

use std::fmt;

/// Result alias used throughout `ips-linalg`.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by vector / matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// An operation required a non-empty vector or matrix.
    Empty {
        /// Description of the operation that failed.
        op: &'static str,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right, op } => {
                write!(f, "dimension mismatch in {op}: {left} vs {right}")
            }
            LinalgError::Empty { op } => write!(f, "operation {op} requires non-empty input"),
            LinalgError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            left: 3,
            right: 4,
            op: "dot",
        };
        assert_eq!(e.to_string(), "dimension mismatch in dot: 3 vs 4");
    }

    #[test]
    fn display_empty() {
        let e = LinalgError::Empty { op: "mean" };
        assert_eq!(e.to_string(), "operation mean requires non-empty input");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = LinalgError::InvalidParameter {
            name: "kappa",
            reason: "must be >= 2".to_string(),
        };
        assert!(e.to_string().contains("kappa"));
        assert!(e.to_string().contains("must be >= 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
