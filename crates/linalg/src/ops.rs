//! Embedding calculus: concatenation, repetition, translation and tensoring.
//!
//! The paper composes its gap embeddings out of two primitives whose effect on inner
//! products is dual to `+` and `×`:
//!
//! * **concatenation** `x ⊕ y`: `(x₁⊕x₂)ᵀ(y₁⊕y₂) = x₁ᵀy₁ + x₂ᵀy₂`;
//! * **tensoring** `x ⊗ y` (the flattened outer product): `(x₁⊗x₂)ᵀ(y₁⊗y₂) =
//!   (x₁ᵀy₁)·(x₂ᵀy₂)`.
//!
//! This module provides these operators on [`DenseVector`] together with helpers for
//! translating inner products by constants (appending matched `+1/−1` or `1/0` blocks),
//! which is how Lemma 3's constructions shift the orthogonal / non-orthogonal gap to a
//! convenient location.

use crate::error::{LinalgError, Result};
use crate::vector::DenseVector;

/// Concatenation of two dense vectors (`⊕`).
pub fn concat(a: &DenseVector, b: &DenseVector) -> DenseVector {
    a.concat(b)
}

/// Concatenates a slice of dense vectors in order.
pub fn concat_all(vs: &[DenseVector]) -> Result<DenseVector> {
    if vs.is_empty() {
        return Err(LinalgError::Empty { op: "concat_all" });
    }
    let total: usize = vs.iter().map(DenseVector::dim).sum();
    let mut out = Vec::with_capacity(total);
    for v in vs {
        out.extend_from_slice(v.as_slice());
    }
    Ok(DenseVector::new(out))
}

/// Repeats a vector `times` times; the repeated vectors' inner product is `times` times
/// the original (the `xⁿ` notation of the paper).
pub fn repeat(v: &DenseVector, times: usize) -> DenseVector {
    let mut out = Vec::with_capacity(v.dim() * times);
    for _ in 0..times {
        out.extend_from_slice(v.as_slice());
    }
    DenseVector::new(out)
}

/// Flattened outer product `x ⊗ y` (row-major), satisfying the multiplicativity
/// identity on inner products.
pub fn tensor(a: &DenseVector, b: &DenseVector) -> DenseVector {
    let mut out = Vec::with_capacity(a.dim() * b.dim());
    for &x in a.iter() {
        for &y in b.iter() {
            out.push(x * y);
        }
    }
    DenseVector::new(out)
}

/// Appends a constant block that *translates* the inner product of a data/query pair by
/// `shift` while keeping both vectors inside the target alphabet.
///
/// For `{-1,1}` data the paper appends `1^{|shift|}` to one side and `(±1)^{|shift|}` to
/// the other (Lemma 3, embedding 1); the same trick works for arbitrary reals. The
/// returned pair `(pad_data, pad_query)` must be concatenated to the data and query
/// embeddings respectively; their mutual inner product is exactly `shift`.
pub fn translation_pad(shift: f64, block: usize) -> Result<(DenseVector, DenseVector)> {
    if block == 0 {
        if shift != 0.0 {
            return Err(LinalgError::InvalidParameter {
                name: "block",
                reason: "a zero-length pad can only realise a zero shift".to_string(),
            });
        }
        return Ok((DenseVector::zeros(0), DenseVector::zeros(0)));
    }
    // Split the shift evenly across `block` coordinates so entries stay small.
    let per_coord = shift / block as f64;
    let data = DenseVector::new(vec![1.0; block]);
    let query = DenseVector::new(vec![per_coord; block]);
    Ok((data, query))
}

/// Signed `{-1,1}` translation pad: appends `block` ones to the data side and `sign`
/// (either `+1` or `−1`) repeated `block` times to the query side, shifting the inner
/// product by `sign · block` while remaining in the `{-1,1}` alphabet.
pub fn sign_translation_pad(sign: i8, block: usize) -> (DenseVector, DenseVector) {
    let s = if sign >= 0 { 1.0 } else { -1.0 };
    (
        DenseVector::new(vec![1.0; block]),
        DenseVector::new(vec![s; block]),
    )
}

/// Tensor power `v^{⊗k}`; inner products are raised to the `k`-th power.
///
/// Returns an error for `k = 0` on an empty vector (the empty product is taken to be
/// the 1-dimensional vector `[1.0]`).
pub fn tensor_power(v: &DenseVector, k: usize) -> DenseVector {
    if k == 0 {
        return DenseVector::new(vec![1.0]);
    }
    let mut acc = v.clone();
    for _ in 1..k {
        acc = tensor(&acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn concat_adds_inner_products() {
        let x1 = dv(&[1.0, 2.0]);
        let x2 = dv(&[-1.0]);
        let y1 = dv(&[0.5, 0.5]);
        let y2 = dv(&[3.0]);
        let lhs = concat(&x1, &x2).dot(&concat(&y1, &y2)).unwrap();
        assert!((lhs - (x1.dot(&y1).unwrap() + x2.dot(&y2).unwrap())).abs() < 1e-12);
    }

    #[test]
    fn concat_all_matches_pairwise() {
        let parts = vec![dv(&[1.0]), dv(&[2.0, 3.0]), dv(&[4.0])];
        let all = concat_all(&parts).unwrap();
        assert_eq!(all.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(concat_all(&[]).is_err());
    }

    #[test]
    fn repeat_scales_inner_product() {
        let x = dv(&[1.0, -2.0]);
        let y = dv(&[3.0, 1.0]);
        let k = 5;
        let lhs = repeat(&x, k).dot(&repeat(&y, k)).unwrap();
        assert!((lhs - k as f64 * x.dot(&y).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn tensor_multiplies_inner_products() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let x1 = crate::random::gaussian_vector(&mut rng, 4);
            let x2 = crate::random::gaussian_vector(&mut rng, 3);
            let y1 = crate::random::gaussian_vector(&mut rng, 4);
            let y2 = crate::random::gaussian_vector(&mut rng, 3);
            let lhs = tensor(&x1, &x2).dot(&tensor(&y1, &y2)).unwrap();
            let rhs = x1.dot(&y1).unwrap() * x2.dot(&y2).unwrap();
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn tensor_power_raises_inner_product() {
        let x = dv(&[0.5, 0.5]);
        let y = dv(&[1.0, -1.0]);
        let k = 3;
        let lhs = tensor_power(&x, k).dot(&tensor_power(&y, k)).unwrap();
        let rhs = x.dot(&y).unwrap().powi(k as i32);
        assert!((lhs - rhs).abs() < 1e-12);
        assert_eq!(tensor_power(&x, 0).as_slice(), &[1.0]);
    }

    #[test]
    fn translation_pad_realises_shift() {
        let (pd, pq) = translation_pad(-7.5, 5).unwrap();
        assert!((pd.dot(&pq).unwrap() + 7.5).abs() < 1e-12);
        let (zd, zq) = translation_pad(0.0, 0).unwrap();
        assert_eq!(zd.dim(), 0);
        assert_eq!(zq.dim(), 0);
        assert!(translation_pad(1.0, 0).is_err());
    }

    #[test]
    fn sign_translation_pad_is_pm_one() {
        let (pd, pq) = sign_translation_pad(-1, 4);
        assert!(pd.iter().all(|&x| x == 1.0));
        assert!(pq.iter().all(|&x| x == -1.0));
        assert_eq!(pd.dot(&pq).unwrap(), -4.0);
        let (pd2, pq2) = sign_translation_pad(1, 3);
        assert_eq!(pd2.dot(&pq2).unwrap(), 3.0);
    }
}
