//! Random projections (Johnson–Lindenstrauss style).
//!
//! Several constructions in the workspace need a random linear map that roughly
//! preserves inner products: dimensionality reduction before LSH, the pseudo-random
//! rotations of cross-polytope hashing, and the third hard-sequence construction of
//! Theorem 3 (which invokes the JL lemma to obtain nearly-orthogonal vector families).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::random::standard_gaussian;
use crate::vector::DenseVector;
use rand::Rng;

/// A dense Gaussian random projection from `input_dim` to `output_dim` dimensions,
/// scaled by `1/√output_dim` so that inner products are preserved in expectation.
#[derive(Debug, Clone)]
pub struct GaussianProjection {
    matrix: Matrix,
}

impl GaussianProjection {
    /// Samples a projection with i.i.d. `N(0, 1/output_dim)` entries.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        input_dim: usize,
        output_dim: usize,
    ) -> Result<Self> {
        if input_dim == 0 || output_dim == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "dims",
                reason: format!(
                    "projection dimensions must be positive, got {input_dim} -> {output_dim}"
                ),
            });
        }
        let scale = 1.0 / (output_dim as f64).sqrt();
        let mut m = Matrix::zeros(output_dim, input_dim);
        for r in 0..output_dim {
            for c in 0..input_dim {
                m.set(r, c, scale * standard_gaussian(rng));
            }
        }
        Ok(Self { matrix: m })
    }

    /// Input dimension of the projection.
    pub fn input_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Output dimension of the projection.
    pub fn output_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Applies the projection to a vector.
    pub fn project(&self, v: &DenseVector) -> Result<DenseVector> {
        self.matrix.matvec(v)
    }

    /// Applies the projection to every vector in a slice.
    pub fn project_all(&self, vs: &[DenseVector]) -> Result<Vec<DenseVector>> {
        vs.iter().map(|v| self.project(v)).collect()
    }

    /// Target dimension sufficient for distortion `epsilon` over `count` points
    /// (`⌈8 ln(count)/ε²⌉`, the standard JL bound with a conservative constant).
    pub fn jl_dimension(count: usize, epsilon: f64) -> usize {
        let count = count.max(2) as f64;
        ((8.0 * count.ln()) / (epsilon * epsilon)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_dimensions() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(GaussianProjection::sample(&mut rng, 0, 5).is_err());
        assert!(GaussianProjection::sample(&mut rng, 5, 0).is_err());
    }

    #[test]
    fn shape_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = GaussianProjection::sample(&mut rng, 30, 10).unwrap();
        assert_eq!(p.input_dim(), 30);
        assert_eq!(p.output_dim(), 10);
        let v = random_unit_vector(&mut rng, 30).unwrap();
        assert_eq!(p.project(&v).unwrap().dim(), 10);
        assert!(p.project(&DenseVector::zeros(7)).is_err());
    }

    #[test]
    fn norms_are_roughly_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = GaussianProjection::sample(&mut rng, 100, 400).unwrap();
        let mut total = 0.0;
        let trials = 30;
        for _ in 0..trials {
            let v = random_unit_vector(&mut rng, 100).unwrap();
            total += p.project(&v).unwrap().norm_sq();
        }
        let mean = total / trials as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean squared norm {mean}");
    }

    #[test]
    fn inner_products_preserved_in_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let dim = 64;
        let (a, b) = crate::random::correlated_unit_pair(&mut rng, dim, 0.6).unwrap();
        let trials = 60;
        let mut total = 0.0;
        for _ in 0..trials {
            let p = GaussianProjection::sample(&mut rng, dim, 128).unwrap();
            total += p.project(&a).unwrap().dot(&p.project(&b).unwrap()).unwrap();
        }
        let mean = total / trials as f64;
        assert!((mean - 0.6).abs() < 0.1, "mean inner product {mean}");
    }

    #[test]
    fn project_all_maps_every_vector() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = GaussianProjection::sample(&mut rng, 16, 8).unwrap();
        let vs: Vec<DenseVector> = (0..5)
            .map(|_| random_unit_vector(&mut rng, 16).unwrap())
            .collect();
        let projected = p.project_all(&vs).unwrap();
        assert_eq!(projected.len(), 5);
        assert!(projected.iter().all(|v| v.dim() == 8));
    }

    #[test]
    fn jl_dimension_grows_with_count_and_precision() {
        assert!(
            GaussianProjection::jl_dimension(1000, 0.1) > GaussianProjection::jl_dimension(10, 0.1)
        );
        assert!(
            GaussianProjection::jl_dimension(100, 0.05)
                > GaussianProjection::jl_dimension(100, 0.2)
        );
    }
}
