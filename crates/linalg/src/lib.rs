//! # ips-linalg
//!
//! Vector, matrix and embedding algebra underpinning the `ips-join` workspace — a
//! reproduction of *"On the Complexity of Inner Product Similarity Join"*
//! (Ahle, Pagh, Razenshteyn, Silvestri; PODS 2016).
//!
//! The paper works in three vector domains, all of which are first-class here:
//!
//! * real vectors in the unit ball / `R^d` — [`DenseVector`],
//! * binary vectors `{0,1}^d` (set data) — [`BinaryVector`] (bit-packed),
//! * sign vectors `{-1,+1}^d` — [`SignVector`] (bit-packed).
//!
//! On top of the plain containers the crate provides the algebraic ingredients that
//! the paper's constructions need:
//!
//! * Chebyshev polynomials of the first kind ([`chebyshev`]), used by the
//!   deterministic Chebyshev gap embedding (Lemma 3, embedding 2);
//! * concatenation / repetition / tensoring operators ([`ops`]) — the `⊕` and `⊗`
//!   calculus the paper uses to compose embeddings;
//! * random samplers ([`random`]) for Gaussian, Cauchy, exponential and general
//!   symmetric α-stable variables (needed by E2LSH and the max-stability sketches);
//! * explicit *incoherent* vector collections ([`incoherent`]) via Reed–Solomon codes
//!   and via random Gaussian vectors, used by the symmetric LSH of Section 4.2 and by
//!   the third hard-sequence construction of Theorem 3;
//! * Johnson–Lindenstrauss style random projections ([`projection`]).
//!
//! All numeric code is dependency-light (only `rand` and `serde`) and designed so the
//! higher-level crates (`ips-lsh`, `ips-ovp`, `ips-sketch`, `ips-core`) never have to
//! re-implement inner products or norms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// The SIMD-friendly kernel layer ([`tile`]) must stay autovectorized safe
// Rust: no intrinsics or raw-pointer tricks may creep into the hot loops.
#![deny(unsafe_code)]

pub mod binary;
pub mod chebyshev;
pub mod error;
pub mod incoherent;
pub mod matrix;
pub mod ops;
pub mod projection;
pub mod random;
pub mod sign;
pub mod tile;
pub mod vector;

pub use binary::BinaryVector;
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use sign::SignVector;
pub use tile::{FloatTile, QuantTile, QuantVector};
pub use vector::DenseVector;
