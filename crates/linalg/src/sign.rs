//! Bit-packed `{-1,+1}^d` vectors.
//!
//! The sign domain is where the paper's strongest hardness results live (Theorem 1,
//! cases 1 and 2; the Chebyshev embedding of Lemma 3). For two sign vectors the inner
//! product is determined by the Hamming distance of their bit representations:
//! `xᵀy = d − 2·hamming(x, y)`, so bit-packed popcounts again give fast exact baselines.

use crate::error::{LinalgError, Result};
use crate::vector::DenseVector;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A `{-1,+1}^d` vector. Bit value 1 encodes `+1`, bit value 0 encodes `−1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignVector {
    dim: usize,
    words: Vec<u64>,
}

impl SignVector {
    /// Creates the all `−1` vector of dimension `dim`.
    pub fn all_minus(dim: usize) -> Self {
        Self {
            dim,
            words: vec![0u64; dim.div_ceil(WORD_BITS)],
        }
    }

    /// Creates the all `+1` vector of dimension `dim`.
    pub fn all_plus(dim: usize) -> Self {
        let mut v = Self::all_minus(dim);
        for i in 0..dim {
            v.set(i, 1);
        }
        v
    }

    /// Builds a sign vector from `i8` values; positive values map to `+1`, everything
    /// else to `−1`.
    pub fn from_signs(values: &[i8]) -> Self {
        let mut v = Self::all_minus(values.len());
        for (i, &x) in values.iter().enumerate() {
            v.set(i, if x > 0 { 1 } else { -1 });
        }
        v
    }

    /// Builds a sign vector from an `f64` slice by taking signs; zero maps to `+1`.
    pub fn from_dense_signs(values: &DenseVector) -> Self {
        let mut v = Self::all_minus(values.dim());
        for i in 0..values.dim() {
            v.set(i, if values[i] < 0.0 { -1 } else { 1 });
        }
        v
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns component `i` as `+1` or `−1`.
    ///
    /// # Panics
    /// Panics if `i >= dim()`.
    pub fn get(&self, i: usize) -> i8 {
        assert!(i < self.dim, "index {i} out of range for dim {}", self.dim);
        if (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Sets component `i`; positive values store `+1`, everything else `−1`.
    ///
    /// # Panics
    /// Panics if `i >= dim()`.
    pub fn set(&mut self, i: usize, value: i8) {
        assert!(i < self.dim, "index {i} out of range for dim {}", self.dim);
        let word = i / WORD_BITS;
        let bit = i % WORD_BITS;
        if value > 0 {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Number of `+1` entries.
    pub fn count_plus(&self) -> usize {
        // Mask out the padding bits in the last word before counting.
        let mut total = 0usize;
        for (w, &word) in self.words.iter().enumerate() {
            let masked = if (w + 1) * WORD_BITS <= self.dim {
                word
            } else {
                let valid = self.dim - w * WORD_BITS;
                if valid == 0 {
                    0
                } else {
                    word & (u64::MAX >> (WORD_BITS - valid))
                }
            };
            total += masked.count_ones() as usize;
        }
        total
    }

    /// Hamming distance: the number of positions where the signs differ.
    pub fn hamming(&self, other: &Self) -> Result<usize> {
        if self.dim != other.dim {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
                op: "sign hamming",
            });
        }
        let mut total = 0usize;
        for (w, (&a, &b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let x = a ^ b;
            let masked = if (w + 1) * WORD_BITS <= self.dim {
                x
            } else {
                let valid = self.dim - w * WORD_BITS;
                if valid == 0 {
                    0
                } else {
                    x & (u64::MAX >> (WORD_BITS - valid))
                }
            };
            total += masked.count_ones() as usize;
        }
        Ok(total)
    }

    /// Inner product `xᵀy = d − 2·hamming(x, y)` as a signed integer.
    pub fn dot(&self, other: &Self) -> Result<i64> {
        let h = self.hamming(other)? as i64;
        Ok(self.dim as i64 - 2 * h)
    }

    /// Converts to a dense `f64` vector with entries in `{−1.0, +1.0}`.
    pub fn to_dense(&self) -> DenseVector {
        DenseVector::new((0..self.dim).map(|i| f64::from(self.get(i))).collect())
    }

    /// Component-wise negation.
    pub fn negated(&self) -> Self {
        let mut out = Self::all_minus(self.dim);
        for i in 0..self.dim {
            out.set(i, -self.get(i));
        }
        out
    }

    /// Concatenates two sign vectors.
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::all_minus(self.dim + other.dim);
        for i in 0..self.dim {
            out.set(i, self.get(i));
        }
        for j in 0..other.dim {
            out.set(self.dim + j, other.get(j));
        }
        out
    }

    /// Repeats the vector `times` times (self-concatenation), scaling the inner product
    /// by `times` — the `xⁿ` operator of the paper's embedding calculus.
    pub fn repeat(&self, times: usize) -> Self {
        let mut out = Self::all_minus(self.dim * times);
        for t in 0..times {
            for i in 0..self.dim {
                out.set(t * self.dim + i, self.get(i));
            }
        }
        out
    }

    /// Tensor (outer) product flattened row-major: `(x ⊗ y)[i·m + j] = x[i]·y[j]`.
    ///
    /// Satisfies `(x₁⊗x₂)ᵀ(y₁⊗y₂) = (x₁ᵀy₁)(x₂ᵀy₂)`, the multiplicative counterpart of
    /// concatenation used by the Chebyshev gap embedding.
    pub fn tensor(&self, other: &Self) -> Self {
        let mut out = Self::all_minus(self.dim * other.dim);
        for i in 0..self.dim {
            for j in 0..other.dim {
                out.set(i * other.dim + j, self.get(i) * other.get(j));
            }
        }
        out
    }

    /// Iterator over the components as `i8` signs.
    pub fn iter_signs(&self) -> impl Iterator<Item = i8> + '_ {
        (0..self.dim).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = SignVector::all_minus(70);
        assert_eq!(v.get(0), -1);
        v.set(0, 1);
        v.set(69, 1);
        assert_eq!(v.get(0), 1);
        assert_eq!(v.get(69), 1);
        assert_eq!(v.count_plus(), 2);
        v.set(0, -1);
        assert_eq!(v.count_plus(), 1);
    }

    #[test]
    fn dot_matches_dense() {
        let a = SignVector::from_signs(&[1, -1, 1, 1, -1]);
        let b = SignVector::from_signs(&[1, 1, -1, 1, -1]);
        let expected = a.to_dense().dot(&b.to_dense()).unwrap();
        assert_eq!(a.dot(&b).unwrap() as f64, expected);
    }

    #[test]
    fn dot_of_identical_is_dim() {
        let a = SignVector::all_plus(100);
        assert_eq!(a.dot(&a).unwrap(), 100);
        let b = a.negated();
        assert_eq!(a.dot(&b).unwrap(), -100);
    }

    #[test]
    fn hamming_counts_disagreements() {
        let a = SignVector::from_signs(&[1, 1, -1]);
        let b = SignVector::from_signs(&[1, -1, 1]);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert!(a.hamming(&SignVector::all_plus(4)).is_err());
    }

    #[test]
    fn padding_bits_do_not_leak() {
        // dim not a multiple of 64: padding bits must not contribute to counts.
        let a = SignVector::all_plus(65);
        let b = SignVector::all_minus(65);
        assert_eq!(a.count_plus(), 65);
        assert_eq!(b.count_plus(), 0);
        assert_eq!(a.hamming(&b).unwrap(), 65);
        assert_eq!(a.dot(&b).unwrap(), -65);
    }

    #[test]
    fn concat_adds_dots() {
        let x1 = SignVector::from_signs(&[1, -1]);
        let x2 = SignVector::from_signs(&[1, 1, 1]);
        let y1 = SignVector::from_signs(&[-1, -1]);
        let y2 = SignVector::from_signs(&[1, -1, 1]);
        let lhs = x1.concat(&x2).dot(&y1.concat(&y2)).unwrap();
        let rhs = x1.dot(&y1).unwrap() + x2.dot(&y2).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn tensor_multiplies_dots() {
        let x1 = SignVector::from_signs(&[1, -1, 1]);
        let x2 = SignVector::from_signs(&[1, 1]);
        let y1 = SignVector::from_signs(&[-1, -1, 1]);
        let y2 = SignVector::from_signs(&[1, -1]);
        let lhs = x1.tensor(&x2).dot(&y1.tensor(&y2)).unwrap();
        let rhs = x1.dot(&y1).unwrap() * x2.dot(&y2).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn repeat_scales_dot() {
        let x = SignVector::from_signs(&[1, -1, 1]);
        let y = SignVector::from_signs(&[1, 1, 1]);
        assert_eq!(
            x.repeat(4).dot(&y.repeat(4)).unwrap(),
            4 * x.dot(&y).unwrap()
        );
    }

    #[test]
    fn from_dense_signs_thresholds_at_zero() {
        let d = DenseVector::from(&[-0.5, 0.0, 2.0][..]);
        let s = SignVector::from_dense_signs(&d);
        assert_eq!(s.get(0), -1);
        assert_eq!(s.get(1), 1);
        assert_eq!(s.get(2), 1);
        let signs: Vec<i8> = s.iter_signs().collect();
        assert_eq!(signs, vec![-1, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let v = SignVector::all_plus(3);
        let _ = v.get(3);
    }
}
