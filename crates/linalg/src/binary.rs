//! Bit-packed `{0,1}^d` vectors.
//!
//! The `{0,1}` domain is the "set" domain of the paper: vectors represent sets, the
//! inner product is the size of the intersection, and the Orthogonal Vectors Problem
//! (OVP, Definition 3) as well as the third gap embedding of Lemma 3 live here.
//! Bit-packing into `u64` words gives a 64× speed-up for inner products (a popcount per
//! word), which matters because the exact OVP solvers and brute-force joins are the
//! quadratic baselines against which every subquadratic algorithm is compared.

use crate::error::{LinalgError, Result};
use crate::vector::DenseVector;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A `{0,1}^d` vector stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryVector {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryVector {
    /// Creates the all-zeros vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            words: vec![0u64; dim.div_ceil(WORD_BITS)],
        }
    }

    /// Creates the all-ones vector of dimension `dim`.
    pub fn ones(dim: usize) -> Self {
        let mut v = Self::zeros(dim);
        for i in 0..dim {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds a vector from 0/1 integer values.
    ///
    /// Any nonzero value is treated as 1.
    pub fn from_ints(values: &[u8]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            v.set(i, x != 0);
        }
        v
    }

    /// Builds a vector of dimension `dim` whose support is the given set of indices.
    ///
    /// Returns an error if any index is out of range.
    pub fn from_support(dim: usize, support: &[usize]) -> Result<Self> {
        let mut v = Self::zeros(dim);
        for &i in support {
            if i >= dim {
                return Err(LinalgError::InvalidParameter {
                    name: "support",
                    reason: format!("index {i} out of range for dimension {dim}"),
                });
            }
            v.set(i, true);
        }
        Ok(v)
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= dim()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= dim()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.dim,
            "bit index {i} out of range for dim {}",
            self.dim
        );
        let word = i / WORD_BITS;
        let bit = i % WORD_BITS;
        if value {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Number of ones (the set cardinality).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inner product with another binary vector: the size of the set intersection.
    ///
    /// `pᵀq = 0` is exactly the orthogonality condition of the OVP.
    pub fn dot(&self, other: &Self) -> Result<usize> {
        if self.dim != other.dim {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
                op: "binary dot",
            });
        }
        Ok(self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum())
    }

    /// Returns `true` when `selfᵀother = 0`, i.e. the supports are disjoint.
    ///
    /// Short-circuits on the first overlapping word, which makes the exact OVP solvers
    /// noticeably faster on dense instances.
    pub fn is_orthogonal_to(&self, other: &Self) -> Result<bool> {
        if self.dim != other.dim {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
                op: "binary orthogonality",
            });
        }
        Ok(self
            .words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0))
    }

    /// Hamming distance to another binary vector.
    pub fn hamming(&self, other: &Self) -> Result<usize> {
        if self.dim != other.dim {
            return Err(LinalgError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
                op: "hamming",
            });
        }
        Ok(self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`.
    ///
    /// Defined as 1 when both sets are empty. This is the similarity that minwise
    /// hashing (and hence MH-ALSH) is locality-sensitive for.
    pub fn jaccard(&self, other: &Self) -> Result<f64> {
        let inter = self.dot(other)? as f64;
        let union = (self.count_ones() + other.count_ones()) as f64 - inter;
        if union == 0.0 {
            return Ok(1.0);
        }
        Ok(inter / union)
    }

    /// Indices of the one-bits, in increasing order.
    pub fn support(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                out.push(w * WORD_BITS + tz);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Converts to a dense `f64` vector with entries in `{0.0, 1.0}`.
    pub fn to_dense(&self) -> DenseVector {
        DenseVector::new(
            (0..self.dim)
                .map(|i| if self.get(i) { 1.0 } else { 0.0 })
                .collect(),
        )
    }

    /// Concatenates two binary vectors.
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.dim + other.dim);
        for i in 0..self.dim {
            if self.get(i) {
                out.set(i, true);
            }
        }
        for j in 0..other.dim {
            if other.get(j) {
                out.set(self.dim + j, true);
            }
        }
        out
    }

    /// Iterator over the bits as booleans.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.dim).map(move |i| self.get(i))
    }

    /// Complement vector (`1 − x` component-wise), used by the `{0,1}` gap embedding of
    /// Lemma 3 where factors of the form `(1 − x_i y_i)` must be expressed with
    /// nonnegative coordinates.
    pub fn complement(&self) -> Self {
        let mut out = Self::zeros(self.dim);
        for i in 0..self.dim {
            out.set(i, !self.get(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BinaryVector::zeros(130);
        assert_eq!(v.dim(), 130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn dot_is_intersection_size() {
        let a = BinaryVector::from_support(100, &[1, 5, 70, 99]).unwrap();
        let b = BinaryVector::from_support(100, &[5, 70, 80]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 2);
        assert!(!a.is_orthogonal_to(&b).unwrap());
        let c = BinaryVector::from_support(100, &[0, 2]).unwrap();
        assert!(a.is_orthogonal_to(&c).unwrap());
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = BinaryVector::zeros(10);
        let b = BinaryVector::zeros(11);
        assert!(a.dot(&b).is_err());
        assert!(a.is_orthogonal_to(&b).is_err());
        assert!(a.hamming(&b).is_err());
    }

    #[test]
    fn hamming_and_jaccard() {
        let a = BinaryVector::from_ints(&[1, 1, 0, 0]);
        let b = BinaryVector::from_ints(&[1, 0, 1, 0]);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        let empty1 = BinaryVector::zeros(4);
        let empty2 = BinaryVector::zeros(4);
        assert_eq!(empty1.jaccard(&empty2).unwrap(), 1.0);
    }

    #[test]
    fn support_and_dense_roundtrip() {
        let a = BinaryVector::from_support(70, &[3, 65]).unwrap();
        assert_eq!(a.support(), vec![3, 65]);
        let d = a.to_dense();
        assert_eq!(d.dim(), 70);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[65], 1.0);
        assert_eq!(d[0], 0.0);
        assert!(BinaryVector::from_support(10, &[10]).is_err());
    }

    #[test]
    fn concat_and_complement() {
        let a = BinaryVector::from_ints(&[1, 0]);
        let b = BinaryVector::from_ints(&[0, 1, 1]);
        let c = a.concat(&b);
        assert_eq!(c.dim(), 5);
        assert_eq!(c.support(), vec![0, 3, 4]);
        let comp = a.complement();
        assert_eq!(comp.support(), vec![1]);
    }

    #[test]
    fn from_bools_and_ones() {
        let v = BinaryVector::from_bools(&[true, false, true]);
        assert_eq!(v.support(), vec![0, 2]);
        let ones = BinaryVector::ones(67);
        assert_eq!(ones.count_ones(), 67);
        let bits: Vec<bool> = ones.iter_bits().collect();
        assert!(bits.iter().all(|&b| b));
    }

    #[test]
    fn binary_dot_matches_dense_dot() {
        let a = BinaryVector::from_ints(&[1, 0, 1, 1, 0, 1]);
        let b = BinaryVector::from_ints(&[0, 1, 1, 1, 0, 0]);
        let dense = a.to_dense().dot(&b.to_dense()).unwrap();
        assert_eq!(dense as usize, a.dot(&b).unwrap());
    }

    #[test]
    #[should_panic]
    fn get_out_of_range_panics() {
        let v = BinaryVector::zeros(5);
        let _ = v.get(5);
    }
}
