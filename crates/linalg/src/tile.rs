//! Contiguous SIMD-friendly tiles: the raw-speed kernel layer.
//!
//! Every join family in the workspace bottoms out in dense inner products, and
//! the constant factor on those dot products is set by memory layout and lane
//! width. This module provides the two reduced-precision mirrors of the
//! [`DenseVector`] kernels that the scoring paths opt into:
//!
//! * [`FloatTile`] — a contiguous row-major `f32` tile (data-major when built
//!   from the data set, query-major when built from the query batch). Half the
//!   memory traffic of `f64` and twice the SIMD lane width, at the price of
//!   ~7 decimal digits: the scoring paths that use it always *rescore* their
//!   winners in exact `f64` before reporting, so validity is never at stake.
//! * [`QuantTile`] — an `i8` symmetric fixed-point tile with one scale per
//!   tile. Its integer dot products come with a rigorous error bound
//!   ([`QuantTile::error_bound`]), which is what lets candidate pruning stay
//!   *conservative*: a caller keeps every candidate whose optimistic bound
//!   reaches the best pessimistic bound, then rescores survivors exactly in
//!   `f64` — the final answer is provably identical to the pure `f64` scan.
//!
//! All kernels are written as safe iterator/chunk code with multiple
//! independent accumulators so LLVM autovectorizes them; the crate carries
//! `#![deny(unsafe_code)]`, so no intrinsics can creep in.
//!
//! The `f64` slice kernels ([`dot_slices`], [`axpy_slices`]) exist for hot-loop
//! hygiene: they skip the per-call length check and error-string allocation of
//! the checked [`DenseVector`] methods while preserving the
//! exact accumulation order, so routing an engine loop through them is
//! bit-identical to the checked path.

use crate::error::{LinalgError, Result};
use crate::vector::DenseVector;

/// Number of independent accumulators in the `f32` kernels — wide enough for
/// one AVX2 register per accumulator chain on x86-64, and harmless elsewhere.
const F32_LANES: usize = 8;

/// Number of independent accumulators in the widening `i8 → i32` kernel.
const I8_LANES: usize = 16;

/// Inner product of two equal-length `f64` slices, in the exact accumulation
/// order of [`DenseVector::dot`] (sequential `iter().zip().map().sum()`), so a
/// caller that has already validated lengths gets a bit-identical result
/// without the per-call length check and error allocation.
///
/// Lengths are only checked under `debug_assertions`.
#[inline]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_slices requires equal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha · x` over equal-length `f64` slices, in the exact accumulation
/// order of the blocked matmul inner loop (sequential fused updates).
///
/// Lengths are only checked under `debug_assertions`.
#[inline]
pub fn axpy_slices(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "axpy_slices requires equal lengths");
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Inner product of two equal-length `f32` slices with eight
/// independent accumulators (chunked so LLVM autovectorizes the main loop).
///
/// Lengths are only checked under `debug_assertions`.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_f32 requires equal lengths");
    let main = a.len() - a.len() % F32_LANES;
    let mut acc = [0.0f32; F32_LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(F32_LANES)
        .zip(b[..main].chunks_exact(F32_LANES))
    {
        for lane in 0..F32_LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut sum = acc.iter().sum::<f32>();
    for (x, y) in a[main..].iter().zip(b[main..].iter()) {
        sum += x * y;
    }
    sum
}

/// Squared Euclidean norm of an `f32` slice (same accumulator shape as
/// [`dot_f32`]).
#[inline]
pub fn norm_sq_f32(a: &[f32]) -> f32 {
    dot_f32(a, a)
}

/// `y += alpha · x` over equal-length `f32` slices.
///
/// Lengths are only checked under `debug_assertions`.
#[inline]
pub fn axpy_f32(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len(), "axpy_f32 requires equal lengths");
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Widening dot product of two equal-length `i8` slices, accumulated in `i32`
/// with sixteen independent accumulators.
///
/// Overflow cannot occur for the dimensions this workspace handles: each term
/// is at most `127² < 2¹⁴`, so `2¹⁷` terms fit an `i32` accumulator — far
/// beyond any vector dimension in use.
///
/// Lengths are only checked under `debug_assertions`.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8 requires equal lengths");
    let main = a.len() - a.len() % I8_LANES;
    let mut acc = [0i32; I8_LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(I8_LANES)
        .zip(b[..main].chunks_exact(I8_LANES))
    {
        for lane in 0..I8_LANES {
            acc[lane] += i32::from(ca[lane]) * i32::from(cb[lane]);
        }
    }
    let mut sum = acc.iter().sum::<i32>();
    for (&x, &y) in a[main..].iter().zip(b[main..].iter()) {
        sum += i32::from(x) * i32::from(y);
    }
    sum
}

/// A contiguous row-major `f32` tile over a collection of equal-dimension
/// vectors.
///
/// Built from the data set it is a *data-major* view (one row per data
/// vector, streamed once per query batch); built from a query batch it is the
/// *query-major* view the batched kernels pair it with. Rows are stored
/// back-to-back so the scan over rows is one linear pass over memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatTile {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl FloatTile {
    /// Builds the tile by narrowing each vector's components to `f32`.
    ///
    /// An empty collection produces an empty tile of dimension 0; mixed
    /// dimensions are rejected.
    pub fn from_vectors(vectors: &[DenseVector]) -> Result<Self> {
        let dim = vectors.first().map_or(0, DenseVector::dim);
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for v in vectors {
            if v.dim() != dim {
                return Err(LinalgError::DimensionMismatch {
                    left: dim,
                    right: v.dim(),
                    op: "FloatTile::from_vectors",
                });
            }
            data.extend(v.iter().map(|&x| x as f32));
        }
        Ok(Self {
            rows: vectors.len(),
            dim,
            data,
        })
    }

    /// Builds a one-row tile from a single vector (the per-query conversion).
    pub fn from_vector(v: &DenseVector) -> Self {
        Self {
            rows: 1,
            dim: v.dim(),
            data: v.iter().map(|&x| x as f32).collect(),
        }
    }

    /// Number of rows (vectors) in the tile.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Shared dimension of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns `true` when the tile holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Read-only slice view of row `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// The whole tile as one contiguous row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Iterator over rows as slices (one linear memory pass).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim.max(1)).take(self.rows)
    }

    /// Inner product of row `r` with an external `f32` slice of matching
    /// dimension.
    ///
    /// # Panics
    /// Panics when `r` is out of range; the dimension is only checked under
    /// `debug_assertions`.
    pub fn dot_row(&self, r: usize, q: &[f32]) -> f32 {
        dot_f32(self.row(r), q)
    }
}

/// One quantized vector: the query-side counterpart of a [`QuantTile`] row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantVector {
    /// Quantized components, `x ≈ scale · q[i]`.
    pub values: Vec<i8>,
    /// Symmetric fixed-point scale (`max |x| / 127`; 0 for the zero vector).
    pub scale: f64,
    /// ℓ₁ norm of the *quantized reals*: `scale · Σ |values[i]|`.
    pub l1: f64,
}

impl QuantVector {
    /// Quantizes a vector on its own scale (`max |x| / 127`).
    pub fn from_vector(v: &DenseVector) -> Self {
        let scale = v.max_abs() / 127.0;
        let values: Vec<i8> = if scale == 0.0 {
            vec![0; v.dim()]
        } else {
            v.iter()
                .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
                .collect()
        };
        let l1 = scale
            * values
                .iter()
                .map(|&q| f64::from(q.unsigned_abs()))
                .sum::<f64>();
        Self { values, scale, l1 }
    }
}

/// An `i8` symmetric fixed-point tile: one shared scale for the whole tile,
/// per-row ℓ₁ norms of the quantized values, and a rigorous reconstruction
/// error bound.
///
/// With `p = p̂ + δp` and `q = q̂ + δq` (`p̂`, `q̂` the dequantized values,
/// `|δp_i| ≤ ε_p = scale_p/2` componentwise):
///
/// ```text
/// |pᵀq − p̂ᵀq̂| ≤ ε_q·‖p̂‖₁ + ε_p·‖q̂‖₁ + d·ε_p·ε_q
/// ```
///
/// which [`QuantTile::error_bound`] evaluates per (row, query) pair. The bound
/// also covers the unsigned variant, since `| |a| − |b| | ≤ |a − b|`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTile {
    rows: usize,
    dim: usize,
    values: Vec<i8>,
    scale: f64,
    /// Per-row ℓ₁ norms of the quantized reals (`scale · Σ |values|`).
    row_l1: Vec<f64>,
}

impl QuantTile {
    /// Quantizes a collection of equal-dimension vectors onto one shared
    /// symmetric scale (`max |x| over the whole tile / 127`).
    pub fn from_vectors(vectors: &[DenseVector]) -> Result<Self> {
        let dim = vectors.first().map_or(0, DenseVector::dim);
        let mut max_abs = 0.0f64;
        for v in vectors {
            if v.dim() != dim {
                return Err(LinalgError::DimensionMismatch {
                    left: dim,
                    right: v.dim(),
                    op: "QuantTile::from_vectors",
                });
            }
            max_abs = max_abs.max(v.max_abs());
        }
        let scale = max_abs / 127.0;
        let mut values = Vec::with_capacity(vectors.len() * dim);
        let mut row_l1 = Vec::with_capacity(vectors.len());
        for v in vectors {
            let start = values.len();
            if scale == 0.0 {
                values.resize(start + dim, 0i8);
            } else {
                values.extend(
                    v.iter()
                        .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8),
                );
            }
            let l1: f64 = values[start..]
                .iter()
                .map(|&q| f64::from(q.unsigned_abs()))
                .sum();
            row_l1.push(scale * l1);
        }
        Ok(Self {
            rows: vectors.len(),
            dim,
            values,
            scale,
            row_l1,
        })
    }

    /// Number of rows in the tile.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Shared dimension of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shared symmetric scale of the tile.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Read-only slice view of row `r`'s quantized values.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of range");
        &self.values[r * self.dim..(r + 1) * self.dim]
    }

    /// The approximate inner product `p̂ᵀq̂` of row `r` with a quantized
    /// query: the widening integer dot product scaled back to reals.
    pub fn approx_dot(&self, r: usize, q: &QuantVector) -> f64 {
        self.scale * q.scale * f64::from(dot_i8(self.row(r), &q.values))
    }

    /// The rigorous bound on `|pᵀq − p̂ᵀq̂|` for row `r` against the quantized
    /// query (see the type-level docs for the derivation).
    pub fn error_bound(&self, r: usize, q: &QuantVector) -> f64 {
        let eps_p = self.scale / 2.0;
        let eps_q = q.scale / 2.0;
        eps_q * self.row_l1[r] + eps_p * q.l1 + self.dim as f64 * eps_p * eps_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn dot_slices_matches_checked_dot_bitwise() {
        let a = dv(&[0.1, -0.7, 0.33, 1e-9, 123.456, -2.5, 0.0, 7.7, 1.25]);
        let b = dv(&[-3.3, 0.2, 1.5, 2e9, -0.001, 4.25, 9.0, -1.1, 0.5]);
        let checked = a.dot(&b).unwrap();
        let fast = dot_slices(a.as_slice(), b.as_slice());
        assert_eq!(checked.to_bits(), fast.to_bits());
    }

    #[test]
    fn axpy_slices_matches_checked_axpy() {
        let mut y = dv(&[1.0, 2.0, 3.0]);
        let x = dv(&[0.5, -0.25, 4.0]);
        let mut y_fast = y.clone();
        y.axpy(1.5, &x).unwrap();
        axpy_slices(y_fast.as_mut_slice(), 1.5, x.as_slice());
        for (a, b) in y.iter().zip(y_fast.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_kernels_approximate_f64() {
        let a = dv(&(0..37).map(|i| (i as f64 * 0.37).sin()).collect::<Vec<_>>());
        let b = dv(&(0..37).map(|i| (i as f64 * 0.11).cos()).collect::<Vec<_>>());
        let exact = a.dot(&b).unwrap();
        let ta = FloatTile::from_vector(&a);
        let tb = FloatTile::from_vector(&b);
        let approx = dot_f32(ta.row(0), tb.row(0)) as f64;
        assert!((exact - approx).abs() < 1e-4, "{exact} vs {approx}");
        let n = norm_sq_f32(ta.row(0)) as f64;
        assert!((n - a.norm_sq()).abs() < 1e-4);
        let mut y = vec![0.0f32; 37];
        axpy_f32(&mut y, 2.0, ta.row(0));
        for (i, &v) in y.iter().enumerate() {
            assert!((f64::from(v) - 2.0 * a[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn float_tile_layout_and_views() {
        let vs = vec![dv(&[1.0, 2.0]), dv(&[3.0, 4.0]), dv(&[5.0, 6.0])];
        let tile = FloatTile::from_vectors(&vs).unwrap();
        assert_eq!(tile.rows(), 3);
        assert_eq!(tile.dim(), 2);
        assert!(!tile.is_empty());
        assert_eq!(tile.row(1), &[3.0f32, 4.0]);
        assert_eq!(tile.as_slice().len(), 6);
        assert_eq!(tile.iter_rows().count(), 3);
        assert_eq!(tile.dot_row(0, &[1.0, 1.0]), 3.0);
        // Mixed dimensions are rejected; empty input is an empty tile.
        assert!(FloatTile::from_vectors(&[dv(&[1.0]), dv(&[1.0, 2.0])]).is_err());
        assert!(FloatTile::from_vectors(&[]).unwrap().is_empty());
    }

    #[test]
    fn dot_i8_matches_scalar_reference() {
        let a: Vec<i8> = (0..100).map(|i| ((i * 7) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..100).map(|i| ((i * 13) % 255 - 127) as i8).collect();
        let reference: i32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), reference);
    }

    #[test]
    fn quantized_dot_respects_the_error_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9A27);
        for dim in [3usize, 8, 32, 100] {
            let vectors: Vec<DenseVector> = (0..20)
                .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let tile = QuantTile::from_vectors(&vectors).unwrap();
            assert_eq!(tile.rows(), 20);
            assert_eq!(tile.dim(), dim);
            assert!(tile.scale() > 0.0);
            let query: DenseVector = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let qq = QuantVector::from_vector(&query);
            for (r, v) in vectors.iter().enumerate() {
                let exact = v.dot(&query).unwrap();
                let approx = tile.approx_dot(r, &qq);
                let bound = tile.error_bound(r, &qq);
                assert!(
                    (exact - approx).abs() <= bound + 1e-12,
                    "dim {dim} row {r}: |{exact} - {approx}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn zero_tile_quantizes_exactly() {
        let vectors = vec![DenseVector::zeros(5), DenseVector::zeros(5)];
        let tile = QuantTile::from_vectors(&vectors).unwrap();
        assert_eq!(tile.scale(), 0.0);
        let q = QuantVector::from_vector(&DenseVector::zeros(5));
        assert_eq!(tile.approx_dot(0, &q), 0.0);
        assert_eq!(tile.error_bound(0, &q), 0.0);
        assert_eq!(tile.row(1), &[0i8; 5]);
    }
}
