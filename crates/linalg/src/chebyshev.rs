//! Chebyshev polynomials of the first kind.
//!
//! The deterministic Chebyshev gap embedding (Lemma 3, embedding 2) builds `{-1,1}`
//! vectors whose inner products equal `(2d)^q · T_q(xᵀy / 2d)`. The two analytic
//! properties the reduction uses are
//!
//! * `|T_q(x)| ≤ 1` for `|x| ≤ 1`, and
//! * `T_q(1 + ε) ≥ e^{q√ε}` for `0 < ε < 1/2`,
//!
//! i.e. the polynomial stays small inside `[-1, 1]` and explodes immediately outside —
//! exactly the gap-amplification behaviour needed to separate orthogonal pairs
//! (`xᵀy = 0` → argument `1 + 1/d` after translation) from non-orthogonal ones.

/// Evaluates the Chebyshev polynomial of the first kind `T_q(x)` via the three-term
/// recurrence `T_q(x) = 2x·T_{q-1}(x) − T_{q-2}(x)`.
///
/// The recurrence is numerically stable for the arguments used in this workspace
/// (|x| ≲ 1 + O(1/d)) and keeps the evaluation exact for integer-valued use cases.
pub fn chebyshev_t(q: u32, x: f64) -> f64 {
    match q {
        0 => 1.0,
        1 => x,
        _ => {
            let mut t_prev = 1.0; // T_0
            let mut t_curr = x; // T_1
            for _ in 2..=q {
                let t_next = 2.0 * x * t_curr - t_prev;
                t_prev = t_curr;
                t_curr = t_next;
            }
            t_curr
        }
    }
}

/// Evaluates the *scaled* Chebyshev polynomial `b^q · T_q(u / b)` using only
/// integer-friendly arithmetic on the recurrence
/// `S_q(u) = 2u·S_{q-1}(u) − b²·S_{q-2}(u)`, `S_0 = 1`, `S_1 = u`.
///
/// This is the polynomial the gap embedding realises exactly over `{-1,1}` vectors
/// (`b = 2d`, `u = xᵀy`): the paper notes that `b^q T_q(u/b)` is an integer whenever `u`
/// and `b` are, even though `T_q(u/b)` itself is not.
pub fn scaled_chebyshev(q: u32, u: f64, b: f64) -> f64 {
    match q {
        0 => 1.0,
        1 => u,
        _ => {
            let mut s_prev = 1.0; // S_0 = b^0 T_0
            let mut s_curr = u; // S_1 = b^1 T_1(u/b) = u
            for _ in 2..=q {
                let s_next = 2.0 * u * s_curr - b * b * s_prev;
                s_prev = s_curr;
                s_curr = s_next;
            }
            s_curr
        }
    }
}

/// Lower bound `e^{q√ε}` on `T_q(1 + ε)` for `0 < ε < 1/2` (the asymptotic property
/// quoted from Valiant \[51\] and used in the proof of Lemma 3).
///
/// The exact identity is `T_q(1 + ε) = cosh(q · arccosh(1 + ε)) ≥ e^{q√(2ε)}/2`, so the
/// stated bound holds once `q√ε ≥ ln 2 / (√2 − 1) ≈ 1.68`; for smaller `q` the precise
/// [`chebyshev_t`] value should be used instead.
pub fn growth_lower_bound(q: u32, eps: f64) -> f64 {
    (f64::from(q) * eps.sqrt()).exp()
}

/// Exact value of `T_q(1 + ε)` for `ε ≥ 0`, computed through the hyperbolic identity
/// `T_q(x) = cosh(q · arccosh(x))` which avoids the cancellation of the recurrence for
/// very large `q`.
pub fn chebyshev_t_outside(q: u32, eps: f64) -> f64 {
    let x = 1.0 + eps.max(0.0);
    (f64::from(q) * x.acosh()).cosh()
}

/// Returns the paper's bound `(9d)^q` on the output dimension of the `q`-th Chebyshev
/// embedding (valid for `d ≥ 8`), as an `f64` to avoid overflow for large parameters.
pub fn embedding_dimension_bound(q: u32, d: usize) -> f64 {
    (9.0 * d as f64).powi(q as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_order_polynomials() {
        // T_0 = 1, T_1 = x, T_2 = 2x² − 1, T_3 = 4x³ − 3x.
        for &x in &[-1.5, -1.0, -0.3, 0.0, 0.7, 1.0, 1.2] {
            assert!((chebyshev_t(0, x) - 1.0).abs() < 1e-12);
            assert!((chebyshev_t(1, x) - x).abs() < 1e-12);
            assert!((chebyshev_t(2, x) - (2.0 * x * x - 1.0)).abs() < 1e-12);
            assert!((chebyshev_t(3, x) - (4.0 * x * x * x - 3.0 * x)).abs() < 1e-9);
        }
    }

    #[test]
    fn bounded_on_unit_interval() {
        for q in 0..20u32 {
            for i in 0..=100 {
                let x = -1.0 + 2.0 * (i as f64) / 100.0;
                assert!(
                    chebyshev_t(q, x).abs() <= 1.0 + 1e-9,
                    "T_{q}({x}) escaped the unit interval"
                );
            }
        }
    }

    #[test]
    fn grows_outside_unit_interval() {
        // The e^{q√ε} bound kicks in once q√ε is large enough (see doc comment); check it
        // in that regime, and check the exact hyperbolic identity everywhere.
        for q in 1..25u32 {
            for &eps in &[0.01, 0.1, 0.3, 0.49] {
                let val = chebyshev_t(q, 1.0 + eps);
                let exact = chebyshev_t_outside(q, eps);
                assert!(
                    (val - exact).abs() < 1e-6 * exact.max(1.0),
                    "q={q} eps={eps}"
                );
                if f64::from(q) * eps.sqrt() >= 2.0 {
                    assert!(
                        val >= growth_lower_bound(q, eps) - 1e-9,
                        "T_{q}(1+{eps}) = {val} below claimed lower bound"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_identity() {
        // T_q(cos θ) = cos(qθ).
        for q in 0..12u32 {
            for i in 0..10 {
                let theta = (i as f64) * 0.3;
                let lhs = chebyshev_t(q, theta.cos());
                let rhs = (f64::from(q) * theta).cos();
                assert!((lhs - rhs).abs() < 1e-8, "q={q} theta={theta}");
            }
        }
    }

    #[test]
    fn scaled_matches_unscaled() {
        let b = 16.0;
        for q in 0..10u32 {
            for &u in &[-20.0, -16.0, -3.0, 0.0, 5.0, 16.0, 18.0] {
                let scaled = scaled_chebyshev(q, u, b);
                let unscaled = b.powi(q as i32) * chebyshev_t(q, u / b);
                let tol = 1e-6 * unscaled.abs().max(1.0);
                assert!(
                    (scaled - unscaled).abs() < tol,
                    "q={q} u={u}: {scaled} vs {unscaled}"
                );
            }
        }
    }

    #[test]
    fn scaled_is_integer_for_integer_inputs() {
        // b^q T_q(u/b) should be an integer when u, b are integers.
        for q in 0..8u32 {
            for u in -6i64..=6 {
                let val = scaled_chebyshev(q, u as f64, 4.0);
                assert!((val - val.round()).abs() < 1e-6, "q={q} u={u} -> {val}");
            }
        }
    }

    #[test]
    fn dimension_bound_monotone() {
        assert!(embedding_dimension_bound(2, 8) < embedding_dimension_bound(3, 8));
        assert_eq!(embedding_dimension_bound(0, 8), 1.0);
        assert_eq!(embedding_dimension_bound(1, 8), 72.0);
    }
}
