//! Explicit incoherent vector collections.
//!
//! Section 4.2 of the paper ("Symmetric LSH for almost all vectors") needs a collection
//! of `N = 2^{O(dk)}` unit vectors `v_1, …, v_N` such that `|v_iᵀv_j| ≤ ε` for all
//! `i ≠ j`, and — crucially — the collection must be *strongly explicit*: given an index
//! `u` (the bit pattern of a data/query vector) we must be able to compute `v_u`
//! directly, without materialising the whole collection. The paper cites the
//! Reed–Solomon construction of Nelson, Nguyễn and Woodruff \[38\].
//!
//! Two constructions are provided:
//!
//! * [`ReedSolomonCollection`] — deterministic. A codeword of a Reed–Solomon code over
//!   `GF(p)` of length `t` and degree `< k` is mapped to the unit vector in
//!   `R^{t·p}` that places mass `1/√t` on the symbol chosen in each position. Two
//!   distinct degree-`< k` polynomials agree on at most `k − 1` evaluation points, so the
//!   pairwise inner products are at most `(k − 1)/t ≤ ε`. The collection indexes
//!   `p^k ≥ N` vectors.
//! * [`GaussianCollection`] — randomised (Johnson–Lindenstrauss style): i.i.d. unit
//!   vectors in dimension `O(ε^{-2} log N)` are pairwise ε-incoherent with high
//!   probability. Used by the third hard-sequence construction of Theorem 3.

use crate::error::{LinalgError, Result};
use crate::random::random_unit_vector;
use crate::vector::DenseVector;
use rand::Rng;

/// Returns `true` when `n` is prime (trial division; inputs here are tiny).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Smallest prime `≥ n`.
fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// A deterministic, strongly explicit collection of pairwise ε-incoherent unit vectors
/// built from Reed–Solomon codes over `GF(p)`.
#[derive(Debug, Clone)]
pub struct ReedSolomonCollection {
    /// Field size (prime).
    p: u64,
    /// Code length: number of evaluation points, `t ≤ p`.
    t: u64,
    /// Message length: polynomials of degree `< k`.
    k: u32,
    /// Number of vectors the collection can index (`p^k`, saturating).
    capacity: u128,
}

impl ReedSolomonCollection {
    /// Builds a collection able to index at least `min_vectors` vectors with pairwise
    /// coherence at most `epsilon`.
    ///
    /// Returns an error when `epsilon` is not in `(0, 1)` or `min_vectors == 0`.
    pub fn with_capacity(min_vectors: u128, epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(LinalgError::InvalidParameter {
                name: "epsilon",
                reason: format!("coherence bound must be in (0,1), got {epsilon}"),
            });
        }
        if min_vectors == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "min_vectors",
                reason: "collection must index at least one vector".to_string(),
            });
        }
        // Start with k = 2 (degree-1 polynomials) and grow until p^k >= min_vectors,
        // keeping t >= (k-1)/epsilon so that coherence (k-1)/t <= epsilon.
        let mut k: u32 = 2;
        loop {
            let t_needed = (((k - 1) as f64) / epsilon).ceil() as u64;
            let t = t_needed.max(2);
            let p = next_prime(t);
            let capacity = (p as u128).checked_pow(k).unwrap_or(u128::MAX);
            if capacity >= min_vectors {
                return Ok(Self { p, t, k, capacity });
            }
            k += 1;
            if k > 64 {
                return Err(LinalgError::InvalidParameter {
                    name: "min_vectors",
                    reason: "requested capacity too large for this construction".to_string(),
                });
            }
        }
    }

    /// Builds a collection with explicit Reed–Solomon parameters (mostly for tests).
    pub fn from_parameters(p: u64, t: u64, k: u32) -> Result<Self> {
        if !is_prime(p) {
            return Err(LinalgError::InvalidParameter {
                name: "p",
                reason: format!("{p} is not prime"),
            });
        }
        if t < 1 || t > p {
            return Err(LinalgError::InvalidParameter {
                name: "t",
                reason: format!("code length must satisfy 1 <= t <= p, got t={t}, p={p}"),
            });
        }
        if k < 1 {
            return Err(LinalgError::InvalidParameter {
                name: "k",
                reason: "message length must be at least 1".to_string(),
            });
        }
        let capacity = (p as u128).checked_pow(k).unwrap_or(u128::MAX);
        Ok(Self { p, t, k, capacity })
    }

    /// Number of vectors the collection can index.
    pub fn capacity(&self) -> u128 {
        self.capacity
    }

    /// Dimension of the produced vectors (`t · p`).
    pub fn dim(&self) -> usize {
        (self.t * self.p) as usize
    }

    /// The guaranteed upper bound on `|v_iᵀv_j|` for `i ≠ j`: `(k − 1)/t`.
    pub fn coherence(&self) -> f64 {
        (self.k as f64 - 1.0) / self.t as f64
    }

    /// Returns the `index`-th vector of the collection.
    ///
    /// The index is interpreted base-`p` as the coefficient vector of a polynomial of
    /// degree `< k` which is then evaluated at the points `0, 1, …, t−1`; each evaluation
    /// selects one coordinate of weight `1/√t` inside a block of size `p`.
    pub fn vector(&self, index: u128) -> Result<DenseVector> {
        if index >= self.capacity {
            return Err(LinalgError::InvalidParameter {
                name: "index",
                reason: format!("index {index} exceeds capacity {}", self.capacity),
            });
        }
        // Decode the base-p digits (coefficients a_0 .. a_{k-1}).
        let mut coeffs = Vec::with_capacity(self.k as usize);
        let mut rest = index;
        for _ in 0..self.k {
            coeffs.push((rest % self.p as u128) as u64);
            rest /= self.p as u128;
        }
        let mut v = DenseVector::zeros(self.dim());
        let weight = 1.0 / (self.t as f64).sqrt();
        for x in 0..self.t {
            // Horner evaluation of the polynomial at point x, mod p.
            let mut val: u64 = 0;
            for &a in coeffs.iter().rev() {
                val = (val * x + a) % self.p;
            }
            let coord = (x * self.p + val) as usize;
            v[coord] = weight;
        }
        Ok(v)
    }

    /// Returns the vector associated with an arbitrary byte string (e.g. the encoded
    /// coordinates of a data vector), by hashing the bytes into the index space with a
    /// simple FNV-1a fold. Distinct byte strings may collide only when the capacity is
    /// smaller than the number of distinct strings in use.
    pub fn vector_for_bytes(&self, bytes: &[u8]) -> Result<DenseVector> {
        const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.vector(h % self.capacity)
    }
}

/// A randomised collection of pairwise nearly-orthogonal unit vectors.
///
/// With dimension `d = Ω(ε^{-2} log N)`, i.i.d. random unit vectors are pairwise
/// ε-incoherent with high probability (Johnson–Lindenstrauss); the collection is
/// materialised eagerly so callers can iterate over it.
#[derive(Debug, Clone)]
pub struct GaussianCollection {
    vectors: Vec<DenseVector>,
}

impl GaussianCollection {
    /// Draws `count` random unit vectors in the prescribed dimension.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, count: usize, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "dim",
                reason: "dimension must be positive".to_string(),
            });
        }
        let mut vectors = Vec::with_capacity(count);
        for _ in 0..count {
            vectors.push(random_unit_vector(rng, dim)?);
        }
        Ok(Self { vectors })
    }

    /// Recommended dimension for target coherence `epsilon` and collection size `count`
    /// (`⌈4 ε^{-2} ln(count + 1)⌉`).
    pub fn recommended_dim(count: usize, epsilon: f64) -> usize {
        ((4.0 / (epsilon * epsilon)) * ((count as f64 + 1.0).ln())).ceil() as usize
    }

    /// Number of vectors in the collection.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the collection holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The `i`-th vector.
    pub fn vector(&self, i: usize) -> Result<&DenseVector> {
        self.vectors.get(i).ok_or(LinalgError::InvalidParameter {
            name: "i",
            reason: format!(
                "index {i} out of range for collection of size {}",
                self.vectors.len()
            ),
        })
    }

    /// Maximum absolute pairwise inner product over the whole collection (O(N²) check,
    /// intended for tests and small collections).
    pub fn measured_coherence(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.vectors.len() {
            for j in (i + 1)..self.vectors.len() {
                let ip = self.vectors[i]
                    .dot(&self.vectors[j])
                    .expect("vectors in a collection share a dimension")
                    .abs();
                worst = worst.max(ip);
            }
        }
        worst
    }

    /// Iterator over the vectors.
    pub fn iter(&self) -> impl Iterator<Item = &DenseVector> {
        self.vectors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn primes() {
        assert!(is_prime(2) && is_prime(3) && is_prime(97));
        assert!(!is_prime(1) && !is_prime(91) && !is_prime(100));
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(14), 17);
    }

    #[test]
    fn rs_vectors_are_unit_norm() {
        let coll = ReedSolomonCollection::from_parameters(7, 5, 2).unwrap();
        for i in 0..10u128 {
            let v = coll.vector(i).unwrap();
            assert!((v.norm() - 1.0).abs() < 1e-12);
            assert_eq!(v.dim(), coll.dim());
        }
    }

    #[test]
    fn rs_pairwise_coherence_bound_holds() {
        let coll = ReedSolomonCollection::from_parameters(11, 8, 2).unwrap();
        let bound = coll.coherence();
        let n = 40u128.min(coll.capacity());
        let vecs: Vec<DenseVector> = (0..n).map(|i| coll.vector(i).unwrap()).collect();
        for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                let ip = vecs[i].dot(&vecs[j]).unwrap().abs();
                assert!(
                    ip <= bound + 1e-12,
                    "|v_{i}ᵀv_{j}| = {ip} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn rs_capacity_construction() {
        let coll = ReedSolomonCollection::with_capacity(10_000, 0.25).unwrap();
        assert!(coll.capacity() >= 10_000);
        assert!(coll.coherence() <= 0.25 + 1e-12);
        assert!(ReedSolomonCollection::with_capacity(0, 0.25).is_err());
        assert!(ReedSolomonCollection::with_capacity(10, 1.5).is_err());
    }

    #[test]
    fn rs_invalid_parameters_rejected() {
        assert!(ReedSolomonCollection::from_parameters(10, 5, 2).is_err()); // not prime
        assert!(ReedSolomonCollection::from_parameters(7, 9, 2).is_err()); // t > p
        assert!(ReedSolomonCollection::from_parameters(7, 5, 0).is_err());
        let coll = ReedSolomonCollection::from_parameters(7, 5, 2).unwrap();
        assert!(coll.vector(coll.capacity()).is_err());
    }

    #[test]
    fn rs_bytes_lookup_is_deterministic() {
        let coll = ReedSolomonCollection::with_capacity(1 << 20, 0.2).unwrap();
        let a = coll.vector_for_bytes(b"hello world").unwrap();
        let b = coll.vector_for_bytes(b"hello world").unwrap();
        let c = coll.vector_for_bytes(b"hello worle").unwrap();
        assert_eq!(a, b);
        assert!(a.dot(&c).unwrap().abs() <= coll.coherence() + 1e-12 || a == c);
    }

    #[test]
    fn gaussian_collection_coherence() {
        let mut rng = StdRng::seed_from_u64(99);
        let eps = 0.5;
        let count = 50;
        let dim = GaussianCollection::recommended_dim(count, eps);
        let coll = GaussianCollection::generate(&mut rng, count, dim).unwrap();
        assert_eq!(coll.len(), count);
        assert!(!coll.is_empty());
        assert!(coll.measured_coherence() <= eps, "coherence too large");
        assert!(coll.vector(0).is_ok());
        assert!(coll.vector(count).is_err());
        assert!(GaussianCollection::generate(&mut rng, 3, 0).is_err());
        assert_eq!(coll.iter().count(), count);
    }
}
