//! Row-major dense matrices.
//!
//! The sketch data structures of Section 4.3 view the data set as an `n × d` matrix `A`
//! and need sketched products `Π·A` and matrix–vector products `A·q`. The matrix type
//! here is intentionally minimal: storage, indexing, matrix–vector and matrix–matrix
//! products, and row/column views — nothing the workspace does not use.

use crate::error::{LinalgError, Result};
use crate::vector::DenseVector;
use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidParameter {
                name: "data",
                reason: format!(
                    "expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix whose rows are the given vectors.
    ///
    /// Returns an error if the vectors do not all share the same dimension or the list
    /// is empty.
    pub fn from_rows(rows: &[DenseVector]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty { op: "from_rows" })?;
        let cols = first.dim();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.dim() != cols {
                return Err(LinalgError::DimensionMismatch {
                    left: cols,
                    right: r.dim(),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Read-only slice view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of row `r` as a vector.
    pub fn row_vector(&self, r: usize) -> DenseVector {
        DenseVector::from(self.row(r))
    }

    /// Copy of column `c` as a vector.
    pub fn col_vector(&self, c: usize) -> DenseVector {
        assert!(c < self.cols, "column {c} out of range");
        DenseVector::new((0..self.rows).map(|r| self.get(r, c)).collect())
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &DenseVector) -> Result<DenseVector> {
        if x.dim() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.cols,
                right: x.dim(),
                op: "matvec",
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            out.push(row.iter().zip(xs).map(|(a, b)| a * b).sum());
        }
        Ok(DenseVector::new(out))
    }

    /// Matrix–matrix product `self · other`.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.cols,
                right: other.rows,
                op: "matmul",
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transpose of the matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert!(Matrix::from_row_major(2, 3, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_checks_dims() {
        let rows = vec![
            DenseVector::from(&[1.0, 2.0][..]),
            DenseVector::from(&[3.0, 4.0][..]),
        ];
        let m = Matrix::from_rows(&rows).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let bad = vec![
            DenseVector::from(&[1.0, 2.0][..]),
            DenseVector::from(&[3.0][..]),
        ];
        assert!(Matrix::from_rows(&bad).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = DenseVector::from(&[1.0, 0.0, -1.0][..]);
        let y = m.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
        assert!(m.matvec(&DenseVector::zeros(2)).is_err());
    }

    #[test]
    fn matmul_and_identity() {
        let m = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Matrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        let sq = m.matmul(&m).unwrap();
        assert_eq!(sq.get(0, 0), 7.0);
        assert_eq!(sq.get(0, 1), 10.0);
        assert_eq!(sq.get(1, 0), 15.0);
        assert_eq!(sq.get(1, 1), 22.0);
        assert!(m.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn rows_cols_and_frobenius() {
        let m = Matrix::from_row_major(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.row_vector(0).as_slice(), &[3.0, 0.0]);
        assert_eq!(m.col_vector(1).as_slice(), &[0.0, 4.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn matvec_row_equivalence() {
        // A·q computed row-by-row equals dotting each row with q — the identity the
        // sketch-based MIPS structure relies on.
        let rows = vec![
            DenseVector::from(&[0.5, -1.0, 2.0][..]),
            DenseVector::from(&[1.0, 1.0, 1.0][..]),
        ];
        let m = Matrix::from_rows(&rows).unwrap();
        let q = DenseVector::from(&[1.0, 2.0, 3.0][..]);
        let prod = m.matvec(&q).unwrap();
        for (i, r) in rows.iter().enumerate() {
            assert!((prod[i] - r.dot(&q).unwrap()).abs() < 1e-12);
        }
    }
}
