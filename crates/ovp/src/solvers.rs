//! Exact OVP solvers — the quadratic baselines.
//!
//! The OVP conjecture asserts that nothing much better than these solvers exists once
//! `d = ω(log n)`. Two are provided:
//!
//! * [`brute_force_pair`] — the plain double loop with bit-packed orthogonality checks;
//! * [`split_chunk_pair`] — the "generalised OVP" strategy of Lemma 1: split `P` into
//!   chunks of size `|Q|^α` and solve each sub-instance independently. Functionally
//!   identical, but it mirrors the reduction used in the paper's proof and exposes the
//!   chunking machinery reused by the benchmarks.

use crate::error::{OvpError, Result};
use crate::problem::OvpInstance;

/// Returns some orthogonal pair `(i, j)` (indices into `P` and `Q`) if one exists.
pub fn brute_force_pair(instance: &OvpInstance) -> Result<Option<(usize, usize)>> {
    for (i, p) in instance.p().iter().enumerate() {
        for (j, q) in instance.q().iter().enumerate() {
            if p.is_orthogonal_to(q)? {
                return Ok(Some((i, j)));
            }
        }
    }
    Ok(None)
}

/// Counts all orthogonal pairs (used to validate generators and reductions).
pub fn count_orthogonal_pairs(instance: &OvpInstance) -> Result<usize> {
    let mut count = 0usize;
    for p in instance.p() {
        for q in instance.q() {
            if p.is_orthogonal_to(q)? {
                count += 1;
            }
        }
    }
    Ok(count)
}

/// Lemma 1 style solver: split `P` into chunks of `chunk_size` and scan each chunk
/// against all of `Q`, returning the first orthogonal pair found (with indices into the
/// original `P`).
///
/// Returns an error when `chunk_size == 0`.
pub fn split_chunk_pair(
    instance: &OvpInstance,
    chunk_size: usize,
) -> Result<Option<(usize, usize)>> {
    if chunk_size == 0 {
        return Err(OvpError::InvalidParameter {
            name: "chunk_size",
            reason: "chunk size must be positive".into(),
        });
    }
    let p = instance.p();
    let mut start = 0usize;
    while start < p.len() {
        let end = (start + chunk_size).min(p.len());
        for (offset, pi) in p[start..end].iter().enumerate() {
            for (j, q) in instance.q().iter().enumerate() {
                if pi.is_orthogonal_to(q)? {
                    return Ok(Some((start + offset, j)));
                }
            }
        }
        start = end;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::BinaryVector;

    fn bv(bits: &[u8]) -> BinaryVector {
        BinaryVector::from_ints(bits)
    }

    fn instance_with_pair() -> OvpInstance {
        OvpInstance::new(
            vec![bv(&[1, 1, 0, 0]), bv(&[1, 0, 1, 0]), bv(&[0, 0, 1, 1])],
            vec![bv(&[1, 1, 1, 0]), bv(&[1, 1, 0, 0])],
        )
        .unwrap()
    }

    fn instance_without_pair() -> OvpInstance {
        // Every vector has bit 0 set, so no pair can be orthogonal.
        OvpInstance::new(
            vec![bv(&[1, 1, 0]), bv(&[1, 0, 1])],
            vec![bv(&[1, 0, 0]), bv(&[1, 1, 1])],
        )
        .unwrap()
    }

    #[test]
    fn brute_force_finds_pair() {
        let inst = instance_with_pair();
        let pair = brute_force_pair(&inst).unwrap();
        let (i, j) = pair.expect("pair must exist");
        assert!(inst.is_orthogonal_pair(i, j).unwrap());
    }

    #[test]
    fn brute_force_reports_absence() {
        assert_eq!(brute_force_pair(&instance_without_pair()).unwrap(), None);
    }

    #[test]
    fn counting_matches_manual_enumeration() {
        let inst = instance_with_pair();
        let mut manual = 0;
        for i in 0..inst.p_len() {
            for j in 0..inst.q_len() {
                if inst.is_orthogonal_pair(i, j).unwrap() {
                    manual += 1;
                }
            }
        }
        assert_eq!(count_orthogonal_pairs(&inst).unwrap(), manual);
        assert_eq!(count_orthogonal_pairs(&instance_without_pair()).unwrap(), 0);
    }

    #[test]
    fn chunked_solver_agrees_with_brute_force() {
        let with = instance_with_pair();
        let without = instance_without_pair();
        for chunk in 1..=4 {
            let found = split_chunk_pair(&with, chunk).unwrap();
            let (i, j) = found.expect("pair must exist");
            assert!(with.is_orthogonal_pair(i, j).unwrap());
            assert_eq!(split_chunk_pair(&without, chunk).unwrap(), None);
        }
        assert!(split_chunk_pair(&with, 0).is_err());
    }
}
