//! The OVP → IPS-join reduction (Lemma 2).
//!
//! Given a gap embedding `(f, g)` and *any* algorithm for the `(cs, s)` approximate
//! join, OVP is solved as follows: embed `P` through `f` and `Q` through `g`, run the
//! join with thresholds `(cs, s)`, and verify each reported pair against the original
//! binary vectors. Because the embedding guarantees a gap — orthogonal pairs above `s`,
//! non-orthogonal pairs at or below `cs` — the approximate join *must* report a pair
//! whenever an orthogonal one exists, and any pair it reports with embedded inner
//! product above `cs` is necessarily orthogonal.
//!
//! The reduction is exactly why a truly subquadratic `(cs, s)`-join (for the parameter
//! ranges of Theorems 1 and 2) would refute the OVP conjecture: the embedding blow-up is
//! `n^{o(1)}` and everything else is linear.

use crate::embedding::GapEmbedding;
use crate::error::Result;
use crate::problem::OvpInstance;
use ips_linalg::DenseVector;

/// The answer produced by [`solve_via_join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OvpAnswer {
    /// An orthogonal pair was found (indices into `P` and `Q`).
    OrthogonalPair(usize, usize),
    /// No orthogonal pair exists.
    NoPair,
}

/// A `(cs, s)` join oracle: given embedded data vectors, embedded query vectors and the
/// two thresholds, it returns candidate pairs `(data_index, query_index)`.
///
/// The oracle is allowed to be approximate in exactly the sense of Definition 1: for
/// every query with a partner above `s` it must return at least one pair above `cs`,
/// and it may return extra pairs (they are filtered by re-checking orthogonality on the
/// original vectors).
pub trait JoinOracle {
    /// Runs the join and returns candidate `(data_index, query_index)` pairs.
    fn join(
        &mut self,
        data: &[DenseVector],
        queries: &[DenseVector],
        cs: f64,
        s: f64,
        signed: bool,
    ) -> Result<Vec<(usize, usize)>>;
}

impl<F> JoinOracle for F
where
    F: FnMut(&[DenseVector], &[DenseVector], f64, f64, bool) -> Result<Vec<(usize, usize)>>,
{
    fn join(
        &mut self,
        data: &[DenseVector],
        queries: &[DenseVector],
        cs: f64,
        s: f64,
        signed: bool,
    ) -> Result<Vec<(usize, usize)>> {
        self(data, queries, cs, s, signed)
    }
}

/// A trivially correct (quadratic) join oracle used as the reference implementation and
/// in tests of the reduction: it scans all pairs and reports those whose (signed or
/// absolute) inner product is strictly above `cs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceJoinOracle;

impl JoinOracle for BruteForceJoinOracle {
    fn join(
        &mut self,
        data: &[DenseVector],
        queries: &[DenseVector],
        cs: f64,
        _s: f64,
        signed: bool,
    ) -> Result<Vec<(usize, usize)>> {
        let mut out = Vec::new();
        for (j, q) in queries.iter().enumerate() {
            for (i, p) in data.iter().enumerate() {
                let ip = p.dot(q).map_err(crate::error::OvpError::from)?;
                let value = if signed { ip } else { ip.abs() };
                if value > cs {
                    out.push((i, j));
                    break; // one witness per query suffices, as in Definition 1
                }
            }
        }
        Ok(out)
    }
}

/// Solves an OVP instance through a `(cs, s)`-join oracle and a gap embedding,
/// following the Lemma 2 pipeline. Every pair reported by the oracle is re-verified on
/// the original binary vectors, so the answer is always exact regardless of how sloppy
/// the oracle is.
pub fn solve_via_join<E, O>(
    instance: &OvpInstance,
    embedding: &E,
    oracle: &mut O,
) -> Result<OvpAnswer>
where
    E: GapEmbedding,
    O: JoinOracle,
{
    let embedded_p = embedding.embed_data_all(instance.p())?;
    let embedded_q = embedding.embed_query_all(instance.q())?;
    let candidates = oracle.join(
        &embedded_p,
        &embedded_q,
        embedding.approx_threshold(),
        embedding.threshold(),
        embedding.is_signed(),
    )?;
    for (i, j) in candidates {
        if i < instance.p_len() && j < instance.q_len() && instance.is_orthogonal_pair(i, j)? {
            return Ok(OvpAnswer::OrthogonalPair(i, j));
        }
    }
    Ok(OvpAnswer::NoPair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{ChebyshevEmbedding, SignedEmbedding, ZeroOneEmbedding};
    use crate::generator::{no_pair_instance, planted_instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x0F0F)
    }

    fn check_reduction<E: GapEmbedding>(embedding: &E, dim: usize) {
        let mut r = rng();
        let mut oracle = BruteForceJoinOracle;
        // Planted instance: the reduction must find an orthogonal pair.
        let (inst, _) = planted_instance(&mut r, 12, 12, dim, 0.5).unwrap();
        match solve_via_join(&inst, embedding, &mut oracle).unwrap() {
            OvpAnswer::OrthogonalPair(i, j) => {
                assert!(inst.is_orthogonal_pair(i, j).unwrap());
            }
            OvpAnswer::NoPair => panic!("reduction missed the planted pair"),
        }
        // No-pair instance: the reduction must answer NoPair.
        let inst = no_pair_instance(&mut r, 12, 12, dim, 0.5).unwrap();
        assert_eq!(
            solve_via_join(&inst, embedding, &mut oracle).unwrap(),
            OvpAnswer::NoPair
        );
    }

    #[test]
    fn reduction_with_signed_embedding() {
        let dim = 12;
        check_reduction(&SignedEmbedding::new(dim).unwrap(), dim);
    }

    #[test]
    fn reduction_with_chebyshev_embedding() {
        let dim = 8;
        check_reduction(&ChebyshevEmbedding::new(dim, 2).unwrap(), dim);
    }

    #[test]
    fn reduction_with_zero_one_embedding() {
        let dim = 12;
        check_reduction(&ZeroOneEmbedding::new(dim, 4).unwrap(), dim);
    }

    #[test]
    fn closure_oracles_are_accepted() {
        let mut r = rng();
        let dim = 10;
        let embedding = SignedEmbedding::new(dim).unwrap();
        let (inst, _) = planted_instance(&mut r, 6, 6, dim, 0.5).unwrap();
        // An oracle that cheats by returning every pair: the verification step still
        // produces a correct answer.
        let mut all_pairs = |data: &[DenseVector],
                             queries: &[DenseVector],
                             _cs: f64,
                             _s: f64,
                             _signed: bool|
         -> Result<Vec<(usize, usize)>> {
            Ok((0..data.len())
                .flat_map(|i| (0..queries.len()).map(move |j| (i, j)))
                .collect())
        };
        match solve_via_join(&inst, &embedding, &mut all_pairs).unwrap() {
            OvpAnswer::OrthogonalPair(i, j) => assert!(inst.is_orthogonal_pair(i, j).unwrap()),
            OvpAnswer::NoPair => panic!("expected a pair"),
        }
    }

    #[test]
    fn sloppy_oracle_cannot_create_false_positives() {
        let mut r = rng();
        let dim = 10;
        let embedding = SignedEmbedding::new(dim).unwrap();
        let inst = no_pair_instance(&mut r, 8, 8, dim, 0.5).unwrap();
        // Oracle that reports nonsense pairs, including out-of-range ones.
        let mut nonsense =
            |_: &[DenseVector],
             _: &[DenseVector],
             _cs: f64,
             _s: f64,
             _signed: bool|
             -> Result<Vec<(usize, usize)>> { Ok(vec![(0, 0), (100, 3), (2, 100)]) };
        assert_eq!(
            solve_via_join(&inst, &embedding, &mut nonsense).unwrap(),
            OvpAnswer::NoPair
        );
    }
}
