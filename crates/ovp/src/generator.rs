//! OVP instance generators.
//!
//! The hardness reductions never care *where* the OVP instance comes from, but the
//! experiments need controllable ones:
//!
//! * [`random_instance`] — i.i.d. Bernoulli(`density`) bits, the distribution under
//!   which OVP is believed hard when `d = Θ(log n)` and the density is around `1/2`;
//! * [`planted_instance`] — a random instance with one orthogonal pair planted at a
//!   known location (supports on disjoint coordinate halves);
//! * [`no_pair_instance`] — a random instance where every vector has a common shared
//!   coordinate set to 1, so *no* orthogonal pair can exist.

use crate::error::{OvpError, Result};
use crate::problem::OvpInstance;
use ips_linalg::random::random_binary_vector;
use ips_linalg::BinaryVector;
use rand::Rng;

fn validate(n_p: usize, n_q: usize, dim: usize, density: f64) -> Result<()> {
    if n_p == 0 || n_q == 0 {
        return Err(OvpError::EmptyInstance);
    }
    if dim == 0 {
        return Err(OvpError::InvalidParameter {
            name: "dim",
            reason: "dimension must be positive".into(),
        });
    }
    if !(0.0..=1.0).contains(&density) {
        return Err(OvpError::InvalidParameter {
            name: "density",
            reason: format!("density must be in [0,1], got {density}"),
        });
    }
    Ok(())
}

/// Generates a fully random instance with `n_p` data vectors, `n_q` query vectors,
/// dimension `dim` and bit density `density`.
pub fn random_instance<R: Rng + ?Sized>(
    rng: &mut R,
    n_p: usize,
    n_q: usize,
    dim: usize,
    density: f64,
) -> Result<OvpInstance> {
    validate(n_p, n_q, dim, density)?;
    let p = (0..n_p)
        .map(|_| random_binary_vector(rng, dim, density))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let q = (0..n_q)
        .map(|_| random_binary_vector(rng, dim, density))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    OvpInstance::new(p, q)
}

/// Generates an instance guaranteed to contain at least one orthogonal pair and
/// returns the instance together with the planted pair's indices.
///
/// The planted data vector lives entirely in the first half of the coordinates and the
/// planted query vector entirely in the second half, so they are orthogonal regardless
/// of the random background. Requires `dim ≥ 2`.
pub fn planted_instance<R: Rng + ?Sized>(
    rng: &mut R,
    n_p: usize,
    n_q: usize,
    dim: usize,
    density: f64,
) -> Result<(OvpInstance, (usize, usize))> {
    validate(n_p, n_q, dim, density)?;
    if dim < 2 {
        return Err(OvpError::InvalidParameter {
            name: "dim",
            reason: "planted instances need dimension at least 2".into(),
        });
    }
    let mut p: Vec<BinaryVector> = (0..n_p)
        .map(|_| random_binary_vector(rng, dim, density))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let mut q: Vec<BinaryVector> = (0..n_q)
        .map(|_| random_binary_vector(rng, dim, density))
        .collect::<std::result::Result<Vec<_>, _>>()?;

    let half = dim / 2;
    let mut planted_p = BinaryVector::zeros(dim);
    let mut planted_q = BinaryVector::zeros(dim);
    for i in 0..half {
        if rng.gen::<f64>() < density.max(0.5) {
            planted_p.set(i, true);
        }
    }
    for i in half..dim {
        if rng.gen::<f64>() < density.max(0.5) {
            planted_q.set(i, true);
        }
    }
    // Ensure the planted vectors are not all-zero (all-zero vectors make the instance
    // trivially solvable and distort experiments).
    planted_p.set(0, true);
    planted_q.set(dim - 1, true);

    let pi = rng.gen_range(0..n_p);
    let qi = rng.gen_range(0..n_q);
    p[pi] = planted_p;
    q[qi] = planted_q;
    Ok((OvpInstance::new(p, q)?, (pi, qi)))
}

/// Generates an instance guaranteed to contain **no** orthogonal pair: every vector on
/// both sides has coordinate 0 set to 1.
pub fn no_pair_instance<R: Rng + ?Sized>(
    rng: &mut R,
    n_p: usize,
    n_q: usize,
    dim: usize,
    density: f64,
) -> Result<OvpInstance> {
    validate(n_p, n_q, dim, density)?;
    let make = |rng: &mut R| -> Result<BinaryVector> {
        let mut v = random_binary_vector(rng, dim, density)?;
        v.set(0, true);
        Ok(v)
    };
    let p = (0..n_p).map(|_| make(rng)).collect::<Result<Vec<_>>>()?;
    let q = (0..n_q).map(|_| make(rng)).collect::<Result<Vec<_>>>()?;
    OvpInstance::new(p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{brute_force_pair, count_orthogonal_pairs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn random_instance_shape() {
        let mut r = rng();
        let inst = random_instance(&mut r, 10, 20, 32, 0.5).unwrap();
        assert_eq!(inst.p_len(), 10);
        assert_eq!(inst.q_len(), 20);
        assert_eq!(inst.dim(), 32);
        assert!(random_instance(&mut r, 0, 5, 8, 0.5).is_err());
        assert!(random_instance(&mut r, 5, 5, 0, 0.5).is_err());
        assert!(random_instance(&mut r, 5, 5, 8, 1.5).is_err());
    }

    #[test]
    fn planted_pair_is_orthogonal() {
        let mut r = rng();
        for _ in 0..10 {
            let (inst, (i, j)) = planted_instance(&mut r, 15, 15, 24, 0.6).unwrap();
            assert!(inst.is_orthogonal_pair(i, j).unwrap());
            assert!(brute_force_pair(&inst).unwrap().is_some());
        }
        assert!(planted_instance(&mut r, 3, 3, 1, 0.5).is_err());
    }

    #[test]
    fn no_pair_instance_has_none() {
        let mut r = rng();
        for _ in 0..10 {
            let inst = no_pair_instance(&mut r, 12, 12, 16, 0.4).unwrap();
            assert_eq!(count_orthogonal_pairs(&inst).unwrap(), 0);
            assert_eq!(brute_force_pair(&inst).unwrap(), None);
        }
    }

    #[test]
    fn density_zero_and_one_edge_cases() {
        let mut r = rng();
        // Density 1: every vector is all ones, no orthogonal pairs in dim > 0.
        let dense = random_instance(&mut r, 4, 4, 8, 1.0).unwrap();
        assert_eq!(count_orthogonal_pairs(&dense).unwrap(), 0);
        // Density 0: every vector is all zeros, every pair is orthogonal.
        let sparse = random_instance(&mut r, 4, 4, 8, 0.0).unwrap();
        assert_eq!(count_orthogonal_pairs(&sparse).unwrap(), 16);
    }
}
