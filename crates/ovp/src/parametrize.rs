//! Parameter selection for the hardness theorems (the "Finally we parametrize and prove
//! Theorem 1/Theorem 2" step of the paper).
//!
//! Lemma 2 needs a *family* of embeddings, one per OVP dimension `d = ω(log n)`, with
//! output dimension `2^{o(d)}`; Theorems 1 and 2 then choose the free parameters (the
//! Chebyshev degree `q`, the chunk count `k`) as functions of `d` to maximise the range
//! of hard approximation factors, or to push the ratio `log(s/d₂)/log(cs/d₂)` as close
//! to 1 as possible. This module performs those choices concretely for a given instance
//! size `n`:
//!
//! * [`theorem1_chebyshev`] — `d = γ·log₂ n`, `q = ⌈√d⌉`: the approximation factor of
//!   the resulting embedding is `c = 1/T_q(1 + 1/d) ≈ e^{−q/√d}`, the
//!   `e^{−o(√(log n / log log n))}` regime of Theorem 1, case 2;
//! * [`theorem1_zero_one`] — `d = γ·log₂ n`, `k = k(d) = ω(1)`: `c = (k−1)/k = 1 − o(1)`,
//!   Theorem 1, case 3;
//! * [`theorem2_ratio`] — the ratio `log(s/d₂)/log(cs/d₂)` of a gap embedding, the
//!   quantity Table 1's last two columns are parametrised by, together with the
//!   closed-form approximations derived in the proof of Theorem 2
//!   (`1 − Θ(1/√d)` for the Chebyshev embedding with `q = √d`, `1 − Θ(1/d)` for the
//!   `{0,1}` embedding with `k = d`).

use crate::embedding::{ChebyshevEmbedding, GapEmbedding, ZeroOneEmbedding};
use crate::error::{OvpError, Result};

/// The concrete parameters chosen for one hard instance family member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardInstanceParameters {
    /// Instance size `n` the parameters were derived for.
    pub n: usize,
    /// OVP dimension `d = γ·log₂ n`.
    pub ovp_dim: usize,
    /// The embedding's free parameter (`q` for the Chebyshev embedding, `k` for the
    /// chopped-product embedding).
    pub free_parameter: usize,
    /// Output dimension `d₂` of the embedding.
    pub output_dim: usize,
    /// Threshold `s` of the embedding.
    pub s: f64,
    /// Relaxed threshold `cs`.
    pub cs: f64,
    /// The implied approximation factor `c = cs/s`.
    pub c: f64,
    /// The ratio `log(s/d₂)/log(cs/d₂)` (Theorem 2's parametrisation), when defined.
    pub ratio: Option<f64>,
}

fn validate(n: usize, gamma: f64) -> Result<usize> {
    if n < 4 {
        return Err(OvpError::InvalidParameter {
            name: "n",
            reason: format!("instance size must be at least 4, got {n}"),
        });
    }
    if !(gamma > 0.0) {
        return Err(OvpError::InvalidParameter {
            name: "gamma",
            reason: format!("gamma must be positive, got {gamma}"),
        });
    }
    let d = ((n as f64).log2() * gamma).ceil() as usize;
    Ok(d.max(2))
}

/// The ratio `log(s/d₂) / log(cs/d₂)` for an embedding, or `None` when it is undefined
/// (e.g. `cs = 0`, where the ratio degenerates to 0 in the limit — the signed case).
pub fn embedding_ratio<E: GapEmbedding>(embedding: &E) -> Option<f64> {
    let d2 = embedding.output_dim() as f64;
    let s = embedding.threshold() / d2;
    let cs = embedding.approx_threshold() / d2;
    if !(s > 0.0 && cs > 0.0 && s < 1.0 && cs < 1.0) {
        return None;
    }
    Some(s.ln() / cs.ln())
}

/// Theorem 1, case 2 / Theorem 2, case 1: the Chebyshev embedding with `d = γ·log₂ n`
/// and `q = ⌈√d⌉`, which drives the approximation factor down to
/// `c = 1/T_q(1+1/d) = e^{−Θ(q/√d)}` while keeping the output dimension
/// `(9d)^q = 2^{O(√d·log d)} = n^{o(1)}`.
///
/// The returned embedding is fully constructed (so its gap can be verified on real
/// vectors); for large `n` the output dimension grows quickly, so callers exploring the
/// asymptotics should use modest `n`/`gamma`.
pub fn theorem1_chebyshev(
    n: usize,
    gamma: f64,
) -> Result<(ChebyshevEmbedding, HardInstanceParameters)> {
    let d = validate(n, gamma)?;
    let q = (d as f64).sqrt().ceil() as u32;
    let embedding = ChebyshevEmbedding::new(d, q.max(1))?;
    let params = HardInstanceParameters {
        n,
        ovp_dim: d,
        free_parameter: q as usize,
        output_dim: embedding.output_dim(),
        s: embedding.threshold(),
        cs: embedding.approx_threshold(),
        c: embedding.approximation_factor(),
        ratio: embedding_ratio(&embedding),
    };
    Ok((embedding, params))
}

/// Theorem 1, case 3 / Theorem 2, case 2: the chopped-product `{0,1}` embedding with
/// `d = γ·log₂ n` and `k = k(d)`; any `k = ω(1)` growing with `d` gives
/// `c = 1 − 1/k = 1 − o(1)`. The default choice here is `k = d` (the paper's choice in
/// the proof of Theorem 2), which keeps the output dimension at `2d`.
pub fn theorem1_zero_one(
    n: usize,
    gamma: f64,
    k: Option<usize>,
) -> Result<(ZeroOneEmbedding, HardInstanceParameters)> {
    let d = validate(n, gamma)?;
    let k = k.unwrap_or(d).clamp(1, d);
    let embedding = ZeroOneEmbedding::new(d, k)?;
    let params = HardInstanceParameters {
        n,
        ovp_dim: d,
        free_parameter: k,
        output_dim: embedding.output_dim(),
        s: embedding.threshold(),
        cs: embedding.approx_threshold(),
        c: embedding.approximation_factor(),
        ratio: embedding_ratio(&embedding),
    };
    Ok((embedding, params))
}

/// The closed-form approximations of the Theorem 2 proof for the ratio
/// `log(s/d₂)/log(cs/d₂)`:
///
/// * Chebyshev embedding with `q = √d`: `1 − 1/(log(9/2)·√d) + log 2/(q·log(9/2))`,
///   i.e. `1 − Θ(1/√d)`;
/// * `{0,1}` embedding with `k = d`: `1 − 1/d + O(1/(k·d))`, i.e. `1 − Θ(1/d)`.
pub fn theorem2_ratio(domain_zero_one: bool, d: usize) -> f64 {
    let d = d.max(2) as f64;
    if domain_zero_one {
        1.0 - 1.0 / d
    } else {
        let q = d.sqrt();
        1.0 - 1.0 / ((9.0f64 / 2.0).ln() * d.sqrt()) + (2.0f64).ln() / (q * (9.0f64 / 2.0).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::SignedEmbedding;

    #[test]
    fn validation() {
        assert!(theorem1_chebyshev(2, 1.0).is_err());
        assert!(theorem1_chebyshev(64, 0.0).is_err());
        assert!(theorem1_zero_one(2, 1.0, None).is_err());
    }

    #[test]
    fn chebyshev_family_shrinks_c_as_n_grows() {
        // Small gamma keeps the output dimension manageable while still exhibiting the
        // e^{-Θ(q/√d)} decay of the approximation factor.
        let (_, p_small) = theorem1_chebyshev(16, 0.8).unwrap();
        let (_, p_large) = theorem1_chebyshev(4096, 0.8).unwrap();
        assert!(p_large.ovp_dim > p_small.ovp_dim);
        assert!(p_large.c < p_small.c, "{} !< {}", p_large.c, p_small.c);
        assert!(p_large.c > 0.0);
        // Output dimension stays 2^{o(d)}: with q = √d the exponent of the (9d)^q bound
        // is q·log₂(9d) = √d·log₂(9d), so its ratio to d must shrink as d grows. Check
        // the formula at dimensions far beyond what can be materialised.
        let exponent_ratio = |d: f64| d.sqrt() * (9.0 * d).log2() / d;
        assert!(exponent_ratio(1024.0) < exponent_ratio(64.0));
        assert!(exponent_ratio(1_048_576.0) < exponent_ratio(1024.0));
    }

    #[test]
    fn zero_one_family_has_c_approaching_one() {
        let (_, p_small) = theorem1_zero_one(64, 1.0, None).unwrap();
        let (_, p_large) = theorem1_zero_one(1 << 16, 1.0, None).unwrap();
        assert!(p_small.c < p_large.c);
        assert!(p_large.c < 1.0);
        // With k = d the output dimension is exactly 2d.
        assert_eq!(p_large.output_dim, 2 * p_large.ovp_dim);
        assert_eq!(p_large.free_parameter, p_large.ovp_dim);
        // Explicit k is honoured.
        let (_, p_k) = theorem1_zero_one(256, 1.0, Some(4)).unwrap();
        assert_eq!(p_k.free_parameter, 4);
        assert!((p_k.c - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratios_approach_one_from_below() {
        let (_, cheb) = theorem1_chebyshev(1024, 0.6).unwrap();
        let (_, zo) = theorem1_zero_one(1 << 14, 1.0, None).unwrap();
        for p in [&cheb, &zo] {
            let ratio = p.ratio.expect("ratio defined for unsigned embeddings");
            assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio} out of range");
        }
        // The {0,1} family has its ratio closer to 1 than the Chebyshev family at
        // comparable d — matching the Theorem 2 cutoffs (1 − o(1/log n) vs
        // 1 − o(1/√log n)).
        let (_, cheb_same_d) = theorem1_chebyshev(1 << 14, 0.6).unwrap();
        let zo_ratio = zo.ratio.unwrap();
        let cheb_ratio = cheb_same_d.ratio.unwrap();
        assert!(zo_ratio > cheb_ratio, "{zo_ratio} !> {cheb_ratio}");
    }

    #[test]
    fn signed_embedding_ratio_is_undefined() {
        let e = SignedEmbedding::new(8).unwrap();
        assert_eq!(embedding_ratio(&e), None);
    }

    #[test]
    fn closed_form_ratio_matches_measured_ratio_in_order_of_magnitude() {
        // The Theorem 2 closed forms are asymptotic; check they agree with the measured
        // embedding ratio to within a factor of ~2 of the distance to 1.
        let (_, zo) = theorem1_zero_one(1 << 12, 1.0, None).unwrap();
        let predicted = theorem2_ratio(true, zo.ovp_dim);
        let measured = zo.ratio.unwrap();
        let predicted_gap = 1.0 - predicted;
        let measured_gap = 1.0 - measured;
        assert!(
            measured_gap < 4.0 * predicted_gap && predicted_gap < 4.0 * measured_gap,
            "predicted 1-ratio {predicted_gap} vs measured {measured_gap}"
        );
        // Chebyshev closed form stays strictly below 1 for moderate d and grows towards 1.
        assert!(theorem2_ratio(false, 64) < 1.0);
        assert!(theorem2_ratio(false, 256) > theorem2_ratio(false, 64));
    }
}
