//! Error types for the OVP crate, on the workspace error pattern
//! ([`ips_linalg::define_error!`]).

use ips_linalg::LinalgError;

ips_linalg::define_error! {
    /// Errors produced by OVP instances, embeddings and reductions.
    #[derive(Clone, PartialEq)]
    OvpError, Result {
        variants {
            /// Vectors inside one instance disagreed on dimensionality.
            InconsistentDimensions {
                /// Dimension of the first vector encountered.
                expected: usize,
                /// Dimension of the offending vector.
                actual: usize,
            } => ("inconsistent dimensions: expected {expected}, got {actual}"),
            /// A parameter was outside its legal range.
            InvalidParameter {
                /// Name of the offending parameter.
                name: &'static str,
                /// Explanation of the constraint that was violated.
                reason: String,
            } => ("invalid parameter `{name}`: {reason}"),
            /// An instance was empty where a non-empty one was required.
            EmptyInstance => ("OVP instance must contain at least one vector per side"),
        }
        wraps {
            /// An underlying linear-algebra operation failed.
            Linalg(LinalgError) => "linear algebra error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OvpError::EmptyInstance.to_string().contains("at least one"));
        assert!(OvpError::InconsistentDimensions {
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("expected 3"));
        assert!(OvpError::InvalidParameter {
            name: "k",
            reason: "zero".into()
        }
        .to_string()
        .contains('k'));
    }

    #[test]
    fn linalg_conversion() {
        let e: OvpError = LinalgError::Empty { op: "x" }.into();
        assert!(matches!(e, OvpError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
