//! Error types for the OVP crate.

use ips_linalg::LinalgError;
use std::fmt;

/// Result alias used throughout `ips-ovp`.
pub type Result<T> = std::result::Result<T, OvpError>;

/// Errors produced by OVP instances, embeddings and reductions.
#[derive(Debug, Clone, PartialEq)]
pub enum OvpError {
    /// Vectors inside one instance disagreed on dimensionality.
    InconsistentDimensions {
        /// Dimension of the first vector encountered.
        expected: usize,
        /// Dimension of the offending vector.
        actual: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// An instance was empty where a non-empty one was required.
    EmptyInstance,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for OvpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OvpError::InconsistentDimensions { expected, actual } => {
                write!(f, "inconsistent dimensions: expected {expected}, got {actual}")
            }
            OvpError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            OvpError::EmptyInstance => write!(f, "OVP instance must contain at least one vector per side"),
            OvpError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for OvpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OvpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for OvpError {
    fn from(e: LinalgError) -> Self {
        OvpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OvpError::EmptyInstance.to_string().contains("at least one"));
        assert!(OvpError::InconsistentDimensions {
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("expected 3"));
        assert!(OvpError::InvalidParameter {
            name: "k",
            reason: "zero".into()
        }
        .to_string()
        .contains('k'));
    }

    #[test]
    fn linalg_conversion() {
        let e: OvpError = LinalgError::Empty { op: "x" }.into();
        assert!(matches!(e, OvpError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
