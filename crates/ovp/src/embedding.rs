//! Gap embeddings (Lemma 3) — the constructive heart of the hardness results.
//!
//! An *unsigned `(d₁, d₂, cs, s)`-gap embedding* into a domain `A` is a pair of maps
//! `(f, g) : {0,1}^{d₁} → A^{d₂'}` (`d₂' ≤ d₂`) such that for all `x, y ∈ {0,1}^{d₁}`
//!
//! ```text
//! |f(x)ᵀ g(y)| ≥ s    when xᵀy = 0      (orthogonal pairs land above the threshold)
//! |f(x)ᵀ g(y)| ≤ cs   when xᵀy ≥ 1      (non-orthogonal pairs land below it)
//! ```
//!
//! (signed embeddings drop the absolute values). Lemma 2 turns any family of such
//! embeddings with `d₂ = 2^{o(d₁)}` plus a subquadratic `(cs, s)`-join algorithm into a
//! subquadratic OVP algorithm. The three constructions of Lemma 3 are implemented here:
//!
//! 1. [`SignedEmbedding`] — `(d, 4d−4, 0, 4)` into `{−1,1}`, giving hardness of signed
//!    join for *any* `c > 0` (Theorem 1, case 1);
//! 2. [`ChebyshevEmbedding`] — `(d, (9d)^q, (2d)^q, (2d)^q·T_q(1+1/d))` into `{−1,1}`,
//!    a deterministic version of Valiant's Chebyshev embedding, giving hardness of
//!    unsigned join for `c ≥ e^{−o(√(log n / log log n))}` (Theorem 1, case 2);
//! 3. [`ZeroOneEmbedding`] — the chopped product `(d, k·2^{⌈d/k⌉}, k−1, k)` into
//!    `{0,1}`, giving hardness for `c = 1 − o(1)` (Theorem 1, case 3).

use crate::error::{OvpError, Result};
use ips_linalg::chebyshev::{chebyshev_t_outside, scaled_chebyshev};
use ips_linalg::ops::{concat_all, repeat, tensor};
use ips_linalg::{BinaryVector, DenseVector};

/// The output alphabet of a gap embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Vectors over `{−1, +1}`.
    PlusMinusOne,
    /// Vectors over `{0, 1}`.
    ZeroOne,
}

/// A gap embedding in the sense of Definition 4 of the paper.
pub trait GapEmbedding {
    /// The output alphabet.
    fn domain(&self) -> Domain;

    /// Input dimension `d₁` (the OVP dimension).
    fn input_dim(&self) -> usize;

    /// Output dimension `d₂'` of the embedded vectors.
    fn output_dim(&self) -> usize;

    /// The threshold `s`: orthogonal pairs have (absolute) embedded inner product at
    /// least `s`.
    fn threshold(&self) -> f64;

    /// The approximate threshold `cs`: non-orthogonal pairs have (absolute) embedded
    /// inner product at most `cs`.
    fn approx_threshold(&self) -> f64;

    /// Whether the guarantee is signed (no absolute values) or unsigned.
    fn is_signed(&self) -> bool;

    /// The map `f` applied to vectors of the data set `P`.
    fn embed_data(&self, x: &BinaryVector) -> Result<DenseVector>;

    /// The map `g` applied to vectors of the query set `Q`.
    fn embed_query(&self, y: &BinaryVector) -> Result<DenseVector>;

    /// The implied approximation factor `c = cs / s`.
    fn approximation_factor(&self) -> f64 {
        self.approx_threshold() / self.threshold()
    }

    /// Embeds a whole slice of data vectors.
    fn embed_data_all(&self, xs: &[BinaryVector]) -> Result<Vec<DenseVector>> {
        xs.iter().map(|x| self.embed_data(x)).collect()
    }

    /// Embeds a whole slice of query vectors.
    fn embed_query_all(&self, ys: &[BinaryVector]) -> Result<Vec<DenseVector>> {
        ys.iter().map(|y| self.embed_query(y)).collect()
    }
}

fn check_dim(expected: usize, v: &BinaryVector) -> Result<()> {
    if v.dim() != expected {
        return Err(OvpError::InconsistentDimensions {
            expected,
            actual: v.dim(),
        });
    }
    Ok(())
}

/// Per-coordinate transform `f̂` of the `{−1,1}` constructions:
/// `f̂(0) = (1,−1,−1)`, `f̂(1) = (1,1,1)`.
fn f_hat(bit: bool) -> [f64; 3] {
    if bit {
        [1.0, 1.0, 1.0]
    } else {
        [1.0, -1.0, -1.0]
    }
}

/// Per-coordinate transform `ĝ`: `ĝ(0) = (1,1,−1)`, `ĝ(1) = (−1,−1,−1)`.
fn g_hat(bit: bool) -> [f64; 3] {
    if bit {
        [-1.0, -1.0, -1.0]
    } else {
        [1.0, 1.0, -1.0]
    }
}

/// Applies the coordinate-wise `f̂` transform, producing a `3d`-dimensional `{−1,1}`
/// vector whose inner product with the `ĝ` transform of `y` equals `d − 4·xᵀy`.
fn coordinatewise_f(x: &BinaryVector) -> DenseVector {
    let mut out = Vec::with_capacity(3 * x.dim());
    for bit in x.iter_bits() {
        out.extend_from_slice(&f_hat(bit));
    }
    DenseVector::new(out)
}

/// Applies the coordinate-wise `ĝ` transform.
fn coordinatewise_g(y: &BinaryVector) -> DenseVector {
    let mut out = Vec::with_capacity(3 * y.dim());
    for bit in y.iter_bits() {
        out.extend_from_slice(&g_hat(bit));
    }
    DenseVector::new(out)
}

// ---------------------------------------------------------------------------
// Embedding 1: the signed (d, 4d−4, 0, 4) embedding into {−1,1}.
// ---------------------------------------------------------------------------

/// Lemma 3, embedding 1: `f(x)ᵀg(y) = 4 − 4·xᵀy`, so orthogonal pairs map to inner
/// product exactly 4 and non-orthogonal pairs to at most 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedEmbedding {
    input_dim: usize,
}

impl SignedEmbedding {
    /// Creates the embedding for OVP dimension `d ≥ 4` (the translation pad has length
    /// `d − 4`).
    pub fn new(input_dim: usize) -> Result<Self> {
        if input_dim < 4 {
            return Err(OvpError::InvalidParameter {
                name: "input_dim",
                reason: format!("signed embedding requires d >= 4, got {input_dim}"),
            });
        }
        Ok(Self { input_dim })
    }
}

impl GapEmbedding for SignedEmbedding {
    fn domain(&self) -> Domain {
        Domain::PlusMinusOne
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        4 * self.input_dim - 4
    }

    fn threshold(&self) -> f64 {
        4.0
    }

    fn approx_threshold(&self) -> f64 {
        0.0
    }

    fn is_signed(&self) -> bool {
        true
    }

    fn embed_data(&self, x: &BinaryVector) -> Result<DenseVector> {
        check_dim(self.input_dim, x)?;
        let core = coordinatewise_f(x);
        let pad = DenseVector::new(vec![1.0; self.input_dim - 4]);
        Ok(core.concat(&pad))
    }

    fn embed_query(&self, y: &BinaryVector) -> Result<DenseVector> {
        check_dim(self.input_dim, y)?;
        let core = coordinatewise_g(y);
        let pad = DenseVector::new(vec![-1.0; self.input_dim - 4]);
        Ok(core.concat(&pad))
    }
}

// ---------------------------------------------------------------------------
// Embedding 2: the deterministic Chebyshev embedding into {−1,1}.
// ---------------------------------------------------------------------------

/// Lemma 3, embedding 2: realises the scaled Chebyshev polynomial
/// `(2d)^q · T_q(u / 2d)` of the translated inner product
/// `u = 2d + 2 − 4·xᵀy` as an exact `{−1,1}` inner product.
///
/// Orthogonal pairs (`u = 2d + 2`) are mapped above `s = (2d)^q·T_q(1 + 1/d)`, which
/// grows like `e^{q/√d}` relative to the non-orthogonal bound `cs = (2d)^q` — the gap
/// amplification at the core of Theorem 1, case 2 and Theorem 2, case 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChebyshevEmbedding {
    input_dim: usize,
    degree: u32,
}

impl ChebyshevEmbedding {
    /// Creates the degree-`q` Chebyshev embedding for OVP dimension `d ≥ 2`.
    ///
    /// The output dimension grows roughly like `(9d)^q`; construction is rejected when
    /// it would exceed `2^26` coordinates to keep memory bounded.
    pub fn new(input_dim: usize, degree: u32) -> Result<Self> {
        if input_dim < 2 {
            return Err(OvpError::InvalidParameter {
                name: "input_dim",
                reason: format!("chebyshev embedding requires d >= 2, got {input_dim}"),
            });
        }
        if degree == 0 {
            return Err(OvpError::InvalidParameter {
                name: "degree",
                reason: "degree q must be at least 1".into(),
            });
        }
        let emb = Self { input_dim, degree };
        let dim = emb.output_dim_checked()?;
        if dim > (1 << 26) {
            return Err(OvpError::InvalidParameter {
                name: "degree",
                reason: format!(
                    "output dimension {dim} exceeds the 2^26 safety limit; lower d or q"
                ),
            });
        }
        Ok(emb)
    }

    /// Chebyshev degree `q`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Dimension of the translated base vectors `x̄, ȳ` (`4d + 2`).
    fn base_dim(&self) -> usize {
        4 * self.input_dim + 2
    }

    fn output_dim_checked(&self) -> Result<usize> {
        // d_0 = 1, d_1 = 4d+2, d_q = 2(4d+2) d_{q−1} + (2d)² d_{q−2}.
        let base = self.base_dim();
        let b_sq = 4 * self.input_dim * self.input_dim;
        let (mut prev2, mut prev1) = (1usize, base);
        if self.degree == 0 {
            return Ok(1);
        }
        for _ in 2..=self.degree {
            let next = 2usize
                .checked_mul(base)
                .and_then(|x| x.checked_mul(prev1))
                .and_then(|x| x.checked_add(b_sq.checked_mul(prev2)?))
                .ok_or_else(|| OvpError::InvalidParameter {
                    name: "degree",
                    reason: "output dimension overflows usize".into(),
                })?;
            prev2 = prev1;
            prev1 = next;
        }
        Ok(prev1)
    }

    /// The translated base vector `x̄` (data side).
    fn base_data(&self, x: &BinaryVector) -> DenseVector {
        let core = coordinatewise_f(x);
        core.concat(&DenseVector::new(vec![1.0; self.input_dim + 2]))
    }

    /// The translated base vector `ȳ` (query side).
    fn base_query(&self, y: &BinaryVector) -> DenseVector {
        let core = coordinatewise_g(y);
        core.concat(&DenseVector::new(vec![1.0; self.input_dim + 2]))
    }

    /// Builds the recursive tower `f_q` / `g_q`. `negate_prev2` distinguishes the data
    /// side (no negation) from the query side (negated `g_{q−2}` blocks).
    fn build_tower(&self, base: &DenseVector, query_side: bool) -> Result<DenseVector> {
        let b_sq = 4 * self.input_dim * self.input_dim;
        let mut prev2 = DenseVector::new(vec![1.0]); // level 0
        let mut prev1 = base.clone(); // level 1
        if self.degree == 1 {
            return Ok(prev1);
        }
        for _ in 2..=self.degree {
            let doubled = repeat(&tensor(base, &prev1), 2);
            let tail_source = if query_side {
                prev2.negated()
            } else {
                prev2.clone()
            };
            let tail = repeat(&tail_source, b_sq);
            let next = concat_all(&[doubled, tail])?;
            prev2 = prev1;
            prev1 = next;
        }
        Ok(prev1)
    }

    /// The exact embedded inner product for a pair with original inner product `ip`.
    pub fn embedded_inner_product(&self, ip: usize) -> f64 {
        let u = 2.0 * self.input_dim as f64 + 2.0 - 4.0 * ip as f64;
        scaled_chebyshev(self.degree, u, 2.0 * self.input_dim as f64)
    }
}

impl GapEmbedding for ChebyshevEmbedding {
    fn domain(&self) -> Domain {
        Domain::PlusMinusOne
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim_checked()
            .expect("dimension was validated at construction")
    }

    fn threshold(&self) -> f64 {
        let b = 2.0 * self.input_dim as f64;
        b.powi(self.degree as i32) * chebyshev_t_outside(self.degree, 1.0 / self.input_dim as f64)
    }

    fn approx_threshold(&self) -> f64 {
        (2.0 * self.input_dim as f64).powi(self.degree as i32)
    }

    fn is_signed(&self) -> bool {
        false
    }

    fn embed_data(&self, x: &BinaryVector) -> Result<DenseVector> {
        check_dim(self.input_dim, x)?;
        self.build_tower(&self.base_data(x), false)
    }

    fn embed_query(&self, y: &BinaryVector) -> Result<DenseVector> {
        check_dim(self.input_dim, y)?;
        self.build_tower(&self.base_query(y), true)
    }
}

// ---------------------------------------------------------------------------
// Embedding 3: the chopped-product embedding into {0,1}.
// ---------------------------------------------------------------------------

/// Lemma 3, embedding 3: the polynomial `Σ_{chunks} Π_{j∈chunk} (1 − x_j y_j)` realised
/// over `{0,1}` by chunk-wise tensoring. Orthogonal pairs evaluate to the number of
/// chunks `k`; non-orthogonal pairs to at most `k − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroOneEmbedding {
    input_dim: usize,
    chunks: usize,
}

impl ZeroOneEmbedding {
    /// Maximum chunk length accepted (each chunk contributes `2^len` coordinates).
    const MAX_CHUNK_LEN: usize = 24;

    /// Creates the embedding splitting the `d` coordinates into `k` chunks
    /// (`1 ≤ k ≤ d`).
    pub fn new(input_dim: usize, chunks: usize) -> Result<Self> {
        if input_dim == 0 {
            return Err(OvpError::InvalidParameter {
                name: "input_dim",
                reason: "dimension must be positive".into(),
            });
        }
        if chunks == 0 || chunks > input_dim {
            return Err(OvpError::InvalidParameter {
                name: "chunks",
                reason: format!("need 1 <= k <= d, got k={chunks}, d={input_dim}"),
            });
        }
        let longest = input_dim.div_ceil(chunks);
        if longest > Self::MAX_CHUNK_LEN {
            return Err(OvpError::InvalidParameter {
                name: "chunks",
                reason: format!(
                    "chunk length {longest} exceeds the limit of {} (output would need 2^{longest} coordinates per chunk)",
                    Self::MAX_CHUNK_LEN
                ),
            });
        }
        Ok(Self { input_dim, chunks })
    }

    /// Number of chunks `k`.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// The chunk boundaries: `k` half-open ranges covering `0..d`.
    fn chunk_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let base = self.input_dim / self.chunks;
        let remainder = self.input_dim % self.chunks;
        let mut ranges = Vec::with_capacity(self.chunks);
        let mut start = 0usize;
        for c in 0..self.chunks {
            let len = base + usize::from(c < remainder);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    fn embed_side(&self, v: &BinaryVector, data_side: bool) -> Result<DenseVector> {
        check_dim(self.input_dim, v)?;
        let mut parts = Vec::with_capacity(self.chunks);
        for range in self.chunk_ranges() {
            let mut acc = DenseVector::new(vec![1.0]);
            for j in range {
                let bit = v.get(j);
                let pair = if data_side {
                    // data side: (1 − x_j, 1)
                    DenseVector::new(vec![if bit { 0.0 } else { 1.0 }, 1.0])
                } else {
                    // query side: (y_j, 1 − y_j)
                    DenseVector::new(vec![
                        if bit { 1.0 } else { 0.0 },
                        if bit { 0.0 } else { 1.0 },
                    ])
                };
                acc = tensor(&acc, &pair);
            }
            parts.push(acc);
        }
        Ok(concat_all(&parts)?)
    }
}

impl GapEmbedding for ZeroOneEmbedding {
    fn domain(&self) -> Domain {
        Domain::ZeroOne
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.chunk_ranges().iter().map(|r| 1usize << r.len()).sum()
    }

    fn threshold(&self) -> f64 {
        self.chunks as f64
    }

    fn approx_threshold(&self) -> f64 {
        self.chunks as f64 - 1.0
    }

    fn is_signed(&self) -> bool {
        false
    }

    fn embed_data(&self, x: &BinaryVector) -> Result<DenseVector> {
        self.embed_side(x, true)
    }

    fn embed_query(&self, y: &BinaryVector) -> Result<DenseVector> {
        self.embed_side(y, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_linalg::random::random_binary_vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE1BED)
    }

    fn random_pair_with_ip(
        rng: &mut StdRng,
        dim: usize,
        want_orthogonal: bool,
    ) -> (BinaryVector, BinaryVector) {
        loop {
            let x = random_binary_vector(rng, dim, 0.4).unwrap();
            let y = random_binary_vector(rng, dim, 0.4).unwrap();
            let orth = x.is_orthogonal_to(&y).unwrap();
            if orth == want_orthogonal && x.count_ones() > 0 && y.count_ones() > 0 {
                return (x, y);
            }
        }
    }

    // --- Embedding 1 -------------------------------------------------------

    #[test]
    fn signed_embedding_parameters() {
        assert!(SignedEmbedding::new(3).is_err());
        let e = SignedEmbedding::new(10).unwrap();
        assert_eq!(e.input_dim(), 10);
        assert_eq!(e.output_dim(), 36);
        assert_eq!(e.threshold(), 4.0);
        assert_eq!(e.approx_threshold(), 0.0);
        assert!(e.is_signed());
        assert_eq!(e.domain(), Domain::PlusMinusOne);
        assert_eq!(e.approximation_factor(), 0.0);
    }

    #[test]
    fn signed_embedding_inner_product_identity() {
        let mut r = rng();
        let dim = 12;
        let e = SignedEmbedding::new(dim).unwrap();
        for _ in 0..30 {
            let x = random_binary_vector(&mut r, dim, 0.5).unwrap();
            let y = random_binary_vector(&mut r, dim, 0.5).unwrap();
            let fx = e.embed_data(&x).unwrap();
            let gy = e.embed_query(&y).unwrap();
            assert_eq!(fx.dim(), e.output_dim());
            assert_eq!(gy.dim(), e.output_dim());
            // Entries stay in {−1, 1}.
            assert!(fx.iter().all(|&v| v == 1.0 || v == -1.0));
            assert!(gy.iter().all(|&v| v == 1.0 || v == -1.0));
            let ip = x.dot(&y).unwrap() as f64;
            let embedded = fx.dot(&gy).unwrap();
            assert_eq!(embedded, 4.0 - 4.0 * ip, "identity f(x)ᵀg(y) = 4 − 4 xᵀy");
        }
    }

    #[test]
    fn signed_embedding_gap_guarantee() {
        let mut r = rng();
        let dim = 16;
        let e = SignedEmbedding::new(dim).unwrap();
        for _ in 0..10 {
            let (x, y) = random_pair_with_ip(&mut r, dim, true);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap();
            assert!(v >= e.threshold());
            let (x, y) = random_pair_with_ip(&mut r, dim, false);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap();
            assert!(v <= e.approx_threshold());
        }
        assert!(e.embed_data(&BinaryVector::zeros(3)).is_err());
        assert!(e.embed_query(&BinaryVector::zeros(3)).is_err());
    }

    // --- Embedding 2 -------------------------------------------------------

    #[test]
    fn chebyshev_embedding_parameters() {
        assert!(ChebyshevEmbedding::new(1, 2).is_err());
        assert!(ChebyshevEmbedding::new(8, 0).is_err());
        assert!(ChebyshevEmbedding::new(64, 12).is_err()); // dimension guard
        let e = ChebyshevEmbedding::new(8, 2).unwrap();
        assert_eq!(e.degree(), 2);
        assert_eq!(e.input_dim(), 8);
        assert!(!e.is_signed());
        assert_eq!(e.domain(), Domain::PlusMinusOne);
        // d_1 = 4·8 + 2 = 34; d_2 = 2·34·34 + (16)²·1 = 2568.
        assert_eq!(e.output_dim(), 2568);
        // Threshold exceeds the approx threshold (that is the whole point).
        assert!(e.threshold() > e.approx_threshold());
        assert!(e.approximation_factor() < 1.0);
    }

    #[test]
    fn chebyshev_degree_one_matches_base_translation() {
        let mut r = rng();
        let dim = 6;
        let e = ChebyshevEmbedding::new(dim, 1).unwrap();
        assert_eq!(e.output_dim(), 4 * dim + 2);
        for _ in 0..20 {
            let x = random_binary_vector(&mut r, dim, 0.5).unwrap();
            let y = random_binary_vector(&mut r, dim, 0.5).unwrap();
            let fx = e.embed_data(&x).unwrap();
            let gy = e.embed_query(&y).unwrap();
            let ip = x.dot(&y).unwrap();
            let expected = 2.0 * dim as f64 + 2.0 - 4.0 * ip as f64;
            assert_eq!(fx.dot(&gy).unwrap(), expected);
            assert_eq!(expected, e.embedded_inner_product(ip));
        }
    }

    #[test]
    fn chebyshev_embedding_realises_scaled_polynomial() {
        let mut r = rng();
        let dim = 5;
        for degree in [2u32, 3] {
            let e = ChebyshevEmbedding::new(dim, degree).unwrap();
            for _ in 0..8 {
                let x = random_binary_vector(&mut r, dim, 0.5).unwrap();
                let y = random_binary_vector(&mut r, dim, 0.5).unwrap();
                let fx = e.embed_data(&x).unwrap();
                let gy = e.embed_query(&y).unwrap();
                assert_eq!(fx.dim(), e.output_dim());
                assert!(fx.iter().all(|&v| v == 1.0 || v == -1.0));
                assert!(gy.iter().all(|&v| v == 1.0 || v == -1.0));
                let ip = x.dot(&y).unwrap();
                let expected = e.embedded_inner_product(ip);
                let actual = fx.dot(&gy).unwrap();
                assert!(
                    (actual - expected).abs() < 1e-6 * expected.abs().max(1.0),
                    "q={degree}, ip={ip}: embedded {actual} vs polynomial {expected}"
                );
            }
        }
    }

    #[test]
    fn chebyshev_embedding_gap_guarantee() {
        let mut r = rng();
        let dim = 8;
        let e = ChebyshevEmbedding::new(dim, 2).unwrap();
        for _ in 0..10 {
            let (x, y) = random_pair_with_ip(&mut r, dim, true);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap()
                .abs();
            assert!(
                v >= e.threshold() - 1e-6,
                "orthogonal pair below threshold: {v}"
            );
            let (x, y) = random_pair_with_ip(&mut r, dim, false);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap()
                .abs();
            assert!(
                v <= e.approx_threshold() + 1e-6,
                "non-orthogonal pair above cs: {v}"
            );
        }
    }

    #[test]
    fn chebyshev_gap_grows_with_degree() {
        // s/cs = T_q(1 + 1/d) is increasing in q.
        let dim = 8;
        let gap_q1 = {
            let e = ChebyshevEmbedding::new(dim, 1).unwrap();
            e.threshold() / e.approx_threshold()
        };
        let gap_q3 = {
            let e = ChebyshevEmbedding::new(dim, 3).unwrap();
            e.threshold() / e.approx_threshold()
        };
        assert!(gap_q3 > gap_q1);
    }

    // --- Embedding 3 -------------------------------------------------------

    #[test]
    fn zero_one_embedding_parameters() {
        assert!(ZeroOneEmbedding::new(0, 1).is_err());
        assert!(ZeroOneEmbedding::new(8, 0).is_err());
        assert!(ZeroOneEmbedding::new(8, 9).is_err());
        assert!(ZeroOneEmbedding::new(64, 2).is_err()); // chunk of 32 exceeds the limit
        let e = ZeroOneEmbedding::new(12, 3).unwrap();
        assert_eq!(e.chunks(), 3);
        assert_eq!(e.input_dim(), 12);
        assert_eq!(e.output_dim(), 3 * (1 << 4));
        assert_eq!(e.threshold(), 3.0);
        assert_eq!(e.approx_threshold(), 2.0);
        assert!(!e.is_signed());
        assert_eq!(e.domain(), Domain::ZeroOne);
        assert!((e.approximation_factor() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_one_embedding_counts_clean_chunks() {
        let mut r = rng();
        let dim = 12;
        let k = 4;
        let e = ZeroOneEmbedding::new(dim, k).unwrap();
        for _ in 0..30 {
            let x = random_binary_vector(&mut r, dim, 0.4).unwrap();
            let y = random_binary_vector(&mut r, dim, 0.4).unwrap();
            let fx = e.embed_data(&x).unwrap();
            let gy = e.embed_query(&y).unwrap();
            assert_eq!(fx.dim(), e.output_dim());
            assert!(fx.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(gy.iter().all(|&v| v == 0.0 || v == 1.0));
            // Manually count chunks without a shared 1.
            let mut expected = 0.0;
            for range in e.chunk_ranges() {
                let clean = range.clone().all(|j| !(x.get(j) && y.get(j)));
                if clean {
                    expected += 1.0;
                }
            }
            assert_eq!(fx.dot(&gy).unwrap(), expected);
        }
    }

    #[test]
    fn zero_one_embedding_gap_guarantee() {
        let mut r = rng();
        let dim = 15;
        let e = ZeroOneEmbedding::new(dim, 5).unwrap();
        for _ in 0..10 {
            let (x, y) = random_pair_with_ip(&mut r, dim, true);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap();
            assert_eq!(v, e.threshold());
            let (x, y) = random_pair_with_ip(&mut r, dim, false);
            let v = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap();
            assert!(v <= e.approx_threshold());
        }
        assert!(e.embed_data(&BinaryVector::zeros(3)).is_err());
    }

    #[test]
    fn zero_one_uneven_chunks_cover_all_coordinates() {
        let e = ZeroOneEmbedding::new(10, 3).unwrap();
        let ranges = e.chunk_ranges();
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
    }

    #[test]
    fn batch_embedding_helpers() {
        let mut r = rng();
        let dim = 8;
        let e = SignedEmbedding::new(dim).unwrap();
        let xs: Vec<BinaryVector> = (0..5)
            .map(|_| random_binary_vector(&mut r, dim, 0.5).unwrap())
            .collect();
        let embedded = e.embed_data_all(&xs).unwrap();
        assert_eq!(embedded.len(), 5);
        let ys: Vec<BinaryVector> = (0..3)
            .map(|_| random_binary_vector(&mut r, dim, 0.5).unwrap())
            .collect();
        assert_eq!(e.embed_query_all(&ys).unwrap().len(), 3);
    }

    #[test]
    fn embeddings_work_inside_lemma2_sanity_check() {
        // A miniature version of the Lemma 2 argument: embed an instance and check that
        // thresholding the embedded inner products recovers orthogonality exactly.
        let mut r = rng();
        let dim = 10;
        let e = ZeroOneEmbedding::new(dim, 5).unwrap();
        for _ in 0..5 {
            let x = random_binary_vector(&mut r, dim, 0.3).unwrap();
            let y = random_binary_vector(&mut r, dim, 0.3).unwrap();
            let embedded = e
                .embed_data(&x)
                .unwrap()
                .dot(&e.embed_query(&y).unwrap())
                .unwrap();
            let is_orth = x.is_orthogonal_to(&y).unwrap();
            assert_eq!(embedded >= e.threshold(), is_orth);
        }
        // Also exercise gen_range to silence the unused Rng import in some cfgs.
        let _ = r.gen_range(0..10);
    }
}
