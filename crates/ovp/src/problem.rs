//! OVP instances.
//!
//! Definition 3 of the paper: given two sets `P, Q ⊆ {0,1}^d` of `n` vectors each,
//! decide whether there exist `p ∈ P` and `q ∈ Q` with `pᵀq = 0`. The conjectured
//! hardness (no `O(n^{2−ε})` algorithm once `d = ω(log n)`) is the source of every
//! conditional lower bound in the paper. The generalised, asymmetric-size version used
//! by Lemma 1 (`|P| = n^α`, `|Q| = n`) is supported directly: the two sides may have
//! different cardinalities.

use crate::error::{OvpError, Result};
use ips_linalg::BinaryVector;

/// An Orthogonal Vectors Problem instance: two sets of binary vectors of a common
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OvpInstance {
    dim: usize,
    p: Vec<BinaryVector>,
    q: Vec<BinaryVector>,
}

impl OvpInstance {
    /// Creates an instance from the two vector sets.
    ///
    /// Returns an error if either side is empty or any vector disagrees on dimension.
    pub fn new(p: Vec<BinaryVector>, q: Vec<BinaryVector>) -> Result<Self> {
        let first = p
            .first()
            .or_else(|| q.first())
            .ok_or(OvpError::EmptyInstance)?;
        let dim = first.dim();
        if p.is_empty() || q.is_empty() {
            return Err(OvpError::EmptyInstance);
        }
        for v in p.iter().chain(q.iter()) {
            if v.dim() != dim {
                return Err(OvpError::InconsistentDimensions {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        Ok(Self { dim, p, q })
    }

    /// Dimension of the vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `P` side of the instance.
    pub fn p(&self) -> &[BinaryVector] {
        &self.p
    }

    /// The `Q` side of the instance.
    pub fn q(&self) -> &[BinaryVector] {
        &self.q
    }

    /// `|P|`.
    pub fn p_len(&self) -> usize {
        self.p.len()
    }

    /// `|Q|`.
    pub fn q_len(&self) -> usize {
        self.q.len()
    }

    /// Checks whether a specific pair `(i, j)` (indices into `P` and `Q`) is orthogonal.
    pub fn is_orthogonal_pair(&self, i: usize, j: usize) -> Result<bool> {
        let p = self.p.get(i).ok_or(OvpError::InvalidParameter {
            name: "i",
            reason: format!("index {i} out of range for |P| = {}", self.p.len()),
        })?;
        let q = self.q.get(j).ok_or(OvpError::InvalidParameter {
            name: "j",
            reason: format!("index {j} out of range for |Q| = {}", self.q.len()),
        })?;
        Ok(p.is_orthogonal_to(q)?)
    }

    /// Total number of candidate pairs `|P|·|Q|` (the work a quadratic algorithm does).
    pub fn pair_count(&self) -> usize {
        self.p.len() * self.q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BinaryVector {
        BinaryVector::from_ints(bits)
    }

    #[test]
    fn construction_validates_dimensions() {
        let inst = OvpInstance::new(vec![bv(&[1, 0]), bv(&[0, 1])], vec![bv(&[1, 1])]).unwrap();
        assert_eq!(inst.dim(), 2);
        assert_eq!(inst.p_len(), 2);
        assert_eq!(inst.q_len(), 1);
        assert_eq!(inst.pair_count(), 2);
        assert!(OvpInstance::new(vec![], vec![bv(&[1])]).is_err());
        assert!(OvpInstance::new(vec![bv(&[1])], vec![]).is_err());
        assert!(OvpInstance::new(vec![bv(&[1, 0])], vec![bv(&[1])]).is_err());
    }

    #[test]
    fn orthogonal_pair_check() {
        let inst = OvpInstance::new(
            vec![bv(&[1, 0, 0]), bv(&[1, 1, 0])],
            vec![bv(&[0, 0, 1]), bv(&[1, 0, 0])],
        )
        .unwrap();
        assert!(inst.is_orthogonal_pair(0, 0).unwrap());
        assert!(!inst.is_orthogonal_pair(0, 1).unwrap());
        assert!(inst.is_orthogonal_pair(1, 0).unwrap());
        assert!(inst.is_orthogonal_pair(5, 0).is_err());
        assert!(inst.is_orthogonal_pair(0, 5).is_err());
    }

    #[test]
    fn accessors_expose_sides() {
        let p = vec![bv(&[1, 0])];
        let q = vec![bv(&[0, 1]), bv(&[1, 1])];
        let inst = OvpInstance::new(p.clone(), q.clone()).unwrap();
        assert_eq!(inst.p(), &p[..]);
        assert_eq!(inst.q(), &q[..]);
    }
}
