//! # ips-ovp
//!
//! The Orthogonal Vectors Problem (OVP) side of the paper: instances, exact solvers,
//! random generators, the three *gap embeddings* of Lemma 3, and the Lemma 2 reduction
//! that turns any subquadratic `(cs, s)` IPS-join algorithm into a subquadratic OVP
//! algorithm (thereby refuting the OVP conjecture / SETH).
//!
//! The hardness results of Section 2 (Theorems 1 and 2, summarised in Table 1) are
//! *constructive* at their core: each row of Table 1 corresponds to a family of
//! embeddings `(f, g)` mapping `{0,1}^d` OVP vectors into `{−1,1}` or `{0,1}` vectors
//! whose inner products sit above `s` exactly for orthogonal pairs and below `cs`
//! otherwise. This crate implements those embeddings exactly as described:
//!
//! * [`embedding::SignedEmbedding`] — Lemma 3, embedding 1: the signed
//!   `(d, 4d−4, 0, 4)` embedding into `{−1,1}`;
//! * [`embedding::ChebyshevEmbedding`] — Lemma 3, embedding 2: the deterministic
//!   `(d, (9d)^q, (2d)^q, (2d)^q·T_q(1+1/d))` embedding into `{−1,1}`;
//! * [`embedding::ZeroOneEmbedding`] — Lemma 3, embedding 3: the chopped-product
//!   `(d, k·2^{d/k}, k−1, k)` embedding into `{0,1}`.
//!
//! Experiment **E1** (Table 1) sweeps these embeddings and verifies their gap
//! guarantees; experiment **E8** runs the full OVP → join reduction end-to-end.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod embedding;
pub mod error;
pub mod generator;
pub mod parametrize;
pub mod problem;
pub mod reduction;
pub mod solvers;

pub use embedding::{ChebyshevEmbedding, Domain, GapEmbedding, SignedEmbedding, ZeroOneEmbedding};
pub use error::{OvpError, Result};
pub use generator::{no_pair_instance, planted_instance, random_instance};
pub use problem::OvpInstance;
pub use solvers::{brute_force_pair, count_orthogonal_pairs, split_chunk_pair};
