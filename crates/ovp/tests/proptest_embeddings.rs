//! Property-based tests for the Lemma 3 gap embeddings: the gap guarantee of
//! Definition 4 must hold for *every* pair of binary vectors, not just the sampled ones
//! used in the unit tests.

use ips_linalg::BinaryVector;
use ips_ovp::{ChebyshevEmbedding, Domain, GapEmbedding, SignedEmbedding, ZeroOneEmbedding};
use proptest::prelude::*;

fn bit_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

fn check_gap<E: GapEmbedding>(
    embedding: &E,
    x: &BinaryVector,
    y: &BinaryVector,
) -> Result<(), TestCaseError> {
    let fx = embedding.embed_data(x).unwrap();
    let gy = embedding.embed_query(y).unwrap();
    prop_assert_eq!(fx.dim(), embedding.output_dim());
    prop_assert_eq!(gy.dim(), embedding.output_dim());
    // Alphabet check.
    match embedding.domain() {
        Domain::PlusMinusOne => {
            prop_assert!(fx.iter().all(|&v| v == 1.0 || v == -1.0));
            prop_assert!(gy.iter().all(|&v| v == 1.0 || v == -1.0));
        }
        Domain::ZeroOne => {
            prop_assert!(fx.iter().all(|&v| v == 0.0 || v == 1.0));
            prop_assert!(gy.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }
    let mut ip = fx.dot(&gy).unwrap();
    if !embedding.is_signed() {
        ip = ip.abs();
    }
    if x.is_orthogonal_to(y).unwrap() {
        prop_assert!(
            ip >= embedding.threshold() - 1e-6,
            "orthogonal pair fell below s: {} < {}",
            ip,
            embedding.threshold()
        );
    } else {
        prop_assert!(
            ip <= embedding.approx_threshold() + 1e-6,
            "non-orthogonal pair exceeded cs: {} > {}",
            ip,
            embedding.approx_threshold()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn signed_embedding_gap_holds(xa in bit_vec(12), xb in bit_vec(12)) {
        let embedding = SignedEmbedding::new(12).unwrap();
        let x = BinaryVector::from_bools(&xa);
        let y = BinaryVector::from_bools(&xb);
        check_gap(&embedding, &x, &y)?;
        // The exact identity f(x)ᵀg(y) = 4 − 4·xᵀy.
        let ip = embedding.embed_data(&x).unwrap().dot(&embedding.embed_query(&y).unwrap()).unwrap();
        prop_assert_eq!(ip, 4.0 - 4.0 * x.dot(&y).unwrap() as f64);
    }

    #[test]
    fn chebyshev_embedding_gap_holds(xa in bit_vec(6), xb in bit_vec(6), q in 1u32..=3) {
        let embedding = ChebyshevEmbedding::new(6, q).unwrap();
        let x = BinaryVector::from_bools(&xa);
        let y = BinaryVector::from_bools(&xb);
        check_gap(&embedding, &x, &y)?;
        // The embedded inner product matches the scaled Chebyshev polynomial exactly.
        let ip = embedding.embed_data(&x).unwrap().dot(&embedding.embed_query(&y).unwrap()).unwrap();
        let predicted = embedding.embedded_inner_product(x.dot(&y).unwrap());
        prop_assert!((ip - predicted).abs() < 1e-6 * predicted.abs().max(1.0));
    }

    #[test]
    fn zero_one_embedding_gap_holds(xa in bit_vec(12), xb in bit_vec(12), k in 2usize..=6) {
        let embedding = ZeroOneEmbedding::new(12, k).unwrap();
        let x = BinaryVector::from_bools(&xa);
        let y = BinaryVector::from_bools(&xb);
        check_gap(&embedding, &x, &y)?;
    }

    #[test]
    fn approximation_factor_is_consistent(k in 2usize..=8) {
        let embedding = ZeroOneEmbedding::new(16, k).unwrap();
        prop_assert!((embedding.approximation_factor() - (k as f64 - 1.0) / k as f64).abs() < 1e-12);
        prop_assert!(embedding.approximation_factor() < 1.0);
    }
}
