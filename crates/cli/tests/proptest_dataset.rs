//! Property-based tests for the CSV vector format: writing then reading any finite
//! vector collection is the identity (up to f64 printing round-trip, which Rust's
//! `{}` formatting guarantees to be exact).

use ips_cli::dataset::{read_vectors_from, write_vectors_to, DatasetSummary};
use ips_linalg::DenseVector;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_roundtrip_is_lossless(
        rows in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 1..12),
            1..20,
        ),
        dim_index in 0usize..12,
    ) {
        // Force every row to the same dimension (the format requires it).
        let dim = 1 + dim_index % rows[0].len().max(1);
        let vectors: Vec<DenseVector> = rows
            .iter()
            .map(|r| DenseVector::new(r.iter().cycle().take(dim).copied().collect()))
            .collect();
        let mut buffer = Vec::new();
        write_vectors_to(&mut buffer, &vectors).unwrap();
        let parsed = read_vectors_from(buffer.as_slice(), "roundtrip").unwrap();
        prop_assert_eq!(parsed, vectors);
    }

    #[test]
    fn summary_bounds_are_consistent(
        rows in prop::collection::vec(prop::collection::vec(-100f64..100.0, 3), 1..30),
    ) {
        let vectors: Vec<DenseVector> = rows.iter().map(|r| DenseVector::from(&r[..])).collect();
        let summary = DatasetSummary::of(&vectors).unwrap();
        prop_assert_eq!(summary.count, vectors.len());
        prop_assert_eq!(summary.dim, 3);
        prop_assert!(summary.min_norm <= summary.mean_norm + 1e-12);
        prop_assert!(summary.mean_norm <= summary.max_norm + 1e-12);
        for v in &vectors {
            prop_assert!(v.norm() >= summary.min_norm - 1e-12);
            prop_assert!(v.norm() <= summary.max_norm + 1e-12);
        }
    }
}
