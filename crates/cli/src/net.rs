//! The TCP serving front-end: the `ips serve listen=…` server.
//!
//! Speaks exactly the stdin line protocol ([`crate::serve`]) over per-connection
//! streams — same banner, same replies, byte for byte — so a client cannot tell
//! (and tests can assert) that the transport changed. The moving parts:
//!
//! * **accept loop** — one listener thread accepts connections and hands each
//!   to its own session thread (thread-per-connection, *bounded*: a counting
//!   semaphore caps concurrent sessions at [`NetConfig::workers`]; excess
//!   connections queue in the OS accept backlog until a permit frees up);
//! * **per-connection sessions** — each runs [`serve_session_with`] over a
//!   buffered reader/writer pair on the stream, with a read timeout
//!   ([`NetConfig::read_timeout`], so a slow-loris client times its own
//!   connection out instead of pinning a worker) and a line cap
//!   ([`NetConfig::max_line_bytes`]); a failing session errors and closes
//!   *alone* — the index behind it is only ever touched through its shard
//!   locks, which the session layer cannot poison;
//! * **query coalescing** — every session routes `query`/`topk` through the
//!   shared [`Coalescer`], so concurrent single-query connections merge into
//!   batched [`ips_core::JoinEngine`] passes (see `ips_store::coalesce` for
//!   the bit-identity argument);
//! * **graceful shutdown** — the `shutdown` protocol command (or
//!   [`NetServer::stop`]) flips a flag and wakes the accept loop with a
//!   self-connection; the loop stops accepting, waits for in-flight sessions
//!   to drain, and [`NetServer::join`] returns.

use crate::error::Result;
use crate::serve::{serve_session_with, SessionEnd, SessionOptions};
use ips_store::Coalescer;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning of the TCP front-end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`host:port`; port `0` asks the OS for an ephemeral
    /// port, which [`NetServer::local_addr`] reports — how the tests listen).
    pub addr: String,
    /// Maximum concurrent connection sessions (at least 1).
    pub workers: usize,
    /// Per-connection read timeout (`None` = wait forever). A timed-out
    /// connection gets a final `error:` line and is closed; nobody else is
    /// affected.
    pub read_timeout: Option<Duration>,
    /// Longest accepted protocol line, forwarded to
    /// [`SessionOptions::max_line_bytes`].
    pub max_line_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: SessionOptions::default().max_line_bytes,
        }
    }
}

/// The stop signal shared by the accept loop, the sessions and the handle:
/// a flag plus the bound address, because flipping the flag alone would leave
/// the accept loop blocked in `accept` — a self-connection wakes it.
struct Shutdown {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl Shutdown {
    fn requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Idempotent: the first caller flips the flag and wakes the accept loop.
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Best effort: if the connect fails the listener is already gone.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A counting semaphore bounding concurrent sessions ([`NetConfig::workers`]
/// permits). `std::sync` has no semaphore; a mutexed count plus a condvar is
/// one.
struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.freed.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.freed.notify_all();
    }

    /// Blocks until every permit is back — how shutdown drains in-flight
    /// sessions.
    fn wait_for_all(&self, total: usize) {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits < total {
            permits = self.freed.wait(permits).expect("semaphore poisoned");
        }
    }
}

/// A running TCP server; dropping it stops and drains the server.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The bound address — the ephemeral port when the config asked for `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown (idempotent, non-blocking): stop accepting, let
    /// in-flight sessions finish. [`NetServer::join`] observes the drain.
    pub fn stop(&self) {
        self.shutdown.trigger();
    }

    /// Waits until the server has shut down — via the `shutdown` protocol
    /// command from any connection, or [`NetServer::stop`] — and every
    /// in-flight session has drained.
    pub fn join(mut self) -> Result<()> {
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept thread panicked");
        }
        Ok(())
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.trigger();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Starts the TCP front-end over `coalescer` (which owns the shared
/// [`ips_store::ShardedServingIndex`]); returns once the listener is bound, so
/// [`NetServer::local_addr`] is immediately connectable.
pub fn serve_tcp(coalescer: Arc<Coalescer>, config: NetConfig) -> Result<NetServer> {
    let workers = config.workers.max(1);
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(Shutdown {
        flag: AtomicBool::new(false),
        addr: local_addr,
    });
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::spawn(move || {
        let sessions = Arc::new(Semaphore::new(workers));
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                // Transient accept errors (e.g. a connection reset before we
                // got to it) must not kill the server.
                Err(_) => {
                    if accept_shutdown.requested() {
                        break;
                    }
                    continue;
                }
            };
            if accept_shutdown.requested() {
                // The shutdown wake-up, or a client racing it: either way the
                // server is closing, so the connection is dropped unanswered.
                break;
            }
            // Bound the pool *before* spawning: with every permit taken, the
            // accept loop itself blocks here and further clients queue in the
            // OS backlog instead of getting unbounded threads.
            sessions.acquire();
            coalescer.index().note_connection();
            let session_coalescer = Arc::clone(&coalescer);
            let session_shutdown = Arc::clone(&accept_shutdown);
            let session_permit = Arc::clone(&sessions);
            let read_timeout = config.read_timeout;
            let max_line_bytes = config.max_line_bytes;
            std::thread::spawn(move || {
                run_session(
                    stream,
                    &session_coalescer,
                    &session_shutdown,
                    read_timeout,
                    max_line_bytes,
                );
                session_permit.release();
            });
        }
        // Drain: every session thread releases its permit on exit, even after
        // an error (release happens outside run_session).
        sessions.wait_for_all(workers);
    });
    Ok(NetServer {
        local_addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Runs one connection's session; all failure modes end *this* connection
/// only. The stream is cloned so the reader and writer halves can be buffered
/// independently (both clones reference the same socket).
fn run_session(
    stream: TcpStream,
    coalescer: &Coalescer,
    shutdown: &Shutdown,
    read_timeout: Option<Duration>,
    max_line_bytes: usize,
) {
    let _ = stream.set_read_timeout(read_timeout);
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let options = SessionOptions {
        coalescer: Some(coalescer),
        max_line_bytes,
    };
    match serve_session_with(coalescer.index(), &options, reader, &mut writer) {
        Ok(SessionEnd::Shutdown) => shutdown.trigger(),
        Ok(SessionEnd::Closed) => {}
        // An I/O failure mid-session — most commonly the read timeout firing
        // on a stalled client, or an abrupt disconnect. Say why (best effort;
        // a vanished peer simply won't hear it) and close.
        Err(e) => {
            let _ = writeln!(writer, "error: {e}; closing connection");
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::problem::{JoinSpec, JoinVariant};
    use ips_linalg::DenseVector;
    use ips_store::{CoalesceConfig, IndexConfig, ShardedConfig, ShardedServingIndex};
    use std::io::{BufRead, Read};

    fn coalescer() -> Arc<Coalescer> {
        let data = vec![
            DenseVector::from(&[0.9, 0.0][..]),
            DenseVector::from(&[0.0, 0.8][..]),
        ];
        let spec = JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap();
        let index = ShardedServingIndex::build(
            data,
            spec,
            IndexConfig::Brute,
            ShardedConfig::with_shards(2),
        )
        .unwrap();
        Arc::new(Coalescer::new(Arc::new(index), CoalesceConfig::default()))
    }

    fn send(addr: SocketAddr, script: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(script.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn tcp_session_is_byte_identical_to_the_stdin_path() {
        let coalescer = coalescer();
        let script = "query 1.0,0.0;0.0,1.0\ntopk 2 1.0,0.0\nquit\n";
        let mut expected = Vec::new();
        crate::serve::serve_session(coalescer.index(), script.as_bytes(), &mut expected).unwrap();
        let server = serve_tcp(Arc::clone(&coalescer), NetConfig::default()).unwrap();
        let got = send(server.local_addr(), script);
        assert_eq!(got.as_bytes(), expected.as_slice());
        server.stop();
        server.join().unwrap();
    }

    #[test]
    fn shutdown_command_stops_the_server_and_counts_connections() {
        let coalescer = coalescer();
        let server = serve_tcp(Arc::clone(&coalescer), NetConfig::default()).unwrap();
        let addr = server.local_addr();
        let first = send(addr, "query 1.0,0.0\nquit\n");
        assert!(first.contains("hit 0 "), "{first}");
        let second = send(addr, "shutdown\n");
        assert!(second.ends_with("bye\n"), "{second}");
        // join returns because the protocol command stopped the server.
        server.join().unwrap();
        assert!(TcpStream::connect(addr).map_or(true, |s| {
            // A racing connect may still succeed against the dead listener's
            // backlog; it must at least never get a banner.
            let mut reader = BufReader::new(s);
            let mut line = String::new();
            reader.read_line(&mut line).map_or(true, |n| n == 0)
        }));
        assert_eq!(coalescer.index().stats().connections, 2);
    }
}
