//! The `ips` binary: command dispatch and report printing for the `ips-cli` library.
//!
//! All usage text is generated from the declarative command schema in
//! [`ips_cli::schema`] — the same structs that parse and validate each command's
//! arguments — so `ips help` can never drift from what the commands accept.

use ips_adapt::{AdaptiveConfig, AdaptiveController};
use ips_cli::args::ParsedArgs;
use ips_cli::commands::{
    cmd_build, cmd_generate, cmd_info, cmd_join, cmd_query, cmd_search, cmd_serve,
};
use ips_cli::net::{serve_tcp, NetConfig};
use ips_cli::schema;
use ips_cli::serve::serve_session;
use ips_cli::CliError;
use ips_store::Coalescer;
use std::process::ExitCode;

/// `ips help [<command>]`: the overview, or one command's generated usage.
fn run_help(rest: &[String]) -> Result<(), CliError> {
    match rest {
        [] => println!("{}", schema::usage_overview()),
        [name] => match schema::command(name) {
            Some(spec) => println!("{}", spec.usage()),
            None => {
                return Err(CliError::Usage {
                    reason: format!("unknown command `{name}`; run `ips help` for the list"),
                })
            }
        },
        more => {
            return Err(CliError::Usage {
                reason: format!("help takes at most one command name, got {}", more.len()),
            })
        }
    }
    Ok(())
}

fn run() -> Result<(), CliError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        println!("{}", schema::usage_overview());
        return Ok(());
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        return run_help(rest);
    }
    let args = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "generate" => {
            let report = cmd_generate(&args)?;
            println!(
                "wrote {} data vectors (dim {}) to {}",
                report.data_count,
                report.dim,
                report.data_path.display()
            );
            if let Some(path) = &report.query_path {
                println!(
                    "wrote {} query vectors to {}",
                    report.query_count,
                    path.display()
                );
            }
        }
        "info" => {
            let summary = cmd_info(&args)?;
            println!("{summary}");
        }
        "join" => {
            let report = cmd_join(&args)?;
            if report.explain {
                if let Some(plan) = &report.plan {
                    print!("{}", plan.explain());
                }
            }
            println!(
                "{} join: {} pairs, recall {:.3}, valid {}, {:.1} ms",
                report.algorithm,
                report.pairs.len(),
                report.recall,
                report.valid,
                report.elapsed_ms
            );
            let limit = report.limit;
            for pair in report.pairs.iter().take(limit) {
                println!(
                    "  query {:>6}  data {:>6}  inner product {:+.6}",
                    pair.query_index, pair.data_index, pair.inner_product
                );
            }
            if report.pairs.len() > limit {
                println!(
                    "  … {} further pairs omitted (raise limit=)",
                    report.pairs.len() - limit
                );
            }
        }
        "search" => {
            let report = cmd_search(&args)?;
            for (j, hits) in report.results.iter().enumerate() {
                let rendered: Vec<String> = hits
                    .iter()
                    .map(|h| format!("{} ({:+.4})", h.data_index, h.inner_product))
                    .collect();
                println!(
                    "query {:>6}: {}",
                    j,
                    if rendered.is_empty() {
                        "no acceptable partner".to_string()
                    } else {
                        rendered.join(", ")
                    }
                );
            }
        }
        "build" => {
            let report = cmd_build(&args)?;
            println!(
                "built {} snapshot over {} vectors (dim {}, {} shard(s)): {} ({} bytes, {:.1} ms)",
                report.family,
                report.data_count,
                report.dim,
                report.shards,
                report.snapshot_path.display(),
                report.bytes,
                report.elapsed_ms
            );
        }
        "serve" => {
            let setup = cmd_serve(&args)?;
            let serving = std::sync::Arc::new(setup.serving);
            // adaptive=true puts the drift-detecting controller on its own
            // thread next to the sessions; the handle stops and joins it when
            // the server winds down.
            let serving_config = serving.serving_config();
            let _controller = serving_config.adaptive.then(|| {
                let config = AdaptiveConfig {
                    drift_check_secs: serving_config.drift_check_secs,
                    seed: serving_config.seed,
                    ..AdaptiveConfig::default()
                };
                println!(
                    "adaptive controller on (drift checks every {}s)",
                    config.drift_check_secs
                );
                AdaptiveController::new(std::sync::Arc::clone(&serving), config).spawn()
            });
            match setup.listen {
                Some(addr) => {
                    let coalescer = std::sync::Arc::new(Coalescer::new(
                        std::sync::Arc::clone(&serving),
                        setup.coalesce,
                    ));
                    let config = NetConfig {
                        addr,
                        workers: setup.workers,
                        read_timeout: (setup.timeout_secs > 0)
                            .then(|| std::time::Duration::from_secs(setup.timeout_secs as u64)),
                        ..NetConfig::default()
                    };
                    let server = serve_tcp(coalescer, config)?;
                    println!(
                        "listening on {} (workers={}, coalesce window={}us max={}); send `shutdown` to stop",
                        server.local_addr(),
                        setup.workers,
                        setup.coalesce.window_micros,
                        setup.coalesce.max_batch,
                    );
                    server.join()?;
                }
                None => {
                    let stdin = std::io::stdin();
                    let stdout = std::io::stdout();
                    serve_session(&serving, stdin.lock(), stdout.lock())?;
                }
            }
        }
        "query" => {
            let report = cmd_query(&args)?;
            println!(
                "{} snapshot: {} live vectors, {} queries, {} pairs, {:.1} ms",
                report.family,
                report.live,
                report.query_count,
                report.pairs.len(),
                report.elapsed_ms
            );
            let limit = report.limit;
            for pair in report.pairs.iter().take(limit) {
                println!(
                    "  query {:>6}  id {:>6}  inner product {:+.6}",
                    pair.query_index, pair.data_index, pair.inner_product
                );
            }
            if report.pairs.len() > limit {
                println!(
                    "  … {} further pairs omitted (raise limit=)",
                    report.pairs.len() - limit
                );
            }
        }
        other => {
            return Err(CliError::Usage {
                reason: format!("unknown command `{other}`; run `ips help` for usage"),
            })
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage { .. }) {
                eprintln!("\nrun `ips help` (or `ips help <command>`) for usage");
            }
            ExitCode::FAILURE
        }
    }
}
