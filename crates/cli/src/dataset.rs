//! CSV vector file I/O.
//!
//! The CLI's on-disk format is deliberately plain: one vector per line, coordinates as
//! decimal numbers separated by commas, optional blank lines and `#` comments. Every
//! vector in a file must have the same dimension. The functions here read from and
//! write to any `Read`/`Write` implementation so the unit tests run against in-memory
//! buffers; the path-based wrappers are what the subcommands use.

use crate::error::{CliError, Result};
use ips_linalg::DenseVector;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a CSV vector collection from a reader. `source_name` is used in error messages.
pub fn read_vectors_from<R: Read>(reader: R, source_name: &str) -> Result<Vec<DenseVector>> {
    let mut out: Vec<DenseVector> = Vec::new();
    let mut expected_dim: Option<usize> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut coords = Vec::new();
        for field in trimmed.split(',') {
            let field = field.trim();
            let value: f64 = field.parse().map_err(|_| CliError::Parse {
                source_name: source_name.to_string(),
                line: line_no,
                reason: format!("`{field}` is not a number"),
            })?;
            if !value.is_finite() {
                return Err(CliError::Parse {
                    source_name: source_name.to_string(),
                    line: line_no,
                    reason: format!("non-finite coordinate `{field}`"),
                });
            }
            coords.push(value);
        }
        if let Some(dim) = expected_dim {
            if coords.len() != dim {
                return Err(CliError::Parse {
                    source_name: source_name.to_string(),
                    line: line_no,
                    reason: format!("expected {dim} coordinates, found {}", coords.len()),
                });
            }
        } else {
            expected_dim = Some(coords.len());
        }
        out.push(DenseVector::new(coords));
    }
    if out.is_empty() {
        return Err(CliError::Parse {
            source_name: source_name.to_string(),
            line: 0,
            reason: "file contains no vectors".into(),
        });
    }
    Ok(out)
}

/// Reads a CSV vector collection from a file path.
pub fn read_vectors(path: &Path) -> Result<Vec<DenseVector>> {
    let file = File::open(path)?;
    read_vectors_from(file, &path.display().to_string())
}

/// Writes a vector collection to a writer, one comma-separated line per vector.
pub fn write_vectors_to<W: Write>(writer: W, vectors: &[DenseVector]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for v in vectors {
        let line: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a vector collection to a file path.
pub fn write_vectors(path: &Path, vectors: &[DenseVector]) -> Result<()> {
    let file = File::create(path)?;
    write_vectors_to(file, vectors)
}

/// Summary statistics of a vector collection, as printed by `ips info`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Number of vectors.
    pub count: usize,
    /// Shared dimension.
    pub dim: usize,
    /// Minimum Euclidean norm.
    pub min_norm: f64,
    /// Mean Euclidean norm.
    pub mean_norm: f64,
    /// Maximum Euclidean norm.
    pub max_norm: f64,
}

impl DatasetSummary {
    /// Computes the summary of a non-empty collection.
    pub fn of(vectors: &[DenseVector]) -> Result<Self> {
        let first = vectors.first().ok_or(CliError::Usage {
            reason: "cannot summarise an empty collection".into(),
        })?;
        let mut min_norm = f64::INFINITY;
        let mut max_norm = f64::NEG_INFINITY;
        let mut total = 0.0;
        for v in vectors {
            let n = v.norm();
            min_norm = min_norm.min(n);
            max_norm = max_norm.max(n);
            total += n;
        }
        Ok(Self {
            count: vectors.len(),
            dim: first.dim(),
            min_norm,
            mean_norm: total / vectors.len() as f64,
            max_norm,
        })
    }
}

impl std::fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vectors of dimension {}; norms min {:.4} / mean {:.4} / max {:.4}",
            self.count, self.dim, self.min_norm, self.mean_norm, self.max_norm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_buffer() {
        let vectors = vec![
            DenseVector::from(&[1.0, -0.5, 0.25][..]),
            DenseVector::from(&[0.0, 2.0, -3.5][..]),
        ];
        let mut buffer = Vec::new();
        write_vectors_to(&mut buffer, &vectors).unwrap();
        let parsed = read_vectors_from(buffer.as_slice(), "buffer").unwrap();
        assert_eq!(parsed, vectors);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n1.0, 2.0\n\n  \n3.0,4.0\n";
        let parsed = read_vectors_from(text.as_bytes(), "inline").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].as_slice(), &[1.0, 2.0]);
        assert_eq!(parsed[1].as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "1.0,2.0\n1.0,oops\n";
        let err = read_vectors_from(text.as_bytes(), "inline").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let text = "1.0,2.0\n1.0\n";
        let err = read_vectors_from(text.as_bytes(), "inline").unwrap_err();
        assert!(err.to_string().contains("expected 2 coordinates"));
        let text = "nan\n";
        assert!(read_vectors_from(text.as_bytes(), "inline").is_err());
        let text = "# only comments\n";
        assert!(read_vectors_from(text.as_bytes(), "inline").is_err());
    }

    #[test]
    fn file_roundtrip_in_a_temp_directory() {
        let dir = std::env::temp_dir().join("ips-cli-dataset-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vectors.csv");
        let vectors = vec![
            DenseVector::from(&[0.125, -1.0][..]),
            DenseVector::from(&[3.0, 0.5][..]),
        ];
        write_vectors(&path, &vectors).unwrap();
        let parsed = read_vectors(&path).unwrap();
        assert_eq!(parsed, vectors);
        std::fs::remove_file(&path).unwrap();
        assert!(read_vectors(&path).is_err(), "missing files are I/O errors");
    }

    #[test]
    fn summary_statistics() {
        let vectors = vec![
            DenseVector::from(&[3.0, 4.0][..]),
            DenseVector::from(&[0.0, 1.0][..]),
        ];
        let summary = DatasetSummary::of(&vectors).unwrap();
        assert_eq!(summary.count, 2);
        assert_eq!(summary.dim, 2);
        assert_eq!(summary.min_norm, 1.0);
        assert_eq!(summary.max_norm, 5.0);
        assert!((summary.mean_norm - 3.0).abs() < 1e-12);
        assert!(summary.to_string().contains("2 vectors"));
        assert!(DatasetSummary::of(&[]).is_err());
    }
}
