//! The declarative command schema: one typed registry that drives parsing,
//! validation, `ips help`, and the `ips serve` line protocol.
//!
//! Every subcommand is described once, as data — a [`CommandSpec`] listing its
//! [`ArgSpec`]s (key, [`ArgKind`], required/default, one doc line). Everything
//! else is derived from that single description:
//!
//! * **parsing & validation** — [`CommandSpec::bind`] checks a [`ParsedArgs`]
//!   against the schema (unknown keys, missing required keys, per-kind value
//!   validation with constraint-accurate error wording: a [`ArgKind::Usize`]
//!   rejects `-1` as "not a non-negative integer" while a
//!   [`ArgKind::PositiveUsize`] rejects `0` as "not a positive integer");
//! * **typed access** — the returned [`CommandArgs`] hands each command its
//!   values already parsed, with static defaults applied from the spec;
//! * **help** — [`usage_overview`] (`ips help`) and [`CommandSpec::usage`]
//!   (`ips help <cmd>`) are rendered from the same structs, so the help can
//!   never drift from what actually parses;
//! * **the serve protocol** — [`SERVE_PROTOCOL`] describes the REPL commands
//!   of `ips serve` the same way, and both the REPL's `help` reply and the
//!   `ips help serve` section render from it.
//!
//! There are deliberately **no hand-written usage strings** anywhere in
//! `ips-cli`; adding an argument means adding one [`ArgSpec`] line here.

use crate::args::ParsedArgs;
use crate::error::{CliError, Result};

/// The value domain of one `key=value` argument, with its validation rule and
/// the exact constraint wording used in errors and help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// Any non-empty string.
    Str,
    /// A filesystem path (validated as a non-empty string).
    Path,
    /// A floating-point number.
    F64,
    /// A non-negative integer (`0` allowed).
    Usize,
    /// A strictly positive integer (`0` rejected — the constraint the error
    /// message states).
    PositiveUsize,
    /// A non-negative 64-bit integer (seeds).
    U64,
    /// `true`/`false`/`1`/`0`.
    Bool,
    /// A strictly positive integer or the literal `auto` (one worker per CPU).
    Threads,
    /// One of a fixed set of names.
    Choice(&'static [&'static str]),
}

impl ArgKind {
    /// The `<...>` placeholder rendered in usage lines.
    pub fn placeholder(self) -> String {
        match self {
            ArgKind::Str => "<str>".to_string(),
            ArgKind::Path => "<path>".to_string(),
            ArgKind::F64 => "<float>".to_string(),
            ArgKind::Usize => "<int≥0>".to_string(),
            ArgKind::PositiveUsize => "<int≥1>".to_string(),
            ArgKind::U64 => "<int≥0>".to_string(),
            ArgKind::Bool => "<true|false>".to_string(),
            ArgKind::Threads => "<auto|int≥1>".to_string(),
            ArgKind::Choice(names) => format!("<{}>", names.join("|")),
        }
    }

    /// Validates one value, producing an error that states the *actual*
    /// constraint (positive vs non-negative, the allowed choice names, …).
    pub fn validate(self, key: &str, value: &str) -> Result<()> {
        let fail = |constraint: &str| {
            Err(CliError::Usage {
                reason: format!("argument `{key}` must be {constraint}, got `{value}`"),
            })
        };
        if value.is_empty() {
            return Err(CliError::Usage {
                reason: format!("argument `{key}` has an empty value"),
            });
        }
        match self {
            ArgKind::Str | ArgKind::Path => Ok(()),
            ArgKind::F64 => match value.parse::<f64>() {
                Ok(_) => Ok(()),
                Err(_) => fail("a number"),
            },
            ArgKind::Usize => match value.parse::<usize>() {
                Ok(_) => Ok(()),
                Err(_) => fail("a non-negative integer"),
            },
            ArgKind::U64 => match value.parse::<u64>() {
                Ok(_) => Ok(()),
                Err(_) => fail("a non-negative integer"),
            },
            ArgKind::PositiveUsize => match value.parse::<usize>() {
                Ok(v) if v >= 1 => Ok(()),
                _ => fail("a positive integer (at least 1)"),
            },
            ArgKind::Bool => match value {
                "true" | "false" | "1" | "0" | "on" | "off" => Ok(()),
                _ => fail("true/false/1/0/on/off"),
            },
            ArgKind::Threads => match value {
                "auto" => Ok(()),
                v => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(()),
                    _ => fail("a positive integer (at least 1) or `auto`"),
                },
            },
            ArgKind::Choice(names) => {
                if names.contains(&value) {
                    Ok(())
                } else {
                    fail(&format!("one of {}", names.join(", ")))
                }
            }
        }
    }
}

/// One `key=value` argument of a subcommand: everything the parser, the
/// validator and the help renderer need, in one row.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// The key on the command line (`data=...`).
    pub key: &'static str,
    /// The value domain and its validation rule.
    pub kind: ArgKind,
    /// Whether the command fails without it.
    pub required: bool,
    /// The literal default applied when absent (`None` = no static default —
    /// either truly optional or a computed default described in `doc`).
    pub default: Option<&'static str>,
    /// One help line.
    pub doc: &'static str,
}

impl ArgSpec {
    const fn required(key: &'static str, kind: ArgKind, doc: &'static str) -> Self {
        Self {
            key,
            kind,
            required: true,
            default: None,
            doc,
        }
    }

    const fn optional(key: &'static str, kind: ArgKind, doc: &'static str) -> Self {
        Self {
            key,
            kind,
            required: false,
            default: None,
            doc,
        }
    }

    const fn defaulted(
        key: &'static str,
        kind: ArgKind,
        default: &'static str,
        doc: &'static str,
    ) -> Self {
        Self {
            key,
            kind,
            required: false,
            default: Some(default),
            doc,
        }
    }
}

/// One subcommand: its name, a summary line, its argument table and any extra
/// help paragraphs (each rendered verbatim on its own line).
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// The subcommand name (`ips <name> ...`).
    pub name: &'static str,
    /// One-line summary shown in the overview and at the top of the usage.
    pub summary: &'static str,
    /// Every accepted `key=value` argument.
    pub args: &'static [ArgSpec],
    /// Extra help lines (cross-argument rules, protocol notes).
    pub notes: &'static [&'static str],
}

const ALGO_JOIN: &[&str] = &["auto", "brute", "matmul", "alsh", "symmetric", "sketch"];
const ALGO_BUILD: &[&str] = &["auto", "brute", "alsh", "symmetric", "sketch"];
const ALGO_SEARCH: &[&str] = &["brute", "alsh"];

const THREADS: ArgSpec = ArgSpec::defaulted(
    "threads",
    ArgKind::Threads,
    "auto",
    "engine worker threads (`auto` = one per CPU)",
);
const CHUNK: ArgSpec = ArgSpec::defaulted(
    "chunk",
    ArgKind::PositiveUsize,
    "32",
    "queries per batched engine work unit",
);
const SEED: ArgSpec = ArgSpec::defaulted("seed", ArgKind::U64, "42", "RNG seed (reproducibility)");
const SPEC_S: ArgSpec =
    ArgSpec::required("s", ArgKind::F64, "promise threshold s > 0 of Definition 1");
const SPEC_C: ArgSpec = ArgSpec::defaulted(
    "c",
    ArgKind::F64,
    "1.0",
    "approximation factor c in (0, 1]; reported pairs clear cs",
);
const VARIANT: ArgSpec = ArgSpec::defaulted(
    "variant",
    ArgKind::Choice(&["signed", "unsigned"]),
    "signed",
    "inner-product semantics",
);
const BITS: ArgSpec = ArgSpec::defaulted(
    "bits",
    ArgKind::Usize,
    "12",
    "ALSH hyperplane bits per table",
);
const TABLES: ArgSpec = ArgSpec::defaulted("tables", ArgKind::Usize, "32", "ALSH hash tables");
const PROBES: ArgSpec = ArgSpec::defaulted(
    "probes",
    ArgKind::Usize,
    "0",
    "extra query-directed probe buckets visited per LSH table (0 = classical \
     single-bucket lookups; probing trades lookups for fewer tables)",
);
const PROBES_OPEN: ArgSpec = ArgSpec::optional(
    "probes",
    ArgKind::Usize,
    "override the snapshot's probe count: extra query-directed buckets visited \
     per LSH table (default: keep the value stored at build time; the override \
     sticks across rebuilds and migrations)",
);
const LIMIT: ArgSpec = ArgSpec::defaulted(
    "limit",
    ArgKind::Usize,
    "20",
    "pairs printed before truncating the listing",
);
const SHARDS_BUILD: ArgSpec = ArgSpec::defaulted(
    "shards",
    ArgKind::PositiveUsize,
    "1",
    "index shards (hash-of-id partitions; 1 writes the classic single-shard snapshot)",
);
const DTYPE: ArgSpec = ArgSpec::defaulted(
    "dtype",
    ArgKind::Choice(&["f64", "f32"]),
    "f64",
    "scoring-kernel float width (f32 scores in single precision, rescoring winners exactly)",
);
const QUANTIZED: ArgSpec = ArgSpec::defaulted(
    "quantized",
    ArgKind::Bool,
    "false",
    "score candidates in i8 fixed point and exactly rescore survivors (same answers, cheaper scan)",
);
const SHARDS_OPEN: ArgSpec = ArgSpec::optional(
    "shards",
    ArgKind::PositiveUsize,
    "re-partition the snapshot across this many shards (default: keep the stored \
     layout; re-partitioning rebuilds the structures re-seeded from seed=, so pass \
     the original build seed to preserve answers exactly)",
);

/// `ips generate`.
pub const GENERATE: CommandSpec = CommandSpec {
    name: "generate",
    summary: "synthesise a workload and write CSV vector files",
    args: &[
        ArgSpec::defaulted(
            "kind",
            ArgKind::Choice(&["latent", "planted", "sphere"]),
            "latent",
            "workload generator",
        ),
        ArgSpec::required("n", ArgKind::Usize, "number of data vectors"),
        ArgSpec::optional(
            "queries",
            ArgKind::Usize,
            "number of query vectors (default: n/10 + 1)",
        ),
        ArgSpec::defaulted("dim", ArgKind::Usize, "32", "vector dimensionality"),
        SEED,
        ArgSpec::required("data", ArgKind::Path, "output CSV for the data vectors"),
        ArgSpec::optional(
            "query-file",
            ArgKind::Path,
            "output CSV for the query vectors",
        ),
        ArgSpec::defaulted(
            "planted-ip",
            ArgKind::F64,
            "0.8",
            "inner product of planted pairs (kind=planted)",
        ),
        ArgSpec::optional(
            "planted",
            ArgKind::Usize,
            "number of planted pairs (kind=planted; default: min(queries, n)/2)",
        ),
    ],
    notes: &[],
};

/// `ips info`.
pub const INFO: CommandSpec = CommandSpec {
    name: "info",
    summary: "print summary statistics of a CSV vector file",
    args: &[ArgSpec::required(
        "data",
        ArgKind::Path,
        "CSV vector file to summarise",
    )],
    notes: &[],
};

/// `ips join`.
pub const JOIN: CommandSpec = CommandSpec {
    name: "join",
    summary: "run a (cs, s) join between two CSV files",
    args: &[
        ArgSpec::required("data", ArgKind::Path, "CSV data vectors (the set P)"),
        ArgSpec::required("queries", ArgKind::Path, "CSV query vectors (the set Q)"),
        SPEC_S,
        SPEC_C,
        VARIANT,
        ArgSpec::defaulted(
            "algorithm",
            ArgKind::Choice(ALGO_JOIN),
            "brute",
            "join strategy (`auto` = cost-based planner)",
        ),
        ArgSpec::optional(
            "algo",
            ArgKind::Choice(ALGO_JOIN),
            "shorthand for algorithm= (giving both is an error)",
        ),
        ArgSpec::defaulted(
            "explain",
            ArgKind::Bool,
            "false",
            "print the planner's decision (requires algo=auto)",
        ),
        SEED,
        LIMIT,
        BITS,
        TABLES,
        PROBES,
        THREADS,
        CHUNK,
        DTYPE,
        QUANTIZED,
    ],
    notes: &[
        "algo=auto lets the cost-based planner pick the strategy; explain=true prints the chosen plan with every strategy's estimated cost.",
        "quantized=true never changes the reported pairs (survivors are rescored exactly); dtype=f32 may resolve near-ties differently but every reported pair still clears cs.",
    ],
};

/// `ips search`.
pub const SEARCH: CommandSpec = CommandSpec {
    name: "search",
    summary: "build an index over a data file and answer top-k queries",
    args: &[
        ArgSpec::required("data", ArgKind::Path, "CSV data vectors to index"),
        ArgSpec::required("queries", ArgKind::Path, "CSV query vectors"),
        SPEC_S,
        SPEC_C,
        VARIANT,
        ArgSpec::defaulted("k", ArgKind::Usize, "1", "partners returned per query"),
        ArgSpec::defaulted(
            "algorithm",
            ArgKind::Choice(ALGO_SEARCH),
            "brute",
            "index answering the queries",
        ),
        SEED,
        BITS,
        TABLES,
        PROBES,
    ],
    notes: &[],
};

/// `ips build`.
pub const BUILD: CommandSpec = CommandSpec {
    name: "build",
    summary: "build an index over a CSV data file and persist it as a snapshot",
    args: &[
        ArgSpec::required("data", ArgKind::Path, "CSV data vectors to index"),
        ArgSpec::required("snapshot", ArgKind::Path, "output snapshot file"),
        ArgSpec::optional(
            "queries",
            ArgKind::Path,
            "representative query workload (required by algorithm=auto)",
        ),
        SPEC_S,
        SPEC_C,
        VARIANT,
        ArgSpec::defaulted(
            "algorithm",
            ArgKind::Choice(ALGO_BUILD),
            "alsh",
            "index family (`auto` = cost-based planner)",
        ),
        ArgSpec::optional(
            "algo",
            ArgKind::Choice(ALGO_BUILD),
            "shorthand for algorithm= (giving both is an error)",
        ),
        SEED,
        BITS,
        TABLES,
        PROBES,
        ArgSpec::defaulted("kappa", ArgKind::F64, "2.0", "sketch norm exponent κ ≥ 2"),
        ArgSpec::defaulted(
            "copies",
            ArgKind::PositiveUsize,
            "9",
            "independent sketch copies (median taken across them)",
        ),
        ArgSpec::defaulted(
            "leaf",
            ArgKind::PositiveUsize,
            "16",
            "sketch recovery-tree leaf size",
        ),
        SHARDS_BUILD,
        DTYPE,
        QUANTIZED,
    ],
    notes: &[
        "algorithm=auto consults the cost-based planner and needs queries=<path>.",
        "shards=N partitions the index by a hash of the vector id; every shard shares the \
         build seed, so brute/alsh/symmetric answers are bit-identical whatever N is.",
    ],
};

/// `ips serve`.
pub const SERVE: CommandSpec = CommandSpec {
    name: "serve",
    summary: "load a snapshot and answer line-protocol sessions on stdin/stdout or TCP",
    args: &[
        ArgSpec::required("snapshot", ArgKind::Path, "snapshot file to serve"),
        THREADS,
        CHUNK,
        ArgSpec::defaulted(
            "rebuild-threshold",
            ArgKind::F64,
            "0.25",
            "compaction trigger: rebuild when (tombstoned+overlaid)/live exceeds this",
        ),
        SEED,
        SHARDS_OPEN,
        PROBES_OPEN,
        ArgSpec::optional(
            "listen",
            ArgKind::Str,
            "TCP address to listen on (e.g. 127.0.0.1:7878; default: a stdin/stdout session)",
        ),
        ArgSpec::defaulted(
            "workers",
            ArgKind::PositiveUsize,
            "4",
            "maximum concurrent TCP connections (listen= only)",
        ),
        ArgSpec::defaulted(
            "timeout",
            ArgKind::Usize,
            "30",
            "per-connection read timeout in seconds (0 = never; listen= only)",
        ),
        ArgSpec::defaulted(
            "coalesce-window",
            ArgKind::Usize,
            "200",
            "microseconds concurrent query/topk requests wait to merge into one \
             engine pass (0 disables coalescing; listen= only)",
        ),
        ArgSpec::defaulted(
            "coalesce-max",
            ArgKind::PositiveUsize,
            "32",
            "maximum query vectors merged into one coalesced engine pass",
        ),
        ArgSpec::defaulted(
            "slow-log-micros",
            ArgKind::Usize,
            "0",
            "log a structured stderr line for any query batch at least this many \
             microseconds of wall time (0 disables)",
        ),
        ArgSpec::defaulted(
            "adaptive",
            ArgKind::Bool,
            "false",
            "run the closed-loop adaptive controller: watch the served workload for \
             drift, re-plan on fresh statistics, and migrate the index strategy in \
             place (see the `plan` protocol command)",
        ),
        ArgSpec::defaulted(
            "drift-check-secs",
            ArgKind::PositiveUsize,
            "5",
            "seconds between the adaptive controller's drift checks (adaptive=true only)",
        ),
    ],
    notes: &[
        "The (cs, s) join thresholds live in the snapshot, set at build time.",
        "The session then speaks the line protocol below.",
        "listen= serves the same protocol over TCP: every connection gets its own \
         session, concurrent query/topk requests coalesce into batched engine passes, \
         and the `shutdown` command stops the whole server.",
    ],
};

/// `ips query`.
pub const QUERY: CommandSpec = CommandSpec {
    name: "query",
    summary: "one-shot query batch against a snapshot file",
    args: &[
        ArgSpec::required("snapshot", ArgKind::Path, "snapshot file to query"),
        ArgSpec::required("queries", ArgKind::Path, "CSV query vectors"),
        ArgSpec::defaulted(
            "k",
            ArgKind::Usize,
            "0",
            "partners per query (0 = above-threshold search, at most one)",
        ),
        THREADS,
        CHUNK,
        LIMIT,
        SEED,
        SHARDS_OPEN,
    ],
    notes: &["seed= only matters together with shards= (it seeds the re-partition rebuild)."],
};

/// `ips help`.
pub const HELP: CommandSpec = CommandSpec {
    name: "help",
    summary: "print the command overview, or `ips help <command>` for one command",
    args: &[],
    notes: &[],
};

/// Every subcommand, in the order the overview lists them.
pub const COMMANDS: &[&CommandSpec] = &[
    &GENERATE, &INFO, &JOIN, &SEARCH, &BUILD, &SERVE, &QUERY, &HELP,
];

/// Looks a subcommand up by name.
pub fn command(name: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().copied().find(|c| c.name == name)
}

/// One command of the `ips serve` line protocol (the REPL a served snapshot
/// speaks on stdin/stdout). Declarative for the same reason the argument
/// schema is: the REPL's `help` reply, the `ips help serve` protocol section
/// and the dispatcher's unknown-command error all derive from this table.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolCommand {
    /// The first word of the protocol line.
    pub name: &'static str,
    /// The full line shape, e.g. `query <v>[;<v>...]`.
    pub usage: &'static str,
    /// What the command replies.
    pub reply: &'static str,
}

/// The `ips serve` line protocol.
pub const SERVE_PROTOCOL: &[ProtocolCommand] = &[
    ProtocolCommand {
        name: "query",
        usage: "query <v>[;<v>...]",
        reply: "(cs, s) search; replies `hit <id> <ip>` or `miss` per vector",
    },
    ProtocolCommand {
        name: "topk",
        usage: "topk <k> <v>[;<v>...]",
        reply: "top-k search; replies `hits <id>:<ip>,...` or `none` per vector",
    },
    ProtocolCommand {
        name: "insert",
        usage: "insert <v>",
        reply: "add a vector; replies `inserted <id>`",
    },
    ProtocolCommand {
        name: "delete",
        usage: "delete <id>",
        reply: "remove a vector; replies `deleted <id>`",
    },
    ProtocolCommand {
        name: "stats",
        usage: "stats",
        reply:
            "per-index counters, windowed query-latency percentiles, and the adaptive drift state",
    },
    ProtocolCommand {
        name: "plan",
        usage: "plan",
        reply: "the serving strategy, its drift score, and the migration count",
    },
    ProtocolCommand {
        name: "metrics",
        usage: "metrics",
        reply: "Prometheus text exposition, terminated by a `# EOF` line",
    },
    ProtocolCommand {
        name: "trace",
        usage: "trace on|off",
        reply: "per-stage tracing: each query/topk emits a `trace ...` breakdown line",
    },
    ProtocolCommand {
        name: "save",
        usage: "save <path>",
        reply: "compact and write a snapshot",
    },
    ProtocolCommand {
        name: "help",
        usage: "help",
        reply: "this command summary",
    },
    ProtocolCommand {
        name: "shutdown",
        usage: "shutdown",
        reply: "end the session and, when served over TCP, stop the whole server",
    },
    ProtocolCommand {
        name: "quit",
        usage: "quit | exit",
        reply: "end the session (EOF works too)",
    },
];

/// The REPL `help` reply (and the protocol section of `ips help serve`),
/// rendered from [`SERVE_PROTOCOL`].
pub fn protocol_help() -> String {
    let width = SERVE_PROTOCOL
        .iter()
        .map(|c| c.usage.len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("commands:");
    for c in SERVE_PROTOCOL {
        out.push_str(&format!("\n  {:<width$}  {}", c.usage, c.reply));
    }
    out.push_str(
        "\n\nvectors are comma-separated coordinates; `;` separates the vectors of one batch",
    );
    out
}

impl CommandSpec {
    /// Validates raw `key=value` arguments against this schema and returns the
    /// typed accessor. This is the **only** argument path into a subcommand:
    /// the same table that renders the help does the checking.
    pub fn bind<'a>(&'static self, args: &'a ParsedArgs) -> Result<CommandArgs<'a>> {
        let allowed: Vec<&str> = self.args.iter().map(|a| a.key).collect();
        args.ensure_only(&allowed)?;
        for arg in self.args {
            match args.get(arg.key) {
                Some(value) => arg.kind.validate(arg.key, value)?,
                None if arg.required => {
                    return Err(CliError::Usage {
                        reason: format!(
                            "missing required argument `{}=` (run `ips help {}`)",
                            arg.key, self.name
                        ),
                    })
                }
                None => {}
            }
        }
        Ok(CommandArgs { spec: self, args })
    }

    /// Parses raw argument strings and binds them in one step.
    pub fn parse<S: AsRef<str>>(&'static self, raw: &[S]) -> Result<OwnedCommandArgs> {
        let args = ParsedArgs::parse(raw)?;
        // Validate eagerly; the owned wrapper re-binds on access.
        self.bind(&args)?;
        Ok(OwnedCommandArgs { spec: self, args })
    }

    /// The one-line `ips help` overview row body (name + summary).
    pub fn overview_line(&self) -> String {
        format!("  {:<9} {}", self.name, self.summary)
    }

    /// The full `ips help <cmd>` text: usage line, summary, one row per
    /// argument (key, type, required/default, doc), notes, and for `serve`
    /// the line protocol — all generated from this spec.
    pub fn usage(&self) -> String {
        let mut out = format!("usage: ips {}", self.name);
        if self.name == "help" {
            out.push_str(" [<command>]");
        } else if !self.args.is_empty() {
            out.push_str(" key=value ...");
        }
        out.push_str(&format!("\n\n{}\n", self.summary));
        if !self.args.is_empty() {
            out.push_str("\narguments:\n");
            let rows: Vec<(String, &ArgSpec)> = self
                .args
                .iter()
                .map(|a| (format!("{}={}", a.key, a.kind.placeholder()), a))
                .collect();
            let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
            for (label, arg) in rows {
                let status = if arg.required {
                    "required".to_string()
                } else {
                    match arg.default {
                        Some(d) => format!("default {d}"),
                        None => "optional".to_string(),
                    }
                };
                out.push_str(&format!(
                    "  {label:<width$}  [{status}] {doc}\n",
                    doc = arg.doc
                ));
            }
        }
        for note in self.notes {
            out.push_str(&format!("\n{note}\n"));
        }
        if self.name == "serve" {
            out.push('\n');
            out.push_str(&protocol_help());
            out.push('\n');
        }
        out
    }
}

/// The `ips help` overview: every command's summary row plus the global
/// conventions, rendered from [`COMMANDS`].
pub fn usage_overview() -> String {
    let mut out = String::from(
        "ips — inner product similarity join toolbox (PODS 2016 reproduction)\n\n\
         USAGE:\n    ips <command> [key=value ...]\n\nCOMMANDS:\n",
    );
    for c in COMMANDS {
        out.push_str(&c.overview_line());
        out.push('\n');
    }
    out.push_str(
        "\nVector files are plain CSV: one vector per line, coordinates separated by commas.\n\
         Run `ips help <command>` for a command's full argument list.\n",
    );
    out
}

/// Typed access to arguments already validated against a [`CommandSpec`].
///
/// Getters consult the spec for the argument's kind and static default, so a
/// command cannot read a key it never declared (that is a programmer error and
/// panics — caught by the unit tests, impossible to reach from the command
/// line).
#[derive(Debug, Clone, Copy)]
pub struct CommandArgs<'a> {
    spec: &'static CommandSpec,
    args: &'a ParsedArgs,
}

/// An owning variant of [`CommandArgs`] for callers (tests, `main`) that parse
/// raw strings in one step via [`CommandSpec::parse`].
#[derive(Debug, Clone)]
pub struct OwnedCommandArgs {
    spec: &'static CommandSpec,
    args: ParsedArgs,
}

impl OwnedCommandArgs {
    /// The borrowed accessor over the owned values.
    pub fn borrow(&self) -> CommandArgs<'_> {
        CommandArgs {
            spec: self.spec,
            args: &self.args,
        }
    }
}

impl<'a> CommandArgs<'a> {
    /// The schema this binding was validated against.
    pub fn spec(&self) -> &'static CommandSpec {
        self.spec
    }

    fn arg_spec(&self, key: &str) -> &'static ArgSpec {
        self.spec
            .args
            .iter()
            .find(|a| a.key == key)
            .unwrap_or_else(|| {
                panic!(
                    "command `{}` read undeclared argument `{key}` — add it to the schema",
                    self.spec.name
                )
            })
    }

    /// The effective raw value: the given one, or the spec's static default.
    fn effective(&self, key: &str) -> Option<&str> {
        let spec = self.arg_spec(key);
        self.args.get(key).or(spec.default)
    }

    fn value(&self, key: &str) -> &str {
        self.effective(key).unwrap_or_else(|| {
            panic!(
                "command `{}` argument `{key}` has no value and no default — \
                 mark it required or give it a default in the schema",
                self.spec.name
            )
        })
    }

    /// Whether the key was explicitly given on the command line.
    pub fn given(&self, key: &str) -> bool {
        self.arg_spec(key);
        self.args.get(key).is_some()
    }

    /// A string value (required or defaulted in the schema).
    pub fn str(&self, key: &str) -> &str {
        self.value(key)
    }

    /// An optional string value (given value, else static default, else None).
    pub fn opt_str(&self, key: &str) -> Option<&str> {
        self.effective(key)
    }

    /// A float value (validated at bind time).
    pub fn f64(&self, key: &str) -> f64 {
        self.value(key).parse().expect("validated at bind time")
    }

    /// An integer value (validated at bind time).
    pub fn usize(&self, key: &str) -> usize {
        self.value(key).parse().expect("validated at bind time")
    }

    /// An integer value with a *computed* default for keys whose default the
    /// schema can only describe in prose (e.g. `queries` = n/10 + 1).
    pub fn usize_or(&self, key: &str, default: usize) -> usize {
        match self.effective(key) {
            Some(v) => v.parse().expect("validated at bind time"),
            None => default,
        }
    }

    /// A 64-bit value (validated at bind time).
    pub fn u64(&self, key: &str) -> u64 {
        self.value(key).parse().expect("validated at bind time")
    }

    /// A boolean value (validated at bind time).
    pub fn bool(&self, key: &str) -> bool {
        matches!(self.value(key), "true" | "1" | "on")
    }

    /// A [`ArgKind::Threads`] value resolved to the engine convention
    /// (`auto` → 0 = one worker per CPU).
    pub fn threads(&self, key: &str) -> usize {
        match self.value(key) {
            "auto" => 0,
            v => v.parse().expect("validated at bind time"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bindable(spec: &'static CommandSpec, raw: &[&str]) -> Result<OwnedCommandArgs> {
        spec.parse(raw)
    }

    #[test]
    fn every_command_is_registered_once_and_helps() {
        let mut names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate command registration");
        for c in COMMANDS {
            assert!(command(c.name).is_some());
            let usage = c.usage();
            assert!(
                usage.starts_with(&format!("usage: ips {}", c.name)),
                "{usage}"
            );
            // Every declared key gets its own help row carrying the type, the
            // doc line AND the right status. The status check is per-row on
            // purpose: a whole-text `contains("default 0")` would pass as long
            // as *any* argument rendered that default, silently letting a new
            // argument's default go missing from its own row.
            for arg in c.args {
                let label = format!("{}={}", arg.key, arg.kind.placeholder());
                let row = usage
                    .lines()
                    .find(|l| l.trim_start().starts_with(&label))
                    .unwrap_or_else(|| {
                        panic!(
                            "`{}` has no row in `ips help {}`:\n{usage}",
                            arg.key, c.name
                        )
                    });
                let status = if arg.required {
                    "[required]".to_string()
                } else {
                    match arg.default {
                        Some(d) => format!("[default {d}]"),
                        None => "[optional]".to_string(),
                    }
                };
                assert!(
                    row.contains(&status),
                    "row of `{}` in `ips help {}` lacks `{status}`: {row}",
                    arg.key,
                    c.name
                );
                assert!(
                    row.contains(arg.doc),
                    "row of `{}` in `ips help {}` lacks its doc line: {row}",
                    arg.key,
                    c.name
                );
            }
        }
        assert!(command("bogus").is_none());
        let overview = usage_overview();
        for c in COMMANDS {
            assert!(overview.contains(c.name), "{overview}");
            assert!(overview.contains(c.summary), "{overview}");
        }
    }

    #[test]
    fn unknown_and_missing_keys_are_rejected() {
        let err = bindable(&INFO, &["data=x.csv", "quereis=y"]).unwrap_err();
        assert!(err.to_string().contains("unknown argument `quereis`"));
        assert!(err.to_string().contains("data"), "lists the valid keys");
        let err = bindable(&INFO, &[]).unwrap_err();
        assert!(err
            .to_string()
            .contains("missing required argument `data=`"));
        assert!(err.to_string().contains("ips help info"));
    }

    #[test]
    fn duplicate_keys_and_malformed_pairs_are_rejected() {
        assert!(bindable(&INFO, &["data=a", "data=b"])
            .unwrap_err()
            .to_string()
            .contains("given more than once"));
        assert!(bindable(&INFO, &["noequals"]).is_err());
        assert!(bindable(&INFO, &["=x"]).is_err());
    }

    #[test]
    fn integer_errors_state_the_real_constraint() {
        // A non-negative key rejects a negative with "non-negative"...
        let err = bindable(&GENERATE, &["n=-1", "data=x.csv"]).unwrap_err();
        assert!(
            err.to_string().contains("non-negative integer"),
            "wrong wording: {err}"
        );
        // ...but accepts zero.
        assert!(bindable(&GENERATE, &["n=0", "data=x.csv"]).is_ok());
        // A positive key rejects zero AND says "positive ... at least 1".
        let err = bindable(&JOIN, &["data=a", "queries=b", "s=0.5", "chunk=0"]).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("positive integer (at least 1)") && text.contains("`chunk`"),
            "wrong wording: {text}"
        );
        // Negative positives get the same constraint, not the non-negative one.
        let err = bindable(&BUILD, &["data=a", "snapshot=b", "s=0.5", "copies=-3"]).unwrap_err();
        assert!(err.to_string().contains("positive integer (at least 1)"));
    }

    #[test]
    fn threads_accepts_auto_and_positive_only() {
        let ok = bindable(&QUERY, &["snapshot=a", "queries=b", "threads=auto"]).unwrap();
        assert_eq!(ok.borrow().threads("threads"), 0);
        let ok = bindable(&QUERY, &["snapshot=a", "queries=b", "threads=3"]).unwrap();
        assert_eq!(ok.borrow().threads("threads"), 3);
        // Defaulted: absent key resolves to `auto`.
        let ok = bindable(&QUERY, &["snapshot=a", "queries=b"]).unwrap();
        assert_eq!(ok.borrow().threads("threads"), 0);
        for bad in ["threads=0", "threads=-2", "threads=fast"] {
            let err = bindable(&QUERY, &["snapshot=a", "queries=b", bad]).unwrap_err();
            assert!(
                err.to_string()
                    .contains("positive integer (at least 1) or `auto`"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn empty_values_are_rejected_with_their_key() {
        let err = bindable(&INFO, &["data="]).unwrap_err();
        assert!(
            err.to_string()
                .contains("argument `data` has an empty value"),
            "{err}"
        );
        let err = bindable(&JOIN, &["data=a", "queries=b", "s="]).unwrap_err();
        assert!(err.to_string().contains("`s` has an empty value"));
    }

    #[test]
    fn choices_and_bools_and_floats_validate() {
        assert!(
            bindable(&JOIN, &["data=a", "queries=b", "s=0.5", "algorithm=nope"])
                .unwrap_err()
                .to_string()
                .contains("one of auto, brute, matmul, alsh, symmetric, sketch")
        );
        assert!(bindable(&JOIN, &["data=a", "queries=b", "s=0.5", "variant=sideways"]).is_err());
        assert!(
            bindable(&JOIN, &["data=a", "queries=b", "s=0.5", "explain=maybe"])
                .unwrap_err()
                .to_string()
                .contains("true/false/1/0/on/off")
        );
        assert!(bindable(&JOIN, &["data=a", "queries=b", "s=0.5", "explain=on"]).is_ok());
        assert!(bindable(&JOIN, &["data=a", "queries=b", "s=zero"])
            .unwrap_err()
            .to_string()
            .contains("must be a number"));
    }

    #[test]
    fn typed_getters_apply_schema_defaults() {
        let args = bindable(&JOIN, &["data=a", "queries=b", "s=0.5"]).unwrap();
        let args = args.borrow();
        assert_eq!(args.str("data"), "a");
        assert_eq!(args.f64("s"), 0.5);
        assert_eq!(args.f64("c"), 1.0, "schema default");
        assert_eq!(args.str("variant"), "signed");
        assert_eq!(args.str("algorithm"), "brute");
        assert_eq!(args.usize("limit"), 20);
        assert_eq!(args.u64("seed"), 42);
        assert!(!args.bool("explain"));
        assert_eq!(args.usize("chunk"), 32);
        assert_eq!(args.usize("probes"), 0, "probing defaults to off");
        assert!(!args.given("algo"));
        assert_eq!(args.opt_str("algo"), None);
        let gen = bindable(&GENERATE, &["n=100", "data=x"]).unwrap();
        assert_eq!(gen.borrow().usize_or("queries", 100 / 10 + 1), 11);
    }

    #[test]
    fn protocol_help_lists_every_protocol_command() {
        let help = protocol_help();
        for c in SERVE_PROTOCOL {
            assert!(help.contains(c.usage), "{help}");
            assert!(help.contains(c.reply), "{help}");
        }
        // ...and `ips help serve` embeds the same protocol section.
        let serve_usage = SERVE.usage();
        for c in SERVE_PROTOCOL {
            assert!(serve_usage.contains(c.usage), "{serve_usage}");
        }
    }

    #[test]
    #[should_panic(expected = "undeclared argument")]
    fn reading_an_undeclared_key_is_a_programmer_error() {
        let args = INFO.parse(&["data=x"]).unwrap();
        let _ = args.borrow().str("snapshot");
    }
}
