//! # ips-cli
//!
//! A small command-line interface over the `ips-join` workspace, for users who want to
//! run inner product similarity joins on their own data without writing Rust:
//!
//! * `ips generate` — synthesise a workload (latent-factor recommender, planted-pair, or
//!   uniform sphere/ball data) and write it to CSV vector files;
//! * `ips info` — print summary statistics of a CSV vector file;
//! * `ips join` — run a signed/unsigned `(cs, s)` join between two CSV files with a
//!   selectable algorithm (brute force, blockwise matrix product, the Section 4.1 ALSH
//!   index, or the Section 4.3 sketch — or `algo=auto` to let the cost-based planner
//!   of `ips_core::planner` choose, with `explain=true` showing its reasoning) and
//!   print the reported pairs;
//! * `ips search` — build an index over a data file and answer top-`k` queries from a
//!   query file;
//! * `ips build` — build an index once and persist it as an `ips-store` snapshot
//!   (strategy picked manually or by the cost-based planner);
//! * `ips serve` — load a snapshot into a long-lived serving process and answer a
//!   line-protocol session (`query` / `topk` / `insert` / `delete` / `stats` /
//!   `save`) over stdin/stdout;
//! * `ips query` — one-shot query batch against a snapshot.
//!
//! The crate is a thin, testable layer: argument parsing lives in [`args`], CSV I/O in
//! [`dataset`], the serve REPL in [`serve`], and each subcommand is an ordinary
//! function in [`commands`] that returns its report as a value (the binary in
//! `main.rs` only prints it).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod dataset;
pub mod error;
pub mod serve;

pub use args::ParsedArgs;
pub use error::{CliError, Result};

/// The usage string printed by `ips help` and on argument errors.
pub const USAGE: &str = "\
ips — inner product similarity join toolbox (PODS 2016 reproduction)

USAGE:
    ips <command> [key=value ...]

COMMANDS:
    generate   kind=latent|planted|sphere n=<int> [queries=<int>] dim=<int> seed=<int>
               data=<path> [query-file=<path>] [planted-ip=<float>] [planted=<int>]
    info       data=<path>
    join       data=<path> queries=<path> s=<float> [c=<float>] [variant=signed|unsigned]
               [algorithm=auto|brute|matmul|alsh|symmetric|sketch] [seed=<int>] [limit=<int>]
               [threads=auto|<int>] [chunk=<int>]
               algo= is shorthand for algorithm=; algo=auto lets the cost-based
               planner pick the strategy, and explain=true prints the chosen
               plan with every strategy's estimated cost
    search     data=<path> queries=<path> s=<float> [c=<float>] [k=<int>]
               [algorithm=brute|alsh] [seed=<int>]
    build      data=<path> snapshot=<path> s=<float> [c=<float>] [variant=signed|unsigned]
               [algorithm=alsh|brute|symmetric|sketch|auto] [seed=<int>] [bits=<int>]
               [tables=<int>] [kappa=<float>] [copies=<int>] [leaf=<int>]
               algorithm=auto consults the cost-based planner and needs queries=<path>
    serve      snapshot=<path> [threads=auto|<int>] [chunk=<int>]
               [rebuild-threshold=<float>]   (compaction trigger, default 0.25 —
               the (cs, s) join thresholds live in the snapshot, set at build time)
               then speaks a line protocol on stdin/stdout: query <v>[;<v>...],
               topk <k> <v>[;<v>...], insert <v>, delete <id>, stats, save <path>, quit
    query      snapshot=<path> queries=<path> [k=<int>] [threads=auto|<int>]
               [chunk=<int>] [limit=<int>]
    help       print this message

Vector files are plain CSV: one vector per line, coordinates separated by commas.
threads= and chunk= must be at least 1 (threads=auto means one worker per CPU).
";
