//! # ips-cli
//!
//! A small command-line interface over the `ips-join` workspace, for users who want to
//! run inner product similarity joins on their own data without writing Rust:
//!
//! * `ips generate` — synthesise a workload (latent-factor recommender, planted-pair, or
//!   uniform sphere/ball data) and write it to CSV vector files;
//! * `ips info` — print summary statistics of a CSV vector file;
//! * `ips join` — run a signed/unsigned `(cs, s)` join between two CSV files with a
//!   selectable algorithm (brute force, blockwise matrix product, the Section 4.1 ALSH
//!   index, or the Section 4.3 sketch — or `algo=auto` to let the cost-based planner
//!   of `ips_core::planner` choose, with `explain=true` showing its reasoning) and
//!   print the reported pairs;
//! * `ips search` — build an index over a data file and answer top-`k` queries from a
//!   query file;
//! * `ips build` — build an index once and persist it as an `ips-store` snapshot
//!   (strategy picked manually or by the cost-based planner);
//! * `ips serve` — load a snapshot into a long-lived serving process and answer
//!   line-protocol sessions (`query` / `topk` / `insert` / `delete` / `stats` /
//!   `save` / `shutdown`) over stdin/stdout, or — with `listen=host:port` — over
//!   TCP with a bounded worker pool and cross-connection query coalescing;
//! * `ips query` — one-shot query batch against a snapshot.
//!
//! The crate is a thin, testable layer: raw `key=value` splitting lives in [`args`],
//! the declarative command schema (argument types, defaults, generated help, the
//! serve line protocol) in [`schema`], CSV I/O in [`dataset`], the serve REPL in
//! [`serve`] (with the TCP front-end in [`net`]), and each subcommand is an ordinary
//! function in [`commands`] that binds
//! its arguments against the schema and returns its report as a value (the binary in
//! `main.rs` only prints it). There are no hand-written usage strings anywhere:
//! `ips help` and `ips help <command>` render from the same [`schema::CommandSpec`]
//! structs that parse the commands.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod dataset;
pub mod error;
pub mod net;
pub mod schema;
pub mod serve;

pub use args::ParsedArgs;
pub use error::{CliError, Result};
