//! Minimal `key=value` argument splitting.
//!
//! The CLI deliberately avoids a third-party argument parser (the workspace's dependency
//! policy allows only the crates listed in `DESIGN.md`); every subcommand takes
//! positional-free `key=value` pairs, which keeps parsing trivial and the commands
//! scriptable.
//!
//! This module owns only the *lexical* layer: splitting raw arguments into a key→value
//! map and rejecting malformed or duplicated pairs. Everything typed — which keys a
//! command accepts, their value domains, defaults and constraint-accurate error
//! wording — lives in the declarative [`crate::schema`], which validates a
//! [`ParsedArgs`] against a [`crate::schema::CommandSpec`] and hands the command a
//! typed [`crate::schema::CommandArgs`] accessor.

use crate::error::{CliError, Result};
use std::collections::HashMap;

/// Parsed `key=value` arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw arguments of the form `key=value`.
    ///
    /// Returns a usage error for any argument that does not contain `=`, for an empty
    /// key, or for a key given twice.
    pub fn parse<S: AsRef<str>>(raw: &[S]) -> Result<Self> {
        let mut values = HashMap::new();
        for arg in raw {
            let arg = arg.as_ref();
            let (key, value) = arg.split_once('=').ok_or_else(|| CliError::Usage {
                reason: format!("expected key=value, got `{arg}`"),
            })?;
            if key.is_empty() {
                return Err(CliError::Usage {
                    reason: format!("empty key in `{arg}`"),
                });
            }
            if values.insert(key.to_string(), value.to_string()).is_some() {
                return Err(CliError::Usage {
                    reason: format!("key `{key}` given more than once"),
                });
            }
        }
        Ok(Self { values })
    }

    /// The raw string value of a key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Rejects any keys not in the allowed list — catches typos like `quereis=`.
    /// (The schema layer calls this with a command's declared key set.)
    pub fn ensure_only(&self, allowed: &[&str]) -> Result<()> {
        for key in self.values.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::Usage {
                    reason: format!(
                        "unknown argument `{key}`; allowed arguments are: {}",
                        allowed.join(", ")
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs() {
        let args = ParsedArgs::parse(&["data=points.csv", "s=0.5", "k=3"]).unwrap();
        assert_eq!(args.get("data"), Some("points.csv"));
        assert_eq!(args.get("s"), Some("0.5"));
        assert_eq!(args.get("missing"), None);
        // Values are kept verbatim (typing happens in the schema layer).
        let args = ParsedArgs::parse(&["x=a=b"]).unwrap();
        assert_eq!(args.get("x"), Some("a=b"));
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(ParsedArgs::parse(&["noequals"]).is_err());
        assert!(ParsedArgs::parse(&["=value"]).is_err());
        assert!(ParsedArgs::parse(&["a=1", "a=2"]).is_err());
    }

    #[test]
    fn unknown_keys_are_caught() {
        let args = ParsedArgs::parse(&["data=x.csv", "quereis=y.csv"]).unwrap();
        assert!(args.ensure_only(&["data", "queries"]).is_err());
        assert!(args.ensure_only(&["data", "quereis"]).is_ok());
    }

    #[test]
    fn empty_argument_list_is_fine() {
        let args = ParsedArgs::parse::<&str>(&[]).unwrap();
        assert!(args.get("anything").is_none());
        assert!(args.ensure_only(&[]).is_ok());
    }
}
