//! Minimal `key=value` argument parsing.
//!
//! The CLI deliberately avoids a third-party argument parser (the workspace's dependency
//! policy allows only the crates listed in `DESIGN.md`); every subcommand takes
//! positional-free `key=value` pairs, which keeps parsing trivial and the commands
//! scriptable.

use crate::error::{CliError, Result};
use std::collections::HashMap;

/// Parsed `key=value` arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw arguments of the form `key=value`.
    ///
    /// Returns a usage error for any argument that does not contain `=`, for an empty
    /// key, or for a key given twice.
    pub fn parse<S: AsRef<str>>(raw: &[S]) -> Result<Self> {
        let mut values = HashMap::new();
        for arg in raw {
            let arg = arg.as_ref();
            let (key, value) = arg.split_once('=').ok_or_else(|| CliError::Usage {
                reason: format!("expected key=value, got `{arg}`"),
            })?;
            if key.is_empty() {
                return Err(CliError::Usage {
                    reason: format!("empty key in `{arg}`"),
                });
            }
            if values.insert(key.to_string(), value.to_string()).is_some() {
                return Err(CliError::Usage {
                    reason: format!("key `{key}` given more than once"),
                });
            }
        }
        Ok(Self { values })
    }

    /// The raw string value of a key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string value.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key).ok_or_else(|| CliError::Usage {
            reason: format!("missing required argument `{key}=`"),
        })
    }

    /// An optional string value with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A required floating-point value.
    pub fn require_f64(&self, key: &str) -> Result<f64> {
        parse_f64(key, self.require(key)?)
    }

    /// An optional floating-point value with a default.
    pub fn get_f64_or(&self, key: &str, default: f64) -> Result<f64> {
        match self.get(key) {
            Some(v) => parse_f64(key, v),
            None => Ok(default),
        }
    }

    /// An optional integer value with a default.
    pub fn get_usize_or(&self, key: &str, default: usize) -> Result<usize> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| CliError::Usage {
                reason: format!("argument `{key}` must be a non-negative integer, got `{v}`"),
            }),
            None => Ok(default),
        }
    }

    /// A required integer value.
    pub fn require_usize(&self, key: &str) -> Result<usize> {
        let v = self.require(key)?;
        v.parse().map_err(|_| CliError::Usage {
            reason: format!("argument `{key}` must be a non-negative integer, got `{v}`"),
        })
    }

    /// An optional boolean with a default; accepts `true`/`false`/`1`/`0`.
    pub fn get_bool_or(&self, key: &str, default: bool) -> Result<bool> {
        match self.get(key) {
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(v) => Err(CliError::Usage {
                reason: format!("argument `{key}` must be true/false/1/0, got `{v}`"),
            }),
            None => Ok(default),
        }
    }

    /// An optional *strictly positive* integer with a default: an explicit `0` is
    /// rejected with an explanation instead of being silently clamped or
    /// reinterpreted (catches `threads=0` / `chunk=0` confusion).
    pub fn get_positive_usize_or(&self, key: &str, default: usize) -> Result<usize> {
        let value = self.get_usize_or(key, default)?;
        if value == 0 && self.get(key).is_some() {
            return Err(CliError::Usage {
                reason: format!("argument `{key}` must be at least 1, got 0"),
            });
        }
        Ok(value)
    }

    /// An optional 64-bit seed with a default.
    pub fn get_u64_or(&self, key: &str, default: u64) -> Result<u64> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| CliError::Usage {
                reason: format!("argument `{key}` must be a non-negative integer, got `{v}`"),
            }),
            None => Ok(default),
        }
    }

    /// Rejects any keys not in the allowed list — catches typos like `quereis=`.
    pub fn ensure_only(&self, allowed: &[&str]) -> Result<()> {
        for key in self.values.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::Usage {
                    reason: format!(
                        "unknown argument `{key}`; allowed arguments are: {}",
                        allowed.join(", ")
                    ),
                });
            }
        }
        Ok(())
    }
}

fn parse_f64(key: &str, value: &str) -> Result<f64> {
    value.parse().map_err(|_| CliError::Usage {
        reason: format!("argument `{key}` must be a number, got `{value}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs() {
        let args = ParsedArgs::parse(&["data=points.csv", "s=0.5", "k=3"]).unwrap();
        assert_eq!(args.get("data"), Some("points.csv"));
        assert_eq!(args.require("data").unwrap(), "points.csv");
        assert_eq!(args.require_f64("s").unwrap(), 0.5);
        assert_eq!(args.get_usize_or("k", 1).unwrap(), 3);
        assert_eq!(args.get_usize_or("missing", 7).unwrap(), 7);
        assert_eq!(args.get_or("algorithm", "brute"), "brute");
        assert_eq!(args.get_f64_or("c", 1.0).unwrap(), 1.0);
        assert_eq!(args.get_u64_or("seed", 42).unwrap(), 42);
    }

    #[test]
    fn booleans_parse_and_reject_garbage() {
        let args = ParsedArgs::parse(&["a=true", "b=0", "c=maybe"]).unwrap();
        assert!(args.get_bool_or("a", false).unwrap());
        assert!(!args.get_bool_or("b", true).unwrap());
        assert!(args.get_bool_or("c", false).is_err());
        assert!(args.get_bool_or("missing", true).unwrap());
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(ParsedArgs::parse(&["noequals"]).is_err());
        assert!(ParsedArgs::parse(&["=value"]).is_err());
        assert!(ParsedArgs::parse(&["a=1", "a=2"]).is_err());
        let args = ParsedArgs::parse(&["s=abc", "k=-1", "seed=x"]).unwrap();
        assert!(args.require_f64("s").is_err());
        assert!(args.get_usize_or("k", 1).is_err());
        assert!(args.get_u64_or("seed", 0).is_err());
        assert!(args.require("missing").is_err());
        assert!(args.require_usize("missing").is_err());
    }

    #[test]
    fn explicit_zeros_are_rejected_by_the_positive_parser() {
        let args = ParsedArgs::parse(&["threads=0", "chunk=4"]).unwrap();
        let err = args.get_positive_usize_or("threads", 2).unwrap_err();
        assert!(err.to_string().contains("`threads`"));
        assert!(err.to_string().contains("at least 1"));
        assert_eq!(args.get_positive_usize_or("chunk", 1).unwrap(), 4);
        // An *absent* key falls back to the default, even a zero default (the
        // engine's internal 0 = one-per-CPU sentinel stays reachable as a default).
        assert_eq!(args.get_positive_usize_or("missing", 0).unwrap(), 0);
        assert!(ParsedArgs::parse(&["k=x"])
            .unwrap()
            .get_positive_usize_or("k", 1)
            .is_err());
    }

    #[test]
    fn unknown_keys_are_caught() {
        let args = ParsedArgs::parse(&["data=x.csv", "quereis=y.csv"]).unwrap();
        assert!(args.ensure_only(&["data", "queries"]).is_err());
        assert!(args.ensure_only(&["data", "quereis"]).is_ok());
    }

    #[test]
    fn empty_argument_list_is_fine() {
        let args = ParsedArgs::parse::<&str>(&[]).unwrap();
        assert!(args.get("anything").is_none());
        assert!(args.ensure_only(&[]).is_ok());
    }
}
