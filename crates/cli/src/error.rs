//! Error type for the command-line interface, on the workspace error pattern
//! ([`ips_linalg::define_error!`]).

use ips_core::CoreError;
use ips_datagen::DatagenError;
use ips_linalg::LinalgError;
use ips_matmul::MatmulError;
use ips_sketch::SketchError;
use ips_store::StoreError;

ips_linalg::define_error! {
    /// Errors produced by the CLI layer.
    CliError, Result {
        variants {
            /// The command line could not be understood.
            Usage {
                /// Explanation of what was wrong.
                reason: String,
            } => ("usage error: {reason}"),
            /// A CSV vector file could not be parsed.
            Parse {
                /// The file (or stream label) being read.
                source_name: String,
                /// 1-based line number of the offending record.
                line: usize,
                /// Explanation of the problem.
                reason: String,
            } => ("parse error in {source_name} at line {line}: {reason}"),
        }
        wraps {
            /// An I/O operation failed.
            Io(std::io::Error) => "I/O error",
            /// An underlying join/search operation failed.
            Core(CoreError) => "join error",
            /// An underlying linear-algebra operation failed.
            Linalg(LinalgError) => "linear algebra error",
            /// An underlying workload-generation operation failed.
            Datagen(DatagenError) => "generation error",
            /// An underlying sketch operation failed.
            Sketch(SketchError) => "sketch error",
            /// An underlying matrix-multiplication operation failed.
            Matmul(MatmulError) => "matrix multiplication error",
            /// An underlying snapshot/serving operation failed.
            Store(StoreError) => "store error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CliError::Usage {
            reason: "missing data=".into(),
        };
        assert!(e.to_string().contains("usage"));
        let e = CliError::Parse {
            source_name: "data.csv".into(),
            line: 7,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("data.csv"));
        assert!(e.to_string().contains("line 7"));
        let e: CliError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("I/O"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn conversions_from_workspace_errors() {
        let e: CliError = CoreError::EmptyDataSet.into();
        assert!(e.to_string().contains("join error"));
        let e: CliError = LinalgError::Empty { op: "dot" }.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: CliError = DatagenError::InvalidParameter {
            name: "n",
            reason: "zero".into(),
        }
        .into();
        assert!(e.to_string().contains("generation"));
        let e: CliError = SketchError::EmptyDataSet.into();
        assert!(e.to_string().contains("sketch"));
        let e: CliError = MatmulError::Empty { op: "gram" }.into();
        assert!(e.to_string().contains("matrix multiplication"));
        let e: CliError = StoreError::UnknownId { id: 3 }.into();
        assert!(e.to_string().contains("store error"));
        assert!(std::error::Error::source(&CliError::Usage { reason: "x".into() }).is_none());
    }
}
