//! Error type for the command-line interface.

use ips_core::CoreError;
use ips_linalg::LinalgError;
use ips_matmul::MatmulError;
use ips_sketch::SketchError;
use std::fmt;

/// Result alias used throughout `ips-cli`.
pub type Result<T> = std::result::Result<T, CliError>;

/// Errors produced by the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be understood.
    Usage {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A CSV vector file could not be parsed.
    Parse {
        /// The file (or stream label) being read.
        source_name: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// An I/O operation failed.
    Io(std::io::Error),
    /// An underlying join/search operation failed.
    Core(CoreError),
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying sketch operation failed.
    Sketch(SketchError),
    /// An underlying matrix-multiplication operation failed.
    Matmul(MatmulError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage { reason } => write!(f, "usage error: {reason}"),
            CliError::Parse {
                source_name,
                line,
                reason,
            } => write!(f, "parse error in {source_name} at line {line}: {reason}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Core(e) => write!(f, "join error: {e}"),
            CliError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CliError::Sketch(e) => write!(f, "sketch error: {e}"),
            CliError::Matmul(e) => write!(f, "matrix multiplication error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Core(e) => Some(e),
            CliError::Linalg(e) => Some(e),
            CliError::Sketch(e) => Some(e),
            CliError::Matmul(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<LinalgError> for CliError {
    fn from(e: LinalgError) -> Self {
        CliError::Linalg(e)
    }
}

impl From<SketchError> for CliError {
    fn from(e: SketchError) -> Self {
        CliError::Sketch(e)
    }
}

impl From<MatmulError> for CliError {
    fn from(e: MatmulError) -> Self {
        CliError::Matmul(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CliError::Usage {
            reason: "missing data=".into(),
        };
        assert!(e.to_string().contains("usage"));
        let e = CliError::Parse {
            source_name: "data.csv".into(),
            line: 7,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("data.csv"));
        assert!(e.to_string().contains("line 7"));
        let e: CliError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("I/O"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn conversions_from_workspace_errors() {
        let e: CliError = CoreError::EmptyDataSet.into();
        assert!(e.to_string().contains("join error"));
        let e: CliError = LinalgError::Empty { op: "dot" }.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: CliError = SketchError::EmptyDataSet.into();
        assert!(e.to_string().contains("sketch"));
        let e: CliError = MatmulError::Empty { op: "gram" }.into();
        assert!(e.to_string().contains("matrix multiplication"));
        assert!(std::error::Error::source(&CliError::Usage { reason: "x".into() }).is_none());
    }
}
