//! The subcommand implementations.
//!
//! Each command is an ordinary function from parsed arguments to a report value; the
//! binary in `main.rs` only decides how to print the report. This keeps the whole CLI
//! unit-testable without spawning processes or capturing stdout.

use crate::args::ParsedArgs;
use crate::dataset::{read_vectors, write_vectors, DatasetSummary};
use crate::error::{CliError, Result};
use ips_core::algebraic::algebraic_exact_join;
use ips_core::asymmetric::AlshParams;
use ips_core::brute::BorrowedBruteIndex;
use ips_core::engine::{EngineConfig, JoinEngine};
use ips_core::join::{alsh_engine, sketch_engine, symmetric_engine};
use ips_core::mips::{BruteForceMipsIndex, SearchResult};
use ips_core::planner::{JoinPlan, JoinPlanner, PlannerConfig};
use ips_core::problem::{evaluate_join, JoinSpec, JoinVariant, MatchPair};
use ips_core::symmetric::SymmetricParams;
use ips_core::topk::TopKMipsIndex;
use ips_core::AlshMipsIndex;
use ips_datagen::latent::{LatentFactorConfig, LatentFactorModel};
use ips_datagen::planted::{PlantedConfig, PlantedInstance};
use ips_datagen::sphere::unit_vectors;
use ips_sketch::linf_mips::MaxIpConfig;
use ips_store::{IndexConfig, ServingConfig, ServingIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Report returned by `ips generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateReport {
    /// Where the data vectors were written.
    pub data_path: PathBuf,
    /// Where the query vectors were written, when the kind produces queries.
    pub query_path: Option<PathBuf>,
    /// Number of data vectors written.
    pub data_count: usize,
    /// Number of query vectors written.
    pub query_count: usize,
    /// Dimension of the vectors.
    pub dim: usize,
}

/// Report returned by `ips join`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// The algorithm that produced the pairs; for `algorithm=auto` this is the
    /// strategy the planner chose (e.g. `auto→alsh`).
    pub algorithm: String,
    /// The reported pairs (at most one per query for the single-partner algorithms).
    pub pairs: Vec<MatchPair>,
    /// Recall against ground truth (fraction of promised queries answered).
    pub recall: f64,
    /// Whether every reported pair clears the relaxed threshold `cs`.
    pub valid: bool,
    /// Wall-clock time of the join in milliseconds. For `algorithm=auto` this
    /// is the end-to-end figure — workload sampling and planning included —
    /// so it can exceed the manual run of the same strategy by the planning
    /// overhead.
    pub elapsed_ms: f64,
    /// The cost-based plan, present only under `algorithm=auto`; printed by
    /// the binary when `explain=true`.
    pub plan: Option<JoinPlan>,
}

/// Report returned by `ips search`: for each query index, its top-`k` results.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// The algorithm that produced the results.
    pub algorithm: String,
    /// Per-query results, indexed in query-file order.
    pub results: Vec<Vec<SearchResult>>,
}

fn parse_variant(args: &ParsedArgs) -> Result<JoinVariant> {
    match args.get_or("variant", "signed") {
        "signed" => Ok(JoinVariant::Signed),
        "unsigned" => Ok(JoinVariant::Unsigned),
        other => Err(CliError::Usage {
            reason: format!("unknown variant `{other}`; expected signed or unsigned"),
        }),
    }
}

fn parse_spec(args: &ParsedArgs) -> Result<JoinSpec> {
    let s = args.require_f64("s")?;
    let c = args.get_f64_or("c", 1.0)?;
    let variant = parse_variant(args)?;
    JoinSpec::new(s, c, variant).map_err(CliError::from)
}

/// `ips generate` — synthesise a workload and write CSV files.
pub fn cmd_generate(args: &ParsedArgs) -> Result<GenerateReport> {
    args.ensure_only(&[
        "kind",
        "n",
        "queries",
        "dim",
        "seed",
        "data",
        "query-file",
        "planted-ip",
        "planted",
    ])?;
    let kind = args.get_or("kind", "latent");
    let n = args.require_usize("n")?;
    let queries = args.get_usize_or("queries", n / 10 + 1)?;
    let dim = args.get_usize_or("dim", 32)?;
    let seed = args.get_u64_or("seed", 42)?;
    let data_path = PathBuf::from(args.require("data")?);
    let query_path = args.get("query-file").map(PathBuf::from);
    let mut rng = StdRng::seed_from_u64(seed);

    let (data, query_vectors) = match kind {
        "latent" => {
            let model = LatentFactorModel::generate(
                &mut rng,
                LatentFactorConfig {
                    items: n,
                    users: queries,
                    dim,
                    popularity_sigma: 0.5,
                },
            )?;
            (model.items().to_vec(), Some(model.users().to_vec()))
        }
        "planted" => {
            let instance = PlantedInstance::generate(
                &mut rng,
                PlantedConfig {
                    data: n,
                    queries,
                    dim,
                    background_scale: 0.1,
                    planted_ip: args.get_f64_or("planted-ip", 0.8)?,
                    planted: args.get_usize_or("planted", queries.min(n) / 2)?,
                },
            )?;
            (instance.data().to_vec(), Some(instance.queries().to_vec()))
        }
        "sphere" => {
            let data = unit_vectors(&mut rng, n, dim)?;
            let q = if queries > 0 {
                Some(unit_vectors(&mut rng, queries, dim)?)
            } else {
                None
            };
            (data, q)
        }
        other => {
            return Err(CliError::Usage {
                reason: format!("unknown kind `{other}`; expected latent, planted or sphere"),
            })
        }
    };

    write_vectors(&data_path, &data)?;
    let mut query_count = 0;
    let written_query_path = match (&query_path, &query_vectors) {
        (Some(path), Some(qs)) => {
            write_vectors(path, qs)?;
            query_count = qs.len();
            Some(path.clone())
        }
        (None, _) => None,
        (Some(_), None) => None,
    };
    Ok(GenerateReport {
        data_path,
        query_path: written_query_path,
        data_count: data.len(),
        query_count,
        dim,
    })
}

/// `ips info` — summary statistics of a CSV vector file.
pub fn cmd_info(args: &ParsedArgs) -> Result<DatasetSummary> {
    args.ensure_only(&["data"])?;
    let vectors = read_vectors(Path::new(args.require("data")?))?;
    DatasetSummary::of(&vectors)
}

fn alsh_params(args: &ParsedArgs) -> Result<AlshParams> {
    let defaults = AlshParams::default();
    Ok(AlshParams {
        bits_per_table: args.get_usize_or("bits", defaults.bits_per_table)?,
        tables: args.get_usize_or("tables", defaults.tables)?,
        ..defaults
    })
}

fn run_join(
    algorithm: &str,
    rng: &mut StdRng,
    data: &[ips_linalg::DenseVector],
    queries: &[ips_linalg::DenseVector],
    spec: JoinSpec,
    params: AlshParams,
    engine_config: EngineConfig,
) -> Result<(Vec<MatchPair>, Option<JoinPlan>)> {
    // Every index-backed algorithm goes through the one parallel JoinEngine
    // driver; `matmul` keeps its own blockwise Gram-product path, and `auto`
    // lets the cost-based planner choose among the engine-backed strategies.
    match algorithm {
        "auto" => {
            let planner = JoinPlanner {
                config: PlannerConfig {
                    alsh: params,
                    engine: engine_config,
                    ..PlannerConfig::default()
                },
                ..JoinPlanner::default()
            };
            let plan = planner.plan(rng, data, queries, spec)?;
            let pairs = plan.execute(rng, data, queries)?;
            Ok((pairs, Some(plan)))
        }
        "brute" => {
            // Borrowed index: the CSV reader already owns the vectors, no second copy.
            let engine =
                JoinEngine::with_config(BorrowedBruteIndex::new(data, spec), engine_config);
            Ok((engine.run(queries)?, None))
        }
        "matmul" => Ok((algebraic_exact_join(data, queries, &spec, 64)?, None)),
        "alsh" => Ok((
            alsh_engine(rng, data, spec, params, engine_config)?.run(queries)?,
            None,
        )),
        "symmetric" => Ok((
            symmetric_engine(rng, data, spec, SymmetricParams::default(), engine_config)?
                .run(queries)?,
            None,
        )),
        "sketch" => Ok((
            sketch_engine(rng, data, spec, MaxIpConfig::default(), 16, engine_config)?
                .run(queries)?,
            None,
        )),
        other => Err(CliError::Usage {
            reason: format!(
                "unknown algorithm `{other}`; expected auto, brute, matmul, alsh, symmetric or sketch"
            ),
        }),
    }
}

/// Parses `threads=` / `chunk=` into an [`EngineConfig`], rejecting explicit zeros
/// (public so the `serve` dispatch in `main.rs` shares the validation).
pub fn engine_config(args: &ParsedArgs) -> Result<EngineConfig> {
    let defaults = EngineConfig::default();
    // `threads=0` / `chunk=0` used to be accepted and silently reinterpreted (0
    // threads meant one-per-CPU, 0 chunk was clamped to 1); both are now errors.
    // The one-per-CPU schedule is spelled `threads=auto` (and is the default).
    let threads = match args.get("threads") {
        Some("auto") => 0,
        _ => args.get_positive_usize_or("threads", defaults.threads)?,
    };
    Ok(EngineConfig {
        threads,
        chunk_size: args.get_positive_usize_or("chunk", defaults.chunk_size)?,
    })
}

/// The algorithm selection for `ips join`: `algorithm=` with `algo=` accepted
/// as a shorthand (giving both is ambiguous and rejected).
fn parse_algorithm(args: &ParsedArgs) -> Result<String> {
    match (args.get("algorithm"), args.get("algo")) {
        (Some(_), Some(_)) => Err(CliError::Usage {
            reason: "give either `algorithm=` or `algo=`, not both".into(),
        }),
        (Some(a), None) | (None, Some(a)) => Ok(a.to_string()),
        (None, None) => Ok("brute".to_string()),
    }
}

/// `ips join` — run a `(cs, s)` join between two CSV files.
///
/// `algorithm=auto` (or `algo=auto`) hands the choice to the cost-based
/// [`JoinPlanner`]; the resulting [`JoinPlan`] is attached to the report and
/// rendered by the binary when `explain=true` is given.
pub fn cmd_join(args: &ParsedArgs) -> Result<JoinReport> {
    args.ensure_only(&[
        "data",
        "queries",
        "s",
        "c",
        "variant",
        "algorithm",
        "algo",
        "explain",
        "seed",
        "limit",
        "bits",
        "tables",
        "threads",
        "chunk",
    ])?;
    let data = read_vectors(Path::new(args.require("data")?))?;
    let queries = read_vectors(Path::new(args.require("queries")?))?;
    let spec = parse_spec(args)?;
    let algorithm = parse_algorithm(args)?;
    if args.get_bool_or("explain", false)? && algorithm != "auto" {
        return Err(CliError::Usage {
            reason: format!("explain= requires algo=auto (got algorithm `{algorithm}`)"),
        });
    }
    let mut rng = StdRng::seed_from_u64(args.get_u64_or("seed", 42)?);
    let params = alsh_params(args)?;
    let config = engine_config(args)?;
    let start = Instant::now();
    let (pairs, plan) = run_join(&algorithm, &mut rng, &data, &queries, spec, params, config)?;
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let (recall, valid) = evaluate_join(&data, &queries, &spec, &pairs)?;
    let algorithm = match &plan {
        Some(p) => format!("auto→{}", p.choice),
        None => algorithm,
    };
    Ok(JoinReport {
        algorithm,
        pairs,
        recall,
        valid,
        elapsed_ms,
        plan,
    })
}

/// Report returned by `ips build`.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildReport {
    /// Where the snapshot was written.
    pub snapshot_path: PathBuf,
    /// The family that was built (for `algorithm=auto`, the planner's choice).
    pub family: String,
    /// Number of indexed data vectors.
    pub data_count: usize,
    /// Dimension of the vectors.
    pub dim: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
    /// Wall-clock build+save time in milliseconds.
    pub elapsed_ms: f64,
}

/// Report returned by `ips query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The family of the loaded snapshot.
    pub family: String,
    /// Number of live vectors in the snapshot.
    pub live: usize,
    /// The reported pairs (`data_index` holds the serving layer's external ids).
    pub pairs: Vec<MatchPair>,
    /// Number of query vectors asked.
    pub query_count: usize,
    /// The `k` used (`0` means above-threshold search: at most one partner).
    pub k: usize,
    /// Wall-clock time of the batch in milliseconds (excluding snapshot load).
    pub elapsed_ms: f64,
}

/// Resolves the `algorithm=`/`algo=` choice of `ips build` into a concrete
/// [`IndexConfig`], consulting the PR-2 cost-based planner for `auto`.
fn resolve_build_config(
    algorithm: &str,
    args: &ParsedArgs,
    rng: &mut StdRng,
    data: &[ips_linalg::DenseVector],
    spec: JoinSpec,
) -> Result<IndexConfig> {
    let alsh = alsh_params(args)?;
    let sketch = MaxIpConfig {
        kappa: args.get_f64_or("kappa", MaxIpConfig::default().kappa)?,
        copies: args.get_positive_usize_or("copies", MaxIpConfig::default().copies)?,
        rows: None,
    };
    let leaf = args.get_positive_usize_or("leaf", 16)?;
    Ok(match algorithm {
        "brute" => IndexConfig::Brute,
        "alsh" => IndexConfig::Alsh(alsh),
        "symmetric" => IndexConfig::Symmetric(SymmetricParams::default()),
        "sketch" => IndexConfig::Sketch {
            config: sketch,
            leaf_size: leaf,
        },
        "auto" => {
            // The planner costs strategies against the query workload, so auto
            // builds need a representative query file.
            let queries = read_vectors(Path::new(args.get("queries").ok_or_else(|| {
                CliError::Usage {
                    reason: "algorithm=auto needs queries=<path> (a representative query \
                             workload for the cost-based planner)"
                        .into(),
                }
            })?))?;
            let planner = JoinPlanner {
                config: PlannerConfig {
                    alsh,
                    sketch,
                    sketch_leaf_size: leaf,
                    ..PlannerConfig::default()
                },
                ..JoinPlanner::default()
            };
            let plan = planner.plan(rng, data, &queries, spec)?;
            match plan.choice {
                ips_core::planner::Strategy::BruteForce => IndexConfig::Brute,
                ips_core::planner::Strategy::Alsh => IndexConfig::Alsh(plan.alsh_params),
                ips_core::planner::Strategy::Symmetric => {
                    IndexConfig::Symmetric(plan.symmetric_params)
                }
                ips_core::planner::Strategy::Sketch => IndexConfig::Sketch {
                    config: plan.sketch_config,
                    leaf_size: plan.sketch_leaf_size,
                },
            }
        }
        other => {
            return Err(CliError::Usage {
                reason: format!(
                    "unknown algorithm `{other}`; expected auto, brute, alsh, symmetric or sketch"
                ),
            })
        }
    })
}

/// `ips build` — build an index over a CSV data file and write it as a snapshot.
///
/// The strategy is picked manually (`algorithm=`) or by the PR-2 cost-based planner
/// (`algorithm=auto queries=<path>`). The written snapshot round-trips losslessly:
/// serving it answers queries bit-identically to the index built here.
pub fn cmd_build(args: &ParsedArgs) -> Result<BuildReport> {
    args.ensure_only(&[
        "data",
        "snapshot",
        "queries",
        "s",
        "c",
        "variant",
        "algorithm",
        "algo",
        "seed",
        "bits",
        "tables",
        "kappa",
        "copies",
        "leaf",
    ])?;
    let data = read_vectors(Path::new(args.require("data")?))?;
    let snapshot_path = PathBuf::from(args.require("snapshot")?);
    let spec = parse_spec(args)?;
    let seed = args.get_u64_or("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let algorithm = parse_algorithm(args)?;
    let algorithm =
        if algorithm == "brute" && args.get("algorithm").is_none() && args.get("algo").is_none() {
            // `ips join` defaults to brute; a snapshot is usually built to amortise an
            // index, so `ips build` defaults to ALSH instead.
            "alsh".to_string()
        } else {
            algorithm
        };
    let start = Instant::now();
    let index_config = resolve_build_config(&algorithm, args, &mut rng, &data, spec)?;
    let dim = data[0].dim();
    let data_count = data.len();
    let mut serving = ServingIndex::build(
        data,
        spec,
        index_config,
        ServingConfig {
            seed,
            ..ServingConfig::default()
        },
    )?;
    let bytes = serving.save(&snapshot_path)?;
    Ok(BuildReport {
        snapshot_path,
        family: serving.family().name().to_string(),
        data_count,
        dim,
        bytes,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// `ips query` — one-shot batch of queries against a snapshot file.
///
/// `k=0` (the default) runs the `(cs, s)` above-threshold search (at most one
/// partner per query); `k>=1` returns up to `k` partners per query, best first.
pub fn cmd_query(args: &ParsedArgs) -> Result<QueryReport> {
    args.ensure_only(&["snapshot", "queries", "k", "threads", "chunk", "limit"])?;
    let queries = read_vectors(Path::new(args.require("queries")?))?;
    let k = args.get_usize_or("k", 0)?;
    let serving = ServingIndex::open(
        Path::new(args.require("snapshot")?),
        ServingConfig {
            engine: engine_config(args)?,
            ..ServingConfig::default()
        },
    )?;
    let start = Instant::now();
    let pairs = if k == 0 {
        serving.query(&queries)?
    } else {
        serving.query_top_k(&queries, k)?
    };
    Ok(QueryReport {
        family: serving.family().name().to_string(),
        live: serving.len(),
        pairs,
        query_count: queries.len(),
        k,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// `ips search` — build an index over the data file and answer top-`k` queries.
pub fn cmd_search(args: &ParsedArgs) -> Result<SearchReport> {
    args.ensure_only(&[
        "data",
        "queries",
        "s",
        "c",
        "variant",
        "algorithm",
        "seed",
        "k",
        "bits",
        "tables",
    ])?;
    let data = read_vectors(Path::new(args.require("data")?))?;
    let queries = read_vectors(Path::new(args.require("queries")?))?;
    let spec = parse_spec(args)?;
    let k = args.get_usize_or("k", 1)?;
    let algorithm = args.get_or("algorithm", "brute").to_string();
    let mut rng = StdRng::seed_from_u64(args.get_u64_or("seed", 42)?);
    let params = alsh_params(args)?;
    let results = match algorithm.as_str() {
        "brute" => {
            let index = BruteForceMipsIndex::new(data, spec);
            queries
                .iter()
                .map(|q| index.search_top_k(q, k))
                .collect::<ips_core::Result<Vec<_>>>()?
        }
        "alsh" => {
            let index = AlshMipsIndex::build(&mut rng, data, spec, params)?;
            queries
                .iter()
                .map(|q| index.search_top_k(q, k))
                .collect::<ips_core::Result<Vec<_>>>()?
        }
        other => {
            return Err(CliError::Usage {
                reason: format!("unknown algorithm `{other}`; expected brute or alsh"),
            })
        }
    };
    Ok(SearchReport { algorithm, results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ips-cli-{name}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(pairs: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(pairs).unwrap()
    }

    #[test]
    fn generate_latent_then_info_join_and_search() {
        let dir = temp_dir("end-to-end");
        let data = dir.join("items.csv");
        let queries = dir.join("users.csv");
        let report = cmd_generate(&args(&[
            "kind=latent",
            "n=120",
            "queries=15",
            "dim=16",
            "seed=7",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        assert_eq!(report.data_count, 120);
        assert_eq!(report.query_count, 15);
        assert_eq!(report.dim, 16);

        let info = cmd_info(&args(&[&format!("data={}", data.display())])).unwrap();
        assert_eq!(info.count, 120);
        assert_eq!(info.dim, 16);
        assert!(info.max_norm <= 1.0 + 1e-9);

        // The exact join answers every promised query by definition.
        let join = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "algorithm=brute",
        ]))
        .unwrap();
        assert_eq!(join.algorithm, "brute");
        assert_eq!(join.recall, 1.0);
        assert!(join.valid);
        assert!(join.elapsed_ms >= 0.0);

        // The matmul join must agree with brute force exactly.
        let matmul = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "algorithm=matmul",
        ]))
        .unwrap();
        assert_eq!(matmul.pairs, join.pairs);

        let search = cmd_search(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "k=3",
            "algorithm=brute",
        ]))
        .unwrap();
        assert_eq!(search.results.len(), 15);
        for per_query in &search.results {
            assert!(per_query.len() <= 3);
            for hit in per_query {
                assert!(hit.inner_product >= 0.8 * 0.2 - 1e-9);
            }
        }
    }

    #[test]
    fn generate_planted_and_run_approximate_joins() {
        let dir = temp_dir("approx");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=150",
            "queries=12",
            "dim=24",
            "planted-ip=0.85",
            "planted=6",
            "seed=11",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        for algorithm in ["alsh", "symmetric", "sketch"] {
            let report = cmd_join(&args(&[
                &format!("data={}", data.display()),
                &format!("queries={}", queries.display()),
                "s=0.8",
                "c=0.6",
                "variant=unsigned",
                &format!("algorithm={algorithm}"),
                "seed=3",
            ]))
            .unwrap();
            assert!(report.valid, "{algorithm} reported an invalid pair");
            assert!(
                report.recall >= 0.5,
                "{algorithm} recall unexpectedly low: {}",
                report.recall
            );
        }
    }

    #[test]
    fn auto_join_plans_and_reports_the_chosen_strategy() {
        let dir = temp_dir("auto");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=200",
            "queries=16",
            "dim=16",
            "seed=5",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        let report = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.7",
            "c=0.6",
            "algo=auto",
            "explain=true",
        ]))
        .unwrap();
        let plan = report.plan.as_ref().expect("auto attaches a plan");
        assert_eq!(report.algorithm, format!("auto→{}", plan.choice));
        assert!(report.valid);
        // The small workload must be answered by the exact scan.
        assert_eq!(plan.choice, ips_core::planner::Strategy::BruteForce);
        assert!(plan.explain().contains("plan: brute"));
        // A manual algorithm never carries a plan.
        let manual = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.7",
            "c=0.6",
            "algorithm=brute",
        ]))
        .unwrap();
        assert!(manual.plan.is_none());
        // ...and the auto run's pairs match the strategy it claims it ran.
        assert_eq!(report.pairs, manual.pairs);
    }

    #[test]
    fn algorithm_aliases_and_explain_are_validated() {
        let dir = temp_dir("auto-usage");
        let data = dir.join("v.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        let both = args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=brute",
            "algo=auto",
        ]);
        assert!(cmd_join(&both).is_err(), "algorithm= and algo= together");
        let explain_manual = args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=brute",
            "explain=true",
        ]);
        assert!(cmd_join(&explain_manual).is_err(), "explain without auto");
    }

    #[test]
    fn build_then_query_round_trips_through_a_snapshot() {
        let dir = temp_dir("build-query");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        let snapshot = dir.join("index.snap");
        cmd_generate(&args(&[
            "kind=planted",
            "n=200",
            "queries=12",
            "dim=16",
            "planted-ip=0.85",
            "planted=5",
            "seed=9",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        // Default build family is ALSH (the structure worth persisting).
        let built = cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "c=0.6",
            "seed=5",
        ]))
        .unwrap();
        assert_eq!(built.family, "alsh");
        assert_eq!(built.data_count, 200);
        assert_eq!(built.dim, 16);
        assert!(built.bytes > 0);
        // Query the snapshot twice: answers are identical (lossless round trip,
        // no rebuild randomness).
        let a = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        let b = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.family, "alsh");
        assert_eq!(a.live, 200);
        assert_eq!(a.query_count, 12);
        assert!(!a.pairs.is_empty(), "planted pairs must be found");
        // Top-k against the same snapshot.
        let top = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
            "k=3",
        ]))
        .unwrap();
        assert_eq!(top.k, 3);
        // Auto builds need a query workload for the planner; with one, the
        // planner picks brute on this small instance.
        assert!(cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "algo=auto",
        ]))
        .is_err());
        let auto = cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
            "s=0.8",
            "c=0.6",
            "algo=auto",
        ]))
        .unwrap();
        assert_eq!(auto.family, "brute");
    }

    #[test]
    fn zero_threads_and_chunk_are_rejected_with_auto_spelled_out() {
        let dir = temp_dir("zeros");
        let data = dir.join("z.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        for bad in ["threads=0", "chunk=0"] {
            let err = cmd_join(&args(&[
                &format!("data={}", data.display()),
                &format!("queries={}", data.display()),
                "s=0.1",
                bad,
            ]))
            .unwrap_err();
            assert!(
                err.to_string().contains("at least 1"),
                "{bad} not rejected: {err}"
            );
        }
        // threads=auto is the documented spelling for one-per-CPU.
        cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "threads=auto",
            "chunk=16",
        ]))
        .unwrap();
        // Unknown keys list the valid ones.
        let err = cmd_query(&args(&["snapshot=x", "queries=y", "limt=3"])).unwrap_err();
        assert!(err.to_string().contains("unknown argument `limt`"));
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn sphere_generation_without_queries() {
        let dir = temp_dir("sphere");
        let data = dir.join("sphere.csv");
        let report = cmd_generate(&args(&[
            "kind=sphere",
            "n=40",
            "dim=8",
            &format!("data={}", data.display()),
        ]))
        .unwrap();
        assert_eq!(report.data_count, 40);
        assert_eq!(report.query_count, 0);
        assert!(report.query_path.is_none());
        let info = cmd_info(&args(&[&format!("data={}", data.display())])).unwrap();
        assert!((info.min_norm - 1.0).abs() < 1e-9);
        assert!((info.max_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn usage_errors_are_reported() {
        let dir = temp_dir("usage");
        let data = dir.join("u.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        assert!(cmd_generate(&args(&["kind=bogus", "n=5", "data=x.csv"])).is_err());
        assert!(cmd_generate(&args(&["n=5"])).is_err(), "missing data path");
        assert!(cmd_info(&args(&["data=/definitely/missing.csv"])).is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=nope",
        ]))
        .is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "variant=sideways",
        ]))
        .is_err());
        assert!(cmd_search(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=nope",
        ]))
        .is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "typo=1",
        ]))
        .is_err());
    }
}
