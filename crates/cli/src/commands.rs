//! The subcommand implementations.
//!
//! Each command is an ordinary function from parsed arguments to a report value; the
//! binary in `main.rs` only decides how to print the report. This keeps the whole CLI
//! unit-testable without spawning processes or capturing stdout.
//!
//! Argument handling is entirely schema-driven: every command starts by binding the
//! raw [`ParsedArgs`] against its [`crate::schema::CommandSpec`] (the same struct
//! `ips help <cmd>` renders), and then executes through the workspace's typed
//! facades — [`ips_core::facade::JoinBuilder`] for joins, [`ips_store::Index`] /
//! [`ips_store::IndexBuilder`] for everything snapshot-backed.

use crate::args::ParsedArgs;
use crate::dataset::{read_vectors, write_vectors, DatasetSummary};
use crate::error::{CliError, Result};
use crate::schema::{self, CommandArgs};
use ips_core::algebraic::algebraic_exact_join;
use ips_core::asymmetric::AlshParams;
use ips_core::engine::EngineConfig;
use ips_core::facade::{Join, Strategy};
use ips_core::mips::{BruteForceMipsIndex, SearchResult};
use ips_core::planner::JoinPlan;
use ips_core::problem::{evaluate_join, JoinSpec, JoinVariant, MatchPair};
use ips_core::topk::TopKMipsIndex;
use ips_core::AlshMipsIndex;
use ips_datagen::latent::{LatentFactorConfig, LatentFactorModel};
use ips_datagen::planted::{PlantedConfig, PlantedInstance};
use ips_datagen::sphere::unit_vectors;
use ips_sketch::linf_mips::MaxIpConfig;
use ips_store::{CoalesceConfig, Index, ShardedServingIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Report returned by `ips generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateReport {
    /// Where the data vectors were written.
    pub data_path: PathBuf,
    /// Where the query vectors were written, when the kind produces queries.
    pub query_path: Option<PathBuf>,
    /// Number of data vectors written.
    pub data_count: usize,
    /// Number of query vectors written.
    pub query_count: usize,
    /// Dimension of the vectors.
    pub dim: usize,
}

/// Report returned by `ips join`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// The algorithm that produced the pairs; for `algorithm=auto` this is the
    /// strategy the planner chose (e.g. `auto→alsh`).
    pub algorithm: String,
    /// The reported pairs (at most one per query for the single-partner algorithms).
    pub pairs: Vec<MatchPair>,
    /// Recall against ground truth (fraction of promised queries answered).
    pub recall: f64,
    /// Whether every reported pair clears the relaxed threshold `cs`.
    pub valid: bool,
    /// Wall-clock time of the join in milliseconds. For `algorithm=auto` this
    /// is the end-to-end figure — workload sampling and planning included —
    /// so it can exceed the manual run of the same strategy by the planning
    /// overhead.
    pub elapsed_ms: f64,
    /// The cost-based plan, present only under `algorithm=auto`; printed by
    /// the binary when `explain=true`.
    pub plan: Option<JoinPlan>,
    /// Whether `explain=true` was given (the binary prints the plan iff so).
    pub explain: bool,
    /// The `limit=` presentation knob: pairs the binary prints before
    /// truncating the listing.
    pub limit: usize,
}

/// Report returned by `ips search`: for each query index, its top-`k` results.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// The algorithm that produced the results.
    pub algorithm: String,
    /// Per-query results, indexed in query-file order.
    pub results: Vec<Vec<SearchResult>>,
}

fn parse_variant(args: &CommandArgs<'_>) -> Result<JoinVariant> {
    match args.str("variant") {
        "signed" => Ok(JoinVariant::Signed),
        "unsigned" => Ok(JoinVariant::Unsigned),
        other => unreachable!("schema restricts variant to signed|unsigned, got `{other}`"),
    }
}

fn parse_spec(args: &CommandArgs<'_>) -> Result<JoinSpec> {
    JoinSpec::new(args.f64("s"), args.f64("c"), parse_variant(args)?).map_err(CliError::from)
}

fn alsh_params(args: &CommandArgs<'_>) -> AlshParams {
    AlshParams {
        bits_per_table: args.usize("bits"),
        tables: args.usize("tables"),
        probes: args.usize("probes"),
        ..AlshParams::default()
    }
}

/// The `dtype=` / `quantized=` scoring-kernel selection (the schema restricts
/// `dtype` to f64|f32, so the parse cannot fail on schema-validated input).
fn scoring_options(args: &CommandArgs<'_>) -> Result<ips_core::ScoringOptions> {
    Ok(ips_core::ScoringOptions {
        dtype: args.str("dtype").parse().map_err(CliError::from)?,
        quantized: args.bool("quantized"),
    })
}

/// The `threads=` / `chunk=` schedule (validation already done by the schema:
/// explicit zeros never get here, `auto` resolves to one worker per CPU).
fn engine_config(args: &CommandArgs<'_>) -> EngineConfig {
    EngineConfig {
        threads: args.threads("threads"),
        chunk_size: args.usize("chunk"),
    }
}

/// The algorithm selection: `algorithm=` with `algo=` accepted as a shorthand
/// (giving both is ambiguous and rejected); the schema supplies the default.
fn chosen_algorithm(args: &CommandArgs<'_>) -> Result<String> {
    match (args.given("algorithm"), args.given("algo")) {
        (true, true) => Err(CliError::Usage {
            reason: "give either `algorithm=` or `algo=`, not both".into(),
        }),
        (false, true) => Ok(args.opt_str("algo").expect("given").to_string()),
        _ => Ok(args.str("algorithm").to_string()),
    }
}

/// `ips generate` — synthesise a workload and write CSV files.
pub fn cmd_generate(raw: &ParsedArgs) -> Result<GenerateReport> {
    let args = schema::GENERATE.bind(raw)?;
    let n = args.usize("n");
    let queries = args.usize_or("queries", n / 10 + 1);
    let dim = args.usize("dim");
    let data_path = PathBuf::from(args.str("data"));
    let query_path = args.opt_str("query-file").map(PathBuf::from);
    let mut rng = StdRng::seed_from_u64(args.u64("seed"));

    let (data, query_vectors) = match args.str("kind") {
        "latent" => {
            let model = LatentFactorModel::generate(
                &mut rng,
                LatentFactorConfig {
                    items: n,
                    users: queries,
                    dim,
                    popularity_sigma: 0.5,
                },
            )?;
            (model.items().to_vec(), Some(model.users().to_vec()))
        }
        "planted" => {
            let instance = PlantedInstance::generate(
                &mut rng,
                PlantedConfig {
                    data: n,
                    queries,
                    dim,
                    background_scale: 0.1,
                    planted_ip: args.f64("planted-ip"),
                    planted: args.usize_or("planted", queries.min(n) / 2),
                },
            )?;
            (instance.data().to_vec(), Some(instance.queries().to_vec()))
        }
        "sphere" => {
            let data = unit_vectors(&mut rng, n, dim)?;
            let q = if queries > 0 {
                Some(unit_vectors(&mut rng, queries, dim)?)
            } else {
                None
            };
            (data, q)
        }
        other => unreachable!("schema restricts kind to latent|planted|sphere, got `{other}`"),
    };

    write_vectors(&data_path, &data)?;
    let mut query_count = 0;
    let written_query_path = match (&query_path, &query_vectors) {
        (Some(path), Some(qs)) => {
            write_vectors(path, qs)?;
            query_count = qs.len();
            Some(path.clone())
        }
        (None, _) => None,
        (Some(_), None) => None,
    };
    Ok(GenerateReport {
        data_path,
        query_path: written_query_path,
        data_count: data.len(),
        query_count,
        dim,
    })
}

/// `ips info` — summary statistics of a CSV vector file.
pub fn cmd_info(raw: &ParsedArgs) -> Result<DatasetSummary> {
    let args = schema::INFO.bind(raw)?;
    let vectors = read_vectors(Path::new(args.str("data")))?;
    DatasetSummary::of(&vectors)
}

/// `ips join` — run a `(cs, s)` join between two CSV files.
///
/// Every strategy dispatches through the fluent [`Join`] facade of `ips-core`
/// (the `matmul` baseline keeps its own blockwise Gram-product path);
/// `algorithm=auto` (or `algo=auto`) hands the choice to the cost-based
/// planner, and the resulting [`JoinPlan`] is attached to the report and
/// rendered by the binary when `explain=true` is given.
pub fn cmd_join(raw: &ParsedArgs) -> Result<JoinReport> {
    let args = schema::JOIN.bind(raw)?;
    let data = read_vectors(Path::new(args.str("data")))?;
    let queries = read_vectors(Path::new(args.str("queries")))?;
    let spec = parse_spec(&args)?;
    let algorithm = chosen_algorithm(&args)?;
    if args.bool("explain") && algorithm != "auto" {
        return Err(CliError::Usage {
            reason: format!("explain= requires algo=auto (got algorithm `{algorithm}`)"),
        });
    }
    let start = Instant::now();
    let (pairs, plan) = match algorithm.as_str() {
        "matmul" => (algebraic_exact_join(&data, &queries, &spec, 64)?, None),
        name => {
            let strategy: Strategy = name.parse().map_err(CliError::from)?;
            let report = Join::data(&data)
                .queries(&queries)
                .spec(spec)
                .strategy(strategy)
                .alsh_params(alsh_params(&args))
                .probes(args.usize("probes"))
                .engine(engine_config(&args))
                .scoring(scoring_options(&args)?)
                .seed(args.u64("seed"))
                .run()?;
            (report.matches, report.plan)
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let (recall, valid) = evaluate_join(&data, &queries, &spec, &pairs)?;
    let algorithm = match &plan {
        Some(p) => format!("auto→{}", p.choice),
        None => algorithm,
    };
    Ok(JoinReport {
        algorithm,
        pairs,
        recall,
        valid,
        elapsed_ms,
        plan,
        explain: args.bool("explain"),
        limit: args.usize("limit"),
    })
}

/// Report returned by `ips build`.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildReport {
    /// Where the snapshot was written.
    pub snapshot_path: PathBuf,
    /// The family that was built (for `algorithm=auto`, the planner's choice).
    pub family: String,
    /// Number of indexed data vectors.
    pub data_count: usize,
    /// Dimension of the vectors.
    pub dim: usize,
    /// Number of shards the index was partitioned into (`shards=`).
    pub shards: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
    /// Wall-clock build+save time in milliseconds.
    pub elapsed_ms: f64,
}

/// Report returned by `ips query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The family of the loaded snapshot.
    pub family: String,
    /// Number of live vectors in the snapshot.
    pub live: usize,
    /// Number of shards the loaded index has (after any `shards=` re-partition).
    pub shards: usize,
    /// The reported pairs (`data_index` holds the serving layer's external ids).
    pub pairs: Vec<MatchPair>,
    /// Number of query vectors asked.
    pub query_count: usize,
    /// The `k` used (`0` means above-threshold search: at most one partner).
    pub k: usize,
    /// Wall-clock time of the batch in milliseconds (excluding snapshot load).
    pub elapsed_ms: f64,
    /// The `limit=` presentation knob: pairs the binary prints before
    /// truncating the listing.
    pub limit: usize,
}

/// `ips build` — build an index over a CSV data file and write it as a snapshot.
///
/// A thin layer over [`ips_store::Index::build`]: the strategy is picked manually
/// (`algorithm=`, default `alsh` — a snapshot is usually built to amortise an
/// index) or by the cost-based planner (`algorithm=auto queries=<path>`). The
/// written snapshot round-trips losslessly: serving it answers queries
/// bit-identically to the index built here.
pub fn cmd_build(raw: &ParsedArgs) -> Result<BuildReport> {
    let args = schema::BUILD.bind(raw)?;
    let data = read_vectors(Path::new(args.str("data")))?;
    let snapshot_path = PathBuf::from(args.str("snapshot"));
    let spec = parse_spec(&args)?;
    let algorithm = chosen_algorithm(&args)?;
    let strategy: Strategy = algorithm.parse().map_err(CliError::from)?;
    let scoring = scoring_options(&args)?;
    let start = Instant::now();
    let mut builder = Index::build(data)
        .spec(spec)
        .strategy(strategy)
        .alsh_params(alsh_params(&args))
        .probes(args.usize("probes"))
        .sketch_config(MaxIpConfig {
            kappa: args.f64("kappa"),
            copies: args.usize("copies"),
            rows: None,
        })
        .sketch_leaf_size(args.usize("leaf"))
        .dtype(scoring.dtype)
        .quantized(scoring.quantized)
        .seed(args.u64("seed"));
    // The query file is only the planner's workload sample: read it under
    // `auto` alone, so non-auto builds neither require nor touch it (matching
    // the pre-facade behaviour of the command).
    if strategy == Strategy::Auto {
        let path = args.opt_str("queries").ok_or_else(|| CliError::Usage {
            reason: "algorithm=auto needs queries=<path> (a representative query \
                     workload for the cost-based planner)"
                .into(),
        })?;
        builder = builder.queries(read_vectors(Path::new(path))?);
    }
    let serving = builder.shards(args.usize("shards")).serve_sharded()?;
    let bytes = serving.save(&snapshot_path)?;
    Ok(BuildReport {
        snapshot_path,
        family: serving.family().name().to_string(),
        data_count: serving.len(),
        dim: serving.dim(),
        shards: serving.shard_count(),
        bytes,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// `ips query` — one-shot batch of queries against a snapshot file.
///
/// `k=0` (the default) runs the `(cs, s)` above-threshold search (at most one
/// partner per query); `k>=1` returns up to `k` partners per query, best first.
pub fn cmd_query(raw: &ParsedArgs) -> Result<QueryReport> {
    let args = schema::QUERY.bind(raw)?;
    let queries = read_vectors(Path::new(args.str("queries")))?;
    let k = args.usize("k");
    let mut builder = Index::open(args.str("snapshot"))
        .engine(engine_config(&args))
        .seed(args.u64("seed"));
    if args.given("shards") {
        builder = builder.shards(args.usize("shards"));
    }
    let serving = builder.serve_sharded()?;
    let start = Instant::now();
    let pairs = if k == 0 {
        serving.query(&queries)?
    } else {
        serving.query_top_k(&queries, k)?
    };
    Ok(QueryReport {
        family: serving.family().name().to_string(),
        live: serving.len(),
        shards: serving.shard_count(),
        pairs,
        query_count: queries.len(),
        k,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        limit: args.usize("limit"),
    })
}

/// Everything `ips serve` needs to run a session: the opened index plus the
/// transport and coalescing knobs bound from the schema. The binary decides
/// from [`ServeSetup::listen`] whether to run a stdin/stdout session or the
/// TCP front-end ([`crate::net::serve_tcp`]).
pub struct ServeSetup {
    /// The opened, possibly re-partitioned serving index.
    pub serving: ShardedServingIndex,
    /// TCP address to listen on; `None` means a stdin/stdout session.
    pub listen: Option<String>,
    /// Bounded worker-pool size for the TCP front-end.
    pub workers: usize,
    /// Per-connection read timeout in seconds (`0` = wait forever).
    pub timeout_secs: usize,
    /// Cross-connection query-coalescing knobs for the TCP front-end.
    pub coalesce: CoalesceConfig,
}

/// `ips serve` — opens the snapshot a serve session runs over (the binary then
/// drives [`crate::serve::serve_session`] on stdin/stdout, or
/// [`crate::net::serve_tcp`] when `listen=` is given). Both snapshot layouts
/// load; `shards=` re-partitions the live vectors first.
pub fn cmd_serve(raw: &ParsedArgs) -> Result<ServeSetup> {
    let args = schema::SERVE.bind(raw)?;
    let mut builder = Index::open(args.str("snapshot"))
        .engine(engine_config(&args))
        .rebuild_threshold(args.f64("rebuild-threshold"))
        .seed(args.u64("seed"))
        .slow_log_micros(args.usize("slow-log-micros") as u64)
        .adaptive(args.bool("adaptive"))
        .drift_check_secs(args.usize("drift-check-secs") as u64);
    if args.given("shards") {
        builder = builder.shards(args.usize("shards"));
    }
    // Only an explicit probes= overrides the snapshot's stored probe count.
    if args.given("probes") {
        builder = builder.probes(args.usize("probes"));
    }
    let serving = builder.serve_sharded()?;
    Ok(ServeSetup {
        serving,
        listen: args.opt_str("listen").map(str::to_string),
        workers: args.usize("workers"),
        timeout_secs: args.usize("timeout"),
        coalesce: CoalesceConfig {
            window_micros: args.usize("coalesce-window") as u64,
            max_batch: args.usize("coalesce-max"),
        },
    })
}

/// `ips search` — build an index over the data file and answer top-`k` queries.
pub fn cmd_search(raw: &ParsedArgs) -> Result<SearchReport> {
    let args = schema::SEARCH.bind(raw)?;
    let data = read_vectors(Path::new(args.str("data")))?;
    let queries = read_vectors(Path::new(args.str("queries")))?;
    let spec = parse_spec(&args)?;
    let k = args.usize("k");
    let algorithm = args.str("algorithm").to_string();
    let mut rng = StdRng::seed_from_u64(args.u64("seed"));
    let results = match algorithm.as_str() {
        "alsh" => {
            let index = AlshMipsIndex::build(&mut rng, data, spec, alsh_params(&args))?;
            queries
                .iter()
                .map(|q| index.search_top_k(q, k))
                .collect::<ips_core::Result<Vec<_>>>()?
        }
        "brute" => {
            let index = BruteForceMipsIndex::new(data, spec);
            queries
                .iter()
                .map(|q| index.search_top_k(q, k))
                .collect::<ips_core::Result<Vec<_>>>()?
        }
        other => unreachable!("schema restricts algorithm to brute|alsh, got `{other}`"),
    };
    Ok(SearchReport { algorithm, results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ips-cli-{name}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(pairs: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(pairs).unwrap()
    }

    #[test]
    fn generate_latent_then_info_join_and_search() {
        let dir = temp_dir("end-to-end");
        let data = dir.join("items.csv");
        let queries = dir.join("users.csv");
        let report = cmd_generate(&args(&[
            "kind=latent",
            "n=120",
            "queries=15",
            "dim=16",
            "seed=7",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        assert_eq!(report.data_count, 120);
        assert_eq!(report.query_count, 15);
        assert_eq!(report.dim, 16);

        let info = cmd_info(&args(&[&format!("data={}", data.display())])).unwrap();
        assert_eq!(info.count, 120);
        assert_eq!(info.dim, 16);
        assert!(info.max_norm <= 1.0 + 1e-9);

        // The exact join answers every promised query by definition.
        let join = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "algorithm=brute",
        ]))
        .unwrap();
        assert_eq!(join.algorithm, "brute");
        assert_eq!(join.recall, 1.0);
        assert!(join.valid);
        assert!(join.elapsed_ms >= 0.0);

        // The matmul join must agree with brute force exactly.
        let matmul = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "algorithm=matmul",
        ]))
        .unwrap();
        assert_eq!(matmul.pairs, join.pairs);

        let search = cmd_search(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.2",
            "c=0.8",
            "k=3",
            "algorithm=brute",
        ]))
        .unwrap();
        assert_eq!(search.results.len(), 15);
        for per_query in &search.results {
            assert!(per_query.len() <= 3);
            for hit in per_query {
                assert!(hit.inner_product >= 0.8 * 0.2 - 1e-9);
            }
        }
    }

    #[test]
    fn generate_planted_and_run_approximate_joins() {
        let dir = temp_dir("approx");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=150",
            "queries=12",
            "dim=24",
            "planted-ip=0.85",
            "planted=6",
            "seed=11",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        for algorithm in ["alsh", "symmetric", "sketch"] {
            let report = cmd_join(&args(&[
                &format!("data={}", data.display()),
                &format!("queries={}", queries.display()),
                "s=0.8",
                "c=0.6",
                "variant=unsigned",
                &format!("algorithm={algorithm}"),
                "seed=3",
            ]))
            .unwrap();
            assert!(report.valid, "{algorithm} reported an invalid pair");
            assert!(
                report.recall >= 0.5,
                "{algorithm} recall unexpectedly low: {}",
                report.recall
            );
        }
    }

    #[test]
    fn auto_join_plans_and_reports_the_chosen_strategy() {
        let dir = temp_dir("auto");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=200",
            "queries=16",
            "dim=16",
            "seed=5",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        let report = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.7",
            "c=0.6",
            "algo=auto",
            "explain=true",
        ]))
        .unwrap();
        let plan = report.plan.as_ref().expect("auto attaches a plan");
        assert_eq!(report.algorithm, format!("auto→{}", plan.choice));
        assert!(report.valid);
        // The small workload must be answered by the exact scan.
        assert_eq!(plan.choice, ips_core::planner::Strategy::BruteForce);
        assert!(plan.explain().contains("plan: brute"));
        // A manual algorithm never carries a plan.
        let manual = cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.7",
            "c=0.6",
            "algorithm=brute",
        ]))
        .unwrap();
        assert!(manual.plan.is_none());
        // ...and the auto run's pairs match the strategy it claims it ran.
        assert_eq!(report.pairs, manual.pairs);
    }

    #[test]
    fn algorithm_aliases_and_explain_are_validated() {
        let dir = temp_dir("auto-usage");
        let data = dir.join("v.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        let both = args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=brute",
            "algo=auto",
        ]);
        assert!(cmd_join(&both).is_err(), "algorithm= and algo= together");
        let explain_manual = args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=brute",
            "explain=true",
        ]);
        assert!(cmd_join(&explain_manual).is_err(), "explain without auto");
    }

    #[test]
    fn build_then_query_round_trips_through_a_snapshot() {
        let dir = temp_dir("build-query");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        let snapshot = dir.join("index.snap");
        cmd_generate(&args(&[
            "kind=planted",
            "n=200",
            "queries=12",
            "dim=16",
            "planted-ip=0.85",
            "planted=5",
            "seed=9",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        // Default build family is ALSH (the structure worth persisting).
        let built = cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "c=0.6",
            "seed=5",
        ]))
        .unwrap();
        assert_eq!(built.family, "alsh");
        assert_eq!(built.data_count, 200);
        assert_eq!(built.dim, 16);
        assert!(built.bytes > 0);
        // Query the snapshot twice: answers are identical (lossless round trip,
        // no rebuild randomness).
        let a = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        let b = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.family, "alsh");
        assert_eq!(a.live, 200);
        assert_eq!(a.query_count, 12);
        assert!(!a.pairs.is_empty(), "planted pairs must be found");
        // Top-k against the same snapshot.
        let top = cmd_query(&args(&[
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
            "k=3",
        ]))
        .unwrap();
        assert_eq!(top.k, 3);
        // Auto builds need a query workload for the planner; with one, the
        // planner picks brute on this small instance.
        let err = cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "algo=auto",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("queries=<path>"), "{err}");
        let auto = cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            &format!("queries={}", queries.display()),
            "s=0.8",
            "c=0.6",
            "algo=auto",
        ]))
        .unwrap();
        assert_eq!(auto.family, "brute");
    }

    #[test]
    fn sharded_build_matches_single_shard_and_reshards_on_open() {
        let dir = temp_dir("sharded-cli");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        let one = dir.join("one.snap");
        let four = dir.join("four.snap");
        cmd_generate(&args(&[
            "kind=planted",
            "n=240",
            "queries=14",
            "dim=16",
            "planted-ip=0.85",
            "planted=6",
            "seed=13",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        let common = [
            format!("data={}", data.display()),
            "s=0.8".to_string(),
            "c=0.6".to_string(),
            "seed=5".to_string(),
        ];
        let mut one_args: Vec<String> = common.to_vec();
        one_args.push(format!("snapshot={}", one.display()));
        let mut four_args: Vec<String> = common.to_vec();
        four_args.push(format!("snapshot={}", four.display()));
        four_args.push("shards=4".to_string());
        let built_one = cmd_build(&args(
            &one_args.iter().map(String::as_str).collect::<Vec<_>>(),
        ))
        .unwrap();
        let built_four = cmd_build(&args(
            &four_args.iter().map(String::as_str).collect::<Vec<_>>(),
        ))
        .unwrap();
        assert_eq!(built_one.shards, 1);
        assert_eq!(built_four.shards, 4);
        assert_eq!(built_four.family, "alsh");
        // Same seed, same data: the sharded snapshot answers bit-identically to
        // the single-shard one (ALSH decomposes under a shared seed).
        let q1 = cmd_query(&args(&[
            &format!("snapshot={}", one.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        let q4 = cmd_query(&args(&[
            &format!("snapshot={}", four.display()),
            &format!("queries={}", queries.display()),
        ]))
        .unwrap();
        assert_eq!(q1.shards, 1);
        assert_eq!(q4.shards, 4);
        assert_eq!(q1.pairs, q4.pairs);
        assert!(!q4.pairs.is_empty(), "planted pairs must be found");
        // shards= on query re-partitions a loaded snapshot; passing the original
        // build seed makes the rebuilt structures — and therefore the answers —
        // exactly the ones the snapshot serves.
        let resharded = cmd_query(&args(&[
            &format!("snapshot={}", four.display()),
            &format!("queries={}", queries.display()),
            "shards=2",
            "seed=5",
        ]))
        .unwrap();
        assert_eq!(resharded.shards, 2);
        assert_eq!(resharded.pairs, q4.pairs);
        // Serve accepts the multi-shard snapshot and reports its shard count;
        // with no listen= the setup asks for a stdin/stdout session.
        let setup = cmd_serve(&args(&[&format!("snapshot={}", four.display())])).unwrap();
        assert_eq!(setup.serving.shard_count(), 4);
        assert_eq!(setup.serving.len(), 240);
        assert_eq!(setup.listen, None);
    }

    #[test]
    fn serve_opens_the_snapshot_with_serving_knobs() {
        let dir = temp_dir("serve-open");
        let data = dir.join("data.csv");
        let snapshot = dir.join("index.snap");
        cmd_generate(&args(&[
            "kind=planted",
            "n=50",
            "queries=5",
            "dim=8",
            "seed=2",
            &format!("data={}", data.display()),
        ]))
        .unwrap();
        cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "c=0.6",
        ]))
        .unwrap();
        let setup = cmd_serve(&args(&[
            &format!("snapshot={}", snapshot.display()),
            "threads=1",
            "rebuild-threshold=0.5",
            "listen=127.0.0.1:0",
            "workers=2",
            "timeout=5",
            "coalesce-window=150",
            "coalesce-max=8",
        ]))
        .unwrap();
        assert_eq!(setup.serving.len(), 50);
        assert_eq!(setup.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(setup.workers, 2);
        assert_eq!(setup.timeout_secs, 5);
        assert_eq!(setup.coalesce.window_micros, 150);
        assert_eq!(setup.coalesce.max_batch, 8);
        // Schema validation applies: an unknown key is rejected up front.
        assert!(cmd_serve(&args(&[
            &format!("snapshot={}", snapshot.display()),
            "rebuild=0.5",
        ]))
        .map(|_| ())
        .is_err());
    }

    #[test]
    fn zero_threads_and_chunk_are_rejected_with_auto_spelled_out() {
        let dir = temp_dir("zeros");
        let data = dir.join("z.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        for bad in ["threads=0", "chunk=0"] {
            let err = cmd_join(&args(&[
                &format!("data={}", data.display()),
                &format!("queries={}", data.display()),
                "s=0.1",
                bad,
            ]))
            .unwrap_err();
            assert!(
                err.to_string().contains("at least 1"),
                "{bad} not rejected: {err}"
            );
        }
        // threads=auto is the documented spelling for one-per-CPU.
        cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "threads=auto",
            "chunk=16",
        ]))
        .unwrap();
        // Unknown keys list the valid ones.
        let err = cmd_query(&args(&["snapshot=x", "queries=y", "limt=3"])).unwrap_err();
        assert!(err.to_string().contains("unknown argument `limt`"));
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn kernel_knobs_parse_and_preserve_answers() {
        let dir = temp_dir("kernels");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=160",
            "queries=10",
            "dim=16",
            "planted-ip=0.85",
            "planted=5",
            "seed=21",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        let run = |extra: &[&str]| {
            let mut argv = vec![
                format!("data={}", data.display()),
                format!("queries={}", queries.display()),
                "s=0.8".to_string(),
                "c=0.6".to_string(),
                "algorithm=brute".to_string(),
            ];
            argv.extend(extra.iter().map(|s| s.to_string()));
            cmd_join(&args(&argv.iter().map(String::as_str).collect::<Vec<_>>())).unwrap()
        };
        let plain = run(&[]);
        // Quantized scoring rescores survivors exactly: identical pairs.
        let quant = run(&["quantized=true"]);
        assert_eq!(plain.pairs, quant.pairs);
        // f32 scoring stays valid (winners are exactly rescored).
        let f32_run = run(&["dtype=f32"]);
        assert!(f32_run.valid);
        // Bad dtype values are rejected by the schema.
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.8",
            "dtype=f16",
        ]))
        .is_err());
        // The build command accepts the same knobs and the snapshot answers
        // identically to a default-path build.
        let snap_plain = dir.join("plain.snap");
        let snap_quant = dir.join("quant.snap");
        for (snap, extra) in [(&snap_plain, None), (&snap_quant, Some("quantized=true"))] {
            let mut argv = vec![
                format!("data={}", data.display()),
                format!("snapshot={}", snap.display()),
                "s=0.8".to_string(),
                "c=0.6".to_string(),
                "seed=5".to_string(),
            ];
            if let Some(e) = extra {
                argv.push(e.to_string());
            }
            cmd_build(&args(&argv.iter().map(String::as_str).collect::<Vec<_>>())).unwrap();
        }
        let q = |snap: &PathBuf| {
            cmd_query(&args(&[
                &format!("snapshot={}", snap.display()),
                &format!("queries={}", queries.display()),
            ]))
            .unwrap()
            .pairs
        };
        assert_eq!(q(&snap_plain), q(&snap_quant));
    }

    #[test]
    fn probes_flow_from_the_command_line() {
        let dir = temp_dir("probes");
        let data = dir.join("data.csv");
        let queries = dir.join("queries.csv");
        cmd_generate(&args(&[
            "kind=planted",
            "n=180",
            "queries=12",
            "dim=16",
            "planted-ip=0.85",
            "planted=6",
            "seed=17",
            &format!("data={}", data.display()),
            &format!("query-file={}", queries.display()),
        ]))
        .unwrap();
        // join: probes widen lookups without losing validity or plain hits.
        let join = |probes: &str| {
            cmd_join(&args(&[
                &format!("data={}", data.display()),
                &format!("queries={}", queries.display()),
                "s=0.8",
                "c=0.6",
                "algorithm=alsh",
                "seed=3",
                &format!("probes={probes}"),
            ]))
            .unwrap()
        };
        let plain = join("0");
        let probed = join("6");
        assert!(probed.valid);
        assert!(probed.recall >= plain.recall, "probing reduced recall");
        for pair in &plain.pairs {
            assert!(probed.pairs.contains(pair), "probing dropped {pair:?}");
        }
        // build stores the probed parameters; an explicit probes=0 on serve
        // overrides them back to classical single-bucket lookups.
        let snapshot = dir.join("probed.snap");
        cmd_build(&args(&[
            &format!("data={}", data.display()),
            &format!("snapshot={}", snapshot.display()),
            "s=0.8",
            "c=0.6",
            "seed=5",
            "probes=4",
        ]))
        .unwrap();
        let kept = cmd_serve(&args(&[&format!("snapshot={}", snapshot.display())])).unwrap();
        let overridden = cmd_serve(&args(&[
            &format!("snapshot={}", snapshot.display()),
            "probes=0",
        ]))
        .unwrap();
        let qs = read_vectors(Path::new(&queries)).unwrap();
        let with = kept.serving.query(&qs).unwrap();
        let without = overridden.serving.query(&qs).unwrap();
        assert!(with.len() >= without.len(), "stored probes lost hits");
        // probes= validates like every other schema arg.
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", queries.display()),
            "s=0.8",
            "probes=-1",
        ]))
        .is_err());
    }

    #[test]
    fn sphere_generation_without_queries() {
        let dir = temp_dir("sphere");
        let data = dir.join("sphere.csv");
        let report = cmd_generate(&args(&[
            "kind=sphere",
            "n=40",
            "dim=8",
            &format!("data={}", data.display()),
        ]))
        .unwrap();
        assert_eq!(report.data_count, 40);
        assert_eq!(report.query_count, 0);
        assert!(report.query_path.is_none());
        let info = cmd_info(&args(&[&format!("data={}", data.display())])).unwrap();
        assert!((info.min_norm - 1.0).abs() < 1e-9);
        assert!((info.max_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn usage_errors_are_reported() {
        let dir = temp_dir("usage");
        let data = dir.join("u.csv");
        crate::dataset::write_vectors(&data, &[ips_linalg::DenseVector::from(&[0.5, 0.5][..])])
            .unwrap();
        assert!(cmd_generate(&args(&["kind=bogus", "n=5", "data=x.csv"])).is_err());
        assert!(cmd_generate(&args(&["n=5"])).is_err(), "missing data path");
        assert!(cmd_info(&args(&["data=/definitely/missing.csv"])).is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=nope",
        ]))
        .is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "variant=sideways",
        ]))
        .is_err());
        assert!(cmd_search(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "algorithm=nope",
        ]))
        .is_err());
        assert!(cmd_join(&args(&[
            &format!("data={}", data.display()),
            &format!("queries={}", data.display()),
            "s=0.1",
            "typo=1",
        ]))
        .is_err());
    }
}
