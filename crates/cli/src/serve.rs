//! `ips serve` — the line-protocol REPL over a loaded snapshot.
//!
//! One command per line on stdin, one or more reply lines on stdout, errors as
//! `error: …` lines (the session keeps going). The protocol is deliberately plain so
//! it can be scripted with a heredoc or driven by another process:
//!
//! ```text
//! query 0.1,0.2,0.3[;0.4,0.5,0.6 ...]   one reply line per vector:
//!                                         hit <id> <inner product>   |   miss
//! topk <k> <vector>[;<vector> ...]      one reply line per vector:
//!                                         hits <id>:<ip>,<id>:<ip>…  |   none
//! insert 0.1,0.2,0.3                    inserted <id>
//! delete <id>                           deleted <id>
//! stats                                 stats family=… live=… queries=… hits=…
//!                                         inserts=… deletes=… rebuilds=… avg_query_ns=…
//!                                         shards=… shard_live=…,…  (per-shard counts)
//! save <path>                           saved <path> (<bytes> bytes)
//! help                                  command summary
//! quit | exit                           bye (EOF works too)
//! ```
//!
//! Vectors are comma-separated coordinates (the CSV line format of the data files);
//! `;` separates the vectors of one batch, which is answered through the
//! [`ips_core::JoinEngine`] in a single [`ShardedServingIndex::query`] call.

use crate::error::{CliError, Result};
use ips_linalg::DenseVector;
use ips_store::ShardedServingIndex;
use std::io::{BufRead, Write};

/// Parses one `a,b,c` coordinate list.
fn parse_vector(text: &str) -> Result<DenseVector> {
    let mut coords = Vec::new();
    for field in text.split(',') {
        let field = field.trim();
        let value: f64 = field.parse().map_err(|_| CliError::Usage {
            reason: format!("`{field}` is not a number"),
        })?;
        if !value.is_finite() {
            return Err(CliError::Usage {
                reason: format!("non-finite coordinate `{field}`"),
            });
        }
        coords.push(value);
    }
    if coords.is_empty() {
        return Err(CliError::Usage {
            reason: "empty vector".into(),
        });
    }
    Ok(DenseVector::new(coords))
}

/// Parses a `;`-separated batch of vectors.
fn parse_batch(text: &str) -> Result<Vec<DenseVector>> {
    text.split(';').map(|v| parse_vector(v.trim())).collect()
}

// The REPL's `help` reply is generated from the same declarative protocol table
// (`schema::SERVE_PROTOCOL`) that `ips help serve` renders, so the two can
// never drift; see `crate::schema::protocol_help`.

/// Executes one protocol line, appending reply lines to `out`. Returns `false` when
/// the session should end. The serving index is shared (`&`): its shard locks
/// provide the interior mutability, which is also why a long-lived process could
/// serve the same index from several sessions at once.
fn execute(serving: &ShardedServingIndex, line: &str, out: &mut Vec<String>) -> Result<bool> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(true);
    }
    let (command, rest) = line.split_once(' ').unwrap_or((line, ""));
    let rest = rest.trim();
    match command {
        "query" => {
            let queries = parse_batch(rest)?;
            let pairs = serving.query(&queries)?;
            let mut by_query = vec![None; queries.len()];
            for p in pairs {
                by_query[p.query_index] = Some(p);
            }
            for slot in by_query {
                out.push(match slot {
                    Some(p) => format!("hit {} {:+.6}", p.data_index, p.inner_product),
                    None => "miss".to_string(),
                });
            }
        }
        "topk" => {
            let (k, batch) = rest.split_once(' ').ok_or_else(|| CliError::Usage {
                reason: "topk needs `topk <k> <vector>[;<vector>...]`".into(),
            })?;
            let k: usize = k.parse().map_err(|_| CliError::Usage {
                reason: format!("`{k}` is not a k"),
            })?;
            let queries = parse_batch(batch)?;
            let pairs = serving.query_top_k(&queries, k)?;
            let mut by_query: Vec<Vec<String>> = vec![Vec::new(); queries.len()];
            for p in pairs {
                by_query[p.query_index].push(format!("{}:{:+.6}", p.data_index, p.inner_product));
            }
            for hits in by_query {
                out.push(if hits.is_empty() {
                    "none".to_string()
                } else {
                    format!("hits {}", hits.join(","))
                });
            }
        }
        "insert" => {
            let id = serving.insert(parse_vector(rest)?)?;
            out.push(format!("inserted {id}"));
        }
        "delete" => {
            let id: u64 = rest.parse().map_err(|_| CliError::Usage {
                reason: format!("`{rest}` is not an id"),
            })?;
            serving.delete(id)?;
            out.push(format!("deleted {id}"));
        }
        "stats" => {
            let stats = serving.stats();
            let shard_live: Vec<String> = serving
                .shard_lens()
                .iter()
                .map(|live| live.to_string())
                .collect();
            out.push(format!(
                "stats family={} live={} queries={} hits={} inserts={} deletes={} rebuilds={} avg_query_ns={} shards={} shard_live={}",
                serving.family(),
                serving.len(),
                stats.queries,
                stats.hits,
                stats.inserts,
                stats.deletes,
                stats.rebuilds,
                stats.avg_query_ns(),
                serving.shard_count(),
                shard_live.join(","),
            ));
        }
        "save" => {
            if rest.is_empty() {
                return Err(CliError::Usage {
                    reason: "save needs a path".into(),
                });
            }
            let bytes = serving.save(std::path::Path::new(rest))?;
            out.push(format!("saved {rest} ({bytes} bytes)"));
        }
        "help" => out.push(crate::schema::protocol_help()),
        "quit" | "exit" => {
            out.push("bye".to_string());
            return Ok(false);
        }
        other => {
            let known: Vec<&str> = crate::schema::SERVE_PROTOCOL
                .iter()
                .map(|c| c.name)
                .collect();
            return Err(CliError::Usage {
                reason: format!(
                    "unknown command `{other}` (try `help`; commands are {})",
                    known.join(", ")
                ),
            });
        }
    }
    Ok(true)
}

/// Drives a whole serve session: reads protocol lines from `input` until EOF or
/// `quit`, writing replies to `output`. Errors in individual commands are reported
/// as `error: …` lines and the session continues; only I/O failures end it early.
pub fn serve_session<R: BufRead, W: Write>(
    serving: &ShardedServingIndex,
    input: R,
    mut output: W,
) -> Result<()> {
    writeln!(
        output,
        "serving {} index: {} live vectors, dim {}, {} shard(s) (try `help`)",
        serving.family(),
        serving.len(),
        serving.dim(),
        serving.shard_count()
    )?;
    for line in input.lines() {
        let line = line?;
        let mut replies = Vec::new();
        match execute(serving, &line, &mut replies) {
            Ok(keep_going) => {
                for reply in replies {
                    writeln!(output, "{reply}")?;
                }
                if !keep_going {
                    break;
                }
            }
            Err(e) => writeln!(output, "error: {e}")?,
        }
        output.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::problem::{JoinSpec, JoinVariant};
    use ips_store::{IndexConfig, ServingConfig, ShardedConfig};

    fn serving_with_shards(shards: usize) -> ShardedServingIndex {
        let data = vec![
            DenseVector::from(&[0.9, 0.0][..]),
            DenseVector::from(&[0.0, 0.8][..]),
        ];
        let spec = JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap();
        ShardedServingIndex::build(
            data,
            spec,
            IndexConfig::Brute,
            ShardedConfig {
                shards,
                serving: ServingConfig::default(),
            },
        )
        .unwrap()
    }

    fn run_sharded(session: &str, shards: usize) -> String {
        let index = serving_with_shards(shards);
        let mut out = Vec::new();
        serve_session(&index, session.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn run(session: &str) -> String {
        run_sharded(session, 1)
    }

    #[test]
    fn scripted_session_round_trip() {
        let out = run("query 1.0,0.0\nquery 1,0;0,1;0.1,0.1\ninsert 0.7,0.7\nquery 0.7,0.7\ndelete 2\nquery 0.7,0.7\nstats\nquit\nquery 1,0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("serving brute index: 2 live vectors, dim 2"));
        assert_eq!(lines[1], "hit 0 +0.900000");
        // Batched queries answer in order.
        assert_eq!(lines[2], "hit 0 +0.900000");
        assert_eq!(lines[3], "hit 1 +0.800000");
        assert_eq!(lines[4], "miss");
        assert_eq!(lines[5], "inserted 2");
        assert!(lines[6].starts_with("hit 2 "));
        assert_eq!(lines[7], "deleted 2");
        // With the insert gone, the best remaining partner (0.63 >= s) answers again.
        assert_eq!(lines[8], "hit 0 +0.630000");
        assert!(lines[9].starts_with("stats family=brute live=2 queries=6 hits=5"));
        assert!(lines[9].contains("inserts=1 deletes=1"));
        // quit ends the session: the trailing query is never answered.
        assert_eq!(*lines.last().unwrap(), "bye");
    }

    #[test]
    fn topk_help_comments_and_errors() {
        let out = run("# a comment\n\ntopk 2 1.0,0.0;0.05,0.05\nhelp\ntopk nope\nbogus\ndelete x\ndelete 99\ninsert 1,2,3\nquery 0,oops\n");
        assert!(out.contains("hits 0:+0.900000"), "{out}");
        assert!(out.contains("\nnone\n"), "{out}");
        assert!(out.contains("commands:"), "{out}");
        assert!(out.contains("error: usage error: topk needs"), "{out}");
        assert!(out.contains("error: usage error: unknown command `bogus`"));
        assert!(out.contains("error: usage error: `x` is not an id"));
        assert!(out.contains("error: store error: unknown or deleted vector id 99"));
        assert!(out.contains("dimension 3 != index dimension 2"));
        assert!(out.contains("error: usage error: `oops` is not a number"));
    }

    #[test]
    fn save_from_a_session_is_loadable() {
        let dir = std::env::temp_dir().join("ips-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        let script = format!("insert 0.5,0.5\nsave {}\n", path.display());
        let out = run(&script);
        assert!(out.contains("inserted 2"));
        assert!(out.contains("saved "), "{out}");
        // A one-shard session writes the classic single-shard format.
        let reloaded = ips_store::ServingIndex::open(&path, ServingConfig::default()).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(reloaded.ids(), vec![0, 1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_session_reports_per_shard_counts_and_same_answers() {
        let session = "query 1.0,0.0\ninsert 0.7,0.7\nquery 0.7,0.7\nstats\n";
        let sharded = run_sharded(session, 3);
        assert!(
            sharded.starts_with("serving brute index: 2 live vectors, dim 2, 3 shard(s)"),
            "{sharded}"
        );
        assert!(sharded.contains("shards=3"), "{sharded}");
        // Three comma-separated per-shard live counts that sum to the live total.
        let shard_live = sharded
            .lines()
            .find(|l| l.starts_with("stats "))
            .and_then(|l| l.split("shard_live=").nth(1))
            .expect("stats line carries shard_live=");
        let counts: Vec<usize> = shard_live
            .split(',')
            .map(|c| c.trim().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), 3);
        // The answers match the single-shard session line for line (brute
        // decomposes exactly; only the banner and stats tail differ).
        let unsharded = run(session);
        let answer_lines = |out: &str| {
            out.lines()
                .filter(|l| l.starts_with("hit ") || *l == "miss" || l.starts_with("inserted "))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(answer_lines(&sharded), answer_lines(&unsharded));
    }
}
