//! `ips serve` — the line-protocol REPL over a loaded snapshot.
//!
//! One command per line on stdin, one or more reply lines on stdout, errors as
//! `error: …` lines (the session keeps going). The protocol is deliberately plain so
//! it can be scripted with a heredoc or driven by another process:
//!
//! ```text
//! query 0.1,0.2,0.3[;0.4,0.5,0.6 ...]   one reply line per vector:
//!                                         hit <id> <inner product>   |   miss
//! topk <k> <vector>[;<vector> ...]      one reply line per vector:
//!                                         hits <id>:<ip>,<id>:<ip>…  |   none
//! insert 0.1,0.2,0.3                    inserted <id>
//! delete <id>                           deleted <id>
//! stats                                 stats family=… live=… queries=… hits=…
//!                                         inserts=… deletes=… rebuilds=… avg_query_ns=…
//!                                         shards=… shard_live=…,…  (per-shard counts)
//!                                         connections=… coalesced_batches=…
//!                                         p50_query_ns=… p90_query_ns=… p99_query_ns=…
//!                                         (percentiles cover traffic since the
//!                                         previous `stats`)
//!                                         strategy=… drift_score=… migrations=…
//! plan                                  plan strategy=… drift_score=… migrations=… live=…
//!                                         (the adaptive controller's view: what is
//!                                         serving, how far the workload has drifted)
//! metrics                               Prometheus text exposition, terminated
//!                                         by a `# EOF` line (the multi-line
//!                                         reply's framing marker)
//! trace on|off                          per-session per-stage tracing: each
//!                                         subsequent query/topk emits a
//!                                         `trace parse=… … demux=…` breakdown
//!                                         line before its answers (traced
//!                                         requests bypass the coalescer)
//! save <path>                           saved <path> (<bytes> bytes)
//! help                                  command summary
//! shutdown                              bye (over TCP, also stops the whole server)
//! quit | exit                           bye (EOF works too)
//! ```
//!
//! Vectors are comma-separated coordinates (the CSV line format of the data files);
//! `;` separates the vectors of one batch, which is answered through the
//! [`ips_core::JoinEngine`] in a single [`ShardedServingIndex::query`] call.
//!
//! The same session loop also backs the TCP front-end ([`crate::net`]): each
//! connection runs [`serve_session_with`] over its stream with a
//! [`SessionOptions`] that bounds line length (malformed or hostile input fails
//! that connection alone) and routes `query`/`topk` through the shared
//! [`Coalescer`], merging concurrent single-query requests into batched engine
//! passes.

use crate::error::{CliError, Result};
use ips_linalg::DenseVector;
use ips_obs::{Observable, Stage, TraceCapture, TraceSink};
use ips_store::{Coalescer, ShardedServingIndex};
use std::io::{BufRead, Write};
use std::time::Instant;

/// Parses one `a,b,c` coordinate list.
fn parse_vector(text: &str) -> Result<DenseVector> {
    let mut coords = Vec::new();
    for field in text.split(',') {
        let field = field.trim();
        let value: f64 = field.parse().map_err(|_| CliError::Usage {
            reason: format!("`{field}` is not a number"),
        })?;
        if !value.is_finite() {
            return Err(CliError::Usage {
                reason: format!("non-finite coordinate `{field}`"),
            });
        }
        coords.push(value);
    }
    if coords.is_empty() {
        return Err(CliError::Usage {
            reason: "empty vector".into(),
        });
    }
    Ok(DenseVector::new(coords))
}

/// Parses a `;`-separated batch of vectors.
fn parse_batch(text: &str) -> Result<Vec<DenseVector>> {
    text.split(';').map(|v| parse_vector(v.trim())).collect()
}

// The REPL's `help` reply is generated from the same declarative protocol table
// (`schema::SERVE_PROTOCOL`) that `ips help serve` renders, so the two can
// never drift; see `crate::schema::protocol_help`.

/// Per-session tuning of [`serve_session_with`]. [`Default`] reproduces the
/// classic stdin REPL behaviour: no coalescing (the REPL is one client — there
/// is nothing to merge with) and a line cap generous enough that no legitimate
/// scripted session ever hits it.
pub struct SessionOptions<'a> {
    /// Route `query`/`topk` through this shared batcher instead of calling the
    /// index directly — the TCP front-end passes the server-wide [`Coalescer`]
    /// here so concurrent connections merge into one engine pass.
    pub coalescer: Option<&'a Coalescer>,
    /// Longest accepted protocol line in bytes; a longer line is answered with
    /// an `error:` reply and ends the session (a client that overruns the cap
    /// is not speaking the protocol, and resynchronising inside its stream
    /// would mean buffering it unboundedly — the exact attack the cap stops).
    pub max_line_bytes: usize,
}

impl Default for SessionOptions<'_> {
    fn default() -> Self {
        Self {
            coalescer: None,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Why a session ended — the TCP front-end acts on the difference
/// ([`SessionEnd::Shutdown`] stops the whole server, not just the connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// EOF, `quit`/`exit`, or an over-long line: only this session ends.
    Closed,
    /// The `shutdown` admin command: the server should stop accepting and
    /// drain.
    Shutdown,
}

/// What one executed line means for the session.
enum Flow {
    Continue,
    End(SessionEnd),
}

/// One read off the session input.
enum LineRead {
    Eof,
    Line(Vec<u8>),
    Overlong,
}

/// Reads one `\n`-terminated line of at most `cap` bytes without ever buffering
/// more than `cap` bytes of an attacker-controlled stream (the reason this is
/// not `BufRead::read_until`, which buffers the whole line first). A trailing
/// `\r` is stripped, matching `BufRead::lines`.
fn read_line_capped<R: BufRead>(input: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > cap {
                    input.consume(pos + 1);
                    return Ok(LineRead::Overlong);
                }
                buf.extend_from_slice(&available[..pos]);
                input.consume(pos + 1);
                break;
            }
            None => {
                let n = available.len();
                if buf.len() + n > cap {
                    input.consume(n);
                    return Ok(LineRead::Overlong);
                }
                buf.extend_from_slice(available);
                input.consume(n);
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(LineRead::Line(buf))
}

/// Answers a parsed `query` batch — through the coalescer when the session has
/// one (bit-identical either way; see `ips_store::coalesce`), directly
/// otherwise. A traced session bypasses the coalescer (the capture must cover
/// exactly this request's stages, not a merged batch's) and appends a
/// per-stage `trace` breakdown line; answers are bit-identical either way.
fn run_query(
    serving: &ShardedServingIndex,
    coalescer: Option<&Coalescer>,
    trace: Option<(u64, &mut Vec<String>)>,
    queries: Vec<DenseVector>,
) -> Result<Vec<ips_core::problem::MatchPair>> {
    if let Some((parse_ns, out)) = trace {
        let capture = TraceCapture::new();
        capture.stage_ns(Stage::Parse, parse_ns);
        let pairs = serving.query_with_sink(&queries, &capture)?;
        out.push(trace_line(&capture, queries.len()));
        return Ok(pairs);
    }
    Ok(match coalescer {
        Some(c) => c.query(queries)?,
        None => serving.query(&queries)?,
    })
}

/// Answers a parsed `topk` batch, mirroring [`run_query`].
fn run_top_k(
    serving: &ShardedServingIndex,
    coalescer: Option<&Coalescer>,
    trace: Option<(u64, &mut Vec<String>)>,
    queries: Vec<DenseVector>,
    k: usize,
) -> Result<Vec<ips_core::problem::MatchPair>> {
    if let Some((parse_ns, out)) = trace {
        let capture = TraceCapture::new();
        capture.stage_ns(Stage::Parse, parse_ns);
        let pairs = serving.query_top_k_with_sink(&queries, k, &capture)?;
        out.push(trace_line(&capture, queries.len()));
        return Ok(pairs);
    }
    Ok(match coalescer {
        Some(c) => c.query_top_k(queries, k)?,
        None => serving.query_top_k(&queries, k)?,
    })
}

/// Renders one captured per-stage breakdown, every stage always present in
/// pipeline order (a stage that did not run reports 0 — `coalesce_wait` is
/// always 0 here because traced requests bypass the coalescer).
fn trace_line(capture: &TraceCapture, queries: usize) -> String {
    let mut line = String::from("trace");
    for stage in Stage::ALL {
        line.push_str(&format!(" {}={}", stage.name(), capture.stage(stage)));
    }
    line.push_str(&format!(
        " queries={queries} batch={}",
        capture.observable(Observable::BatchSize)
    ));
    line
}

/// Executes one protocol line, appending reply lines to `out`. The serving
/// index is shared (`&`): its shard locks provide the interior mutability,
/// which is what lets the TCP front-end serve the same index from many
/// sessions at once.
fn execute(
    serving: &ShardedServingIndex,
    coalescer: Option<&Coalescer>,
    trace: &mut bool,
    line: &str,
    out: &mut Vec<String>,
) -> Result<Flow> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Flow::Continue);
    }
    let (command, rest) = line.split_once(' ').unwrap_or((line, ""));
    let rest = rest.trim();
    match command {
        "query" => {
            let parse_start = Instant::now();
            let queries = parse_batch(rest)?;
            let parse_ns = parse_start.elapsed().as_nanos() as u64;
            let n = queries.len();
            let trace = trace.then_some((parse_ns, &mut *out));
            let pairs = run_query(serving, coalescer, trace, queries)?;
            let mut by_query = vec![None; n];
            for p in pairs {
                by_query[p.query_index] = Some(p);
            }
            for slot in by_query {
                out.push(match slot {
                    Some(p) => format!("hit {} {:+.6}", p.data_index, p.inner_product),
                    None => "miss".to_string(),
                });
            }
        }
        "topk" => {
            let (k, batch) = rest.split_once(' ').ok_or_else(|| CliError::Usage {
                reason: "topk needs `topk <k> <vector>[;<vector>...]`".into(),
            })?;
            let k: usize = k.parse().map_err(|_| CliError::Usage {
                reason: format!("`{k}` is not a k"),
            })?;
            let parse_start = Instant::now();
            let queries = parse_batch(batch)?;
            let parse_ns = parse_start.elapsed().as_nanos() as u64;
            let n = queries.len();
            let trace = trace.then_some((parse_ns, &mut *out));
            let pairs = run_top_k(serving, coalescer, trace, queries, k)?;
            let mut by_query: Vec<Vec<String>> = vec![Vec::new(); n];
            for p in pairs {
                by_query[p.query_index].push(format!("{}:{:+.6}", p.data_index, p.inner_product));
            }
            for hits in by_query {
                out.push(if hits.is_empty() {
                    "none".to_string()
                } else {
                    format!("hits {}", hits.join(","))
                });
            }
        }
        "insert" => {
            let id = serving.insert(parse_vector(rest)?)?;
            out.push(format!("inserted {id}"));
        }
        "delete" => {
            let id: u64 = rest.parse().map_err(|_| CliError::Usage {
                reason: format!("`{rest}` is not an id"),
            })?;
            serving.delete(id)?;
            out.push(format!("deleted {id}"));
        }
        "stats" => {
            let stats = serving.stats();
            let shard_live: Vec<String> = serving
                .shard_lens()
                .iter()
                .map(|live| live.to_string())
                .collect();
            // Percentiles come from the windowed snapshot — traffic since the
            // previous `stats` — so they describe current behaviour, not the
            // session's lifetime average (the first `stats` covers everything
            // so far).
            let latency = serving.query_latency_window();
            out.push(format!(
                "stats family={} live={} queries={} hits={} inserts={} deletes={} rebuilds={} avg_query_ns={} shards={} shard_live={} connections={} coalesced_batches={} p50_query_ns={} p90_query_ns={} p99_query_ns={} strategy={} drift_score={:.3} migrations={}",
                serving.family(),
                serving.len(),
                stats.queries,
                stats.hits,
                stats.inserts,
                stats.deletes,
                stats.rebuilds,
                stats.avg_query_ns(),
                serving.shard_count(),
                shard_live.join(","),
                stats.connections,
                stats.coalesced_batches,
                latency.percentile(50),
                latency.percentile(90),
                latency.percentile(99),
                serving.family(),
                serving.drift_score(),
                serving.migrations(),
            ));
        }
        "plan" => {
            out.push(format!(
                "plan strategy={} drift_score={:.3} migrations={} live={}",
                serving.family(),
                serving.drift_score(),
                serving.migrations(),
                serving.len(),
            ));
        }
        "metrics" => {
            // The exposition ends with its own `# EOF\n` framing line; the
            // session loop re-appends the final newline per reply, so strip
            // one here to keep the output byte-stable.
            let text = serving.prometheus_metrics();
            out.push(text.trim_end_matches('\n').to_string());
        }
        "trace" => match rest {
            "on" => {
                *trace = true;
                out.push("trace on".to_string());
            }
            "off" => {
                *trace = false;
                out.push("trace off".to_string());
            }
            _ => {
                return Err(CliError::Usage {
                    reason: "trace needs `trace on` or `trace off`".into(),
                })
            }
        },
        "save" => {
            if rest.is_empty() {
                return Err(CliError::Usage {
                    reason: "save needs a path".into(),
                });
            }
            let bytes = serving.save(std::path::Path::new(rest))?;
            out.push(format!("saved {rest} ({bytes} bytes)"));
        }
        "help" => out.push(crate::schema::protocol_help()),
        "shutdown" => {
            out.push("bye".to_string());
            return Ok(Flow::End(SessionEnd::Shutdown));
        }
        "quit" | "exit" => {
            out.push("bye".to_string());
            return Ok(Flow::End(SessionEnd::Closed));
        }
        other => {
            let known: Vec<&str> = crate::schema::SERVE_PROTOCOL
                .iter()
                .map(|c| c.name)
                .collect();
            return Err(CliError::Usage {
                reason: format!(
                    "unknown command `{other}` (try `help`; commands are {})",
                    known.join(", ")
                ),
            });
        }
    }
    Ok(Flow::Continue)
}

/// Drives a whole serve session: reads protocol lines from `input` until EOF,
/// `quit` or `shutdown`, writing replies to `output`. Errors in individual
/// commands are reported as `error: …` lines and the session continues; a line
/// that is not valid UTF-8 is an `error:` line too (the framing is intact, the
/// session keeps going); a line longer than
/// [`SessionOptions::max_line_bytes`] ends the session after an `error:`
/// reply. Only I/O failures — including a connection read timeout — end it
/// early with an `Err`.
pub fn serve_session_with<R: BufRead, W: Write>(
    serving: &ShardedServingIndex,
    options: &SessionOptions<'_>,
    mut input: R,
    mut output: W,
) -> Result<SessionEnd> {
    writeln!(
        output,
        "serving {} index: {} live vectors, dim {}, {} shard(s) (try `help`)",
        serving.family(),
        serving.len(),
        serving.dim(),
        serving.shard_count()
    )?;
    output.flush()?;
    let mut trace = false;
    loop {
        let line = match read_line_capped(&mut input, options.max_line_bytes)? {
            LineRead::Eof => return Ok(SessionEnd::Closed),
            LineRead::Overlong => {
                writeln!(
                    output,
                    "error: line exceeds {} bytes; closing session",
                    options.max_line_bytes
                )?;
                output.flush()?;
                return Ok(SessionEnd::Closed);
            }
            LineRead::Line(bytes) => match String::from_utf8(bytes) {
                Ok(line) => line,
                Err(_) => {
                    writeln!(output, "error: line is not valid UTF-8")?;
                    output.flush()?;
                    continue;
                }
            },
        };
        let mut replies = Vec::new();
        match execute(serving, options.coalescer, &mut trace, &line, &mut replies) {
            Ok(flow) => {
                for reply in replies {
                    writeln!(output, "{reply}")?;
                }
                if let Flow::End(end) = flow {
                    output.flush()?;
                    return Ok(end);
                }
            }
            Err(e) => writeln!(output, "error: {e}")?,
        }
        output.flush()?;
    }
}

/// The classic stdin/stdout session: [`serve_session_with`] under
/// [`SessionOptions::default`] (no coalescing, generous line cap — behaviour
/// unchanged from before the TCP front-end existed).
pub fn serve_session<R: BufRead, W: Write>(
    serving: &ShardedServingIndex,
    input: R,
    output: W,
) -> Result<()> {
    serve_session_with(serving, &SessionOptions::default(), input, output).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::problem::{JoinSpec, JoinVariant};
    use ips_store::{CoalesceConfig, IndexConfig, ServingConfig, ShardedConfig};
    use std::sync::Arc;

    fn serving_with_shards(shards: usize) -> ShardedServingIndex {
        let data = vec![
            DenseVector::from(&[0.9, 0.0][..]),
            DenseVector::from(&[0.0, 0.8][..]),
        ];
        let spec = JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap();
        ShardedServingIndex::build(
            data,
            spec,
            IndexConfig::Brute,
            ShardedConfig {
                shards,
                serving: ServingConfig::default(),
            },
        )
        .unwrap()
    }

    fn run_sharded(session: &str, shards: usize) -> String {
        let index = serving_with_shards(shards);
        let mut out = Vec::new();
        serve_session(&index, session.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn run(session: &str) -> String {
        run_sharded(session, 1)
    }

    #[test]
    fn scripted_session_round_trip() {
        let out = run("query 1.0,0.0\nquery 1,0;0,1;0.1,0.1\ninsert 0.7,0.7\nquery 0.7,0.7\ndelete 2\nquery 0.7,0.7\nstats\nquit\nquery 1,0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("serving brute index: 2 live vectors, dim 2"));
        assert_eq!(lines[1], "hit 0 +0.900000");
        // Batched queries answer in order.
        assert_eq!(lines[2], "hit 0 +0.900000");
        assert_eq!(lines[3], "hit 1 +0.800000");
        assert_eq!(lines[4], "miss");
        assert_eq!(lines[5], "inserted 2");
        assert!(lines[6].starts_with("hit 2 "));
        assert_eq!(lines[7], "deleted 2");
        // With the insert gone, the best remaining partner (0.63 >= s) answers again.
        assert_eq!(lines[8], "hit 0 +0.630000");
        assert!(lines[9].starts_with("stats family=brute live=2 queries=6 hits=5"));
        assert!(lines[9].contains("inserts=1 deletes=1"));
        // A stdin session never accepted a connection nor coalesced anything.
        assert!(lines[9].contains("connections=0 coalesced_batches=0"));
        // Four query batches ran, so the latency percentiles are live.
        assert!(lines[9].contains(" p50_query_ns="), "{}", lines[9]);
        let p99 = lines[9]
            .split("p99_query_ns=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap();
        assert!(p99 > 0);
        // The adaptive-state keys close the line: the strategy mirrors the
        // family, and an uncontrolled session reports zero drift/migrations.
        assert!(
            lines[9].ends_with("strategy=brute drift_score=0.000 migrations=0"),
            "{}",
            lines[9]
        );
        // quit ends the session: the trailing query is never answered.
        assert_eq!(*lines.last().unwrap(), "bye");
    }

    #[test]
    fn topk_help_comments_and_errors() {
        let out = run("# a comment\n\ntopk 2 1.0,0.0;0.05,0.05\nhelp\ntopk nope\nbogus\ndelete x\ndelete 99\ninsert 1,2,3\nquery 0,oops\n");
        assert!(out.contains("hits 0:+0.900000"), "{out}");
        assert!(out.contains("\nnone\n"), "{out}");
        assert!(out.contains("commands:"), "{out}");
        assert!(out.contains("error: usage error: topk needs"), "{out}");
        assert!(out.contains("error: usage error: unknown command `bogus`"));
        assert!(out.contains("error: usage error: `x` is not an id"));
        assert!(out.contains("error: store error: unknown or deleted vector id 99"));
        assert!(out.contains("dimension 3 != index dimension 2"));
        assert!(out.contains("error: usage error: `oops` is not a number"));
    }

    #[test]
    fn save_from_a_session_is_loadable() {
        let dir = std::env::temp_dir().join("ips-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        let script = format!("insert 0.5,0.5\nsave {}\n", path.display());
        let out = run(&script);
        assert!(out.contains("inserted 2"));
        assert!(out.contains("saved "), "{out}");
        // A one-shard session writes the classic single-shard format.
        let reloaded = ips_store::ServingIndex::open(&path, ServingConfig::default()).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(reloaded.ids(), vec![0, 1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_session_reports_per_shard_counts_and_same_answers() {
        let session = "query 1.0,0.0\ninsert 0.7,0.7\nquery 0.7,0.7\nstats\n";
        let sharded = run_sharded(session, 3);
        assert!(
            sharded.starts_with("serving brute index: 2 live vectors, dim 2, 3 shard(s)"),
            "{sharded}"
        );
        assert!(sharded.contains("shards=3"), "{sharded}");
        // Three comma-separated per-shard live counts that sum to the live total.
        let shard_live = sharded
            .lines()
            .find(|l| l.starts_with("stats "))
            .and_then(|l| l.split("shard_live=").nth(1))
            .expect("stats line carries shard_live=");
        let counts: Vec<usize> = shard_live
            .split_whitespace()
            .next()
            .expect("shard_live= counts precede the counter keys")
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), 3);
        // The answers match the single-shard session line for line (brute
        // decomposes exactly; only the banner and stats tail differ).
        let unsharded = run(session);
        let answer_lines = |out: &str| {
            out.lines()
                .filter(|l| l.starts_with("hit ") || *l == "miss" || l.starts_with("inserted "))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(answer_lines(&sharded), answer_lines(&unsharded));
    }

    #[test]
    fn shutdown_ends_the_session_with_the_shutdown_marker() {
        let index = serving_with_shards(1);
        let mut out = Vec::new();
        let end = serve_session_with(
            &index,
            &SessionOptions::default(),
            "query 1,0\nshutdown\nquery 1,0\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert_eq!(end, SessionEnd::Shutdown);
        let text = String::from_utf8(out).unwrap();
        assert!(text.ends_with("bye\n"), "{text}");
        // The trailing query after shutdown is never answered.
        assert_eq!(text.matches("hit ").count(), 1, "{text}");
    }

    #[test]
    fn overlong_lines_end_the_session_and_non_utf8_lines_do_not() {
        let index = serving_with_shards(1);
        // Non-UTF-8 bytes: an error reply, then the session keeps answering.
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"query 1,0\n");
        input.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        input.extend_from_slice(b"query 1,0\n");
        let mut out = Vec::new();
        let end = serve_session_with(
            &index,
            &SessionOptions::default(),
            input.as_slice(),
            &mut out,
        )
        .unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error: line is not valid UTF-8"), "{text}");
        assert_eq!(text.matches("hit 0 ").count(), 2, "{text}");

        // An over-long line errors and closes (no unbounded buffering).
        let options = SessionOptions {
            max_line_bytes: 16,
            ..SessionOptions::default()
        };
        let long = format!("query {}\nquery 1,0\n", "1,0,".repeat(64));
        let mut out = Vec::new();
        let end = serve_session_with(&index, &options, long.as_bytes(), &mut out).unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error: line exceeds 16 bytes"), "{text}");
        assert!(!text.contains("hit "), "{text}");
    }

    #[test]
    fn coalesced_session_answers_match_the_direct_path() {
        let session = "query 1.0,0.0;0.0,1.0\ntopk 2 1.0,0.0\nquery 0.1,0.1\n";
        let direct = run(session);
        let index = Arc::new(serving_with_shards(1));
        let coalescer = ips_store::Coalescer::new(Arc::clone(&index), CoalesceConfig::default());
        let options = SessionOptions {
            coalescer: Some(&coalescer),
            ..SessionOptions::default()
        };
        let mut out = Vec::new();
        serve_session_with(&index, &options, session.as_bytes(), &mut out).unwrap();
        let coalesced = String::from_utf8(out).unwrap();
        assert_eq!(coalesced, direct, "coalesced answers must be bit-identical");
    }
}
