//! Windowed workload observation: folding the serving layer's cumulative
//! telemetry into per-window deltas the drift detector can compare.
//!
//! The PR-8 telemetry histograms ([`ips_obs::Telemetry`]) are
//! cumulative-forever by design — recording is a few relaxed atomic adds and
//! never resets. A drift detector, though, must answer "what does the workload
//! look like *now*", not "averaged over the server's lifetime": a query-norm
//! shift an hour into a run is invisible in lifetime aggregates. The
//! [`TelemetryWindow`] therefore keeps the previous snapshot of every
//! histogram and counter it watches and, on each [`TelemetryWindow::advance`],
//! publishes the [`HistogramSnapshot::diff`] against it — exactly the samples
//! recorded since the last check.

use ips_obs::{HistogramSnapshot, Observable};
use ips_store::{ServingStats, ShardedServingIndex};

/// One window's worth of observed workload, folded from the telemetry
/// histograms and serving counters — the sensor reading of the control loop.
///
/// All values describe the interval since the previous
/// [`TelemetryWindow::advance`] call (except [`ObservedWorkload::live`], a
/// point-in-time gauge).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedWorkload {
    /// Query vectors observed (one norm sample is recorded per query).
    pub queries: u64,
    /// Engine passes (query batches) answered.
    pub batches: u64,
    /// Matches reported.
    pub hits: u64,
    /// Mean Euclidean query norm (exact: histogram sums are exact even
    /// though buckets quantize).
    pub mean_query_norm: f64,
    /// Upper bound on the largest query norm (the top non-empty bucket's
    /// bound — an over-, never under-, estimate).
    pub max_query_norm: f64,
    /// Mean queries per engine pass.
    pub mean_batch_size: f64,
    /// Candidates the reduced-precision kernels examined (0 on the exact
    /// scoring path, which tallies nothing).
    pub candidates: u64,
    /// Candidates pruned by the quantized bound.
    pub pruned: u64,
    /// Candidates exactly rescored after pruning.
    pub rescored: u64,
    /// Vectors inserted.
    pub inserts: u64,
    /// Vectors deleted.
    pub deletes: u64,
    /// Live vectors at the end of the window.
    pub live: usize,
}

impl ObservedWorkload {
    /// Fraction of observed queries that reported a match (0.0 when the
    /// window saw no queries).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Mutations per observed query — how write-heavy the window was.
    pub fn mutation_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.inserts + self.deletes) as f64 / self.queries as f64
        }
    }
}

/// Baselines for the windowed fold: the previous snapshot of every cumulative
/// histogram and counter [`TelemetryWindow::advance`] diffs against.
#[derive(Debug, Default)]
pub struct TelemetryWindow {
    norms: HistogramSnapshot,
    batch_sizes: HistogramSnapshot,
    candidates: HistogramSnapshot,
    pruned: HistogramSnapshot,
    rescored: HistogramSnapshot,
    latency: HistogramSnapshot,
    stats: ServingStats,
}

impl TelemetryWindow {
    /// A window whose first [`TelemetryWindow::advance`] covers the index's
    /// whole telemetry lifetime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds everything recorded since the previous call into one
    /// [`ObservedWorkload`] and advances the baselines.
    ///
    /// Snapshots are taken without any lock on the serving index; under
    /// concurrent recording a window can tear by a sample (the diffs saturate
    /// rather than wrap), which a drift detector — comparing distributions,
    /// not exact counts — absorbs.
    pub fn advance(&mut self, index: &ShardedServingIndex) -> ObservedWorkload {
        let telemetry = index.telemetry();
        let snap = |o: Observable| telemetry.observable(o).snapshot();
        let norms = snap(Observable::QueryNormMilli);
        let batch_sizes = snap(Observable::BatchSize);
        let candidates = snap(Observable::Candidates);
        let pruned = snap(Observable::Pruned);
        let rescored = snap(Observable::Rescored);
        let latency = telemetry.query_latency().snapshot();
        let stats = index.stats();

        let norm_window = norms.diff(&self.norms);
        let batch_window = batch_sizes.diff(&self.batch_sizes);
        let observed = ObservedWorkload {
            queries: norm_window.count,
            batches: latency.diff(&self.latency).count,
            hits: stats.hits.saturating_sub(self.stats.hits),
            mean_query_norm: norm_window.mean() / 1000.0,
            max_query_norm: norm_window.max_bound() as f64 / 1000.0,
            mean_batch_size: batch_window.mean(),
            candidates: candidates.diff(&self.candidates).sum,
            pruned: pruned.diff(&self.pruned).sum,
            rescored: rescored.diff(&self.rescored).sum,
            inserts: stats.inserts.saturating_sub(self.stats.inserts),
            deletes: stats.deletes.saturating_sub(self.stats.deletes),
            live: index.len(),
        };
        self.norms = norms;
        self.batch_sizes = batch_sizes;
        self.candidates = candidates;
        self.pruned = pruned;
        self.rescored = rescored;
        self.latency = latency;
        self.stats = stats;
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::problem::{JoinSpec, JoinVariant};
    use ips_linalg::DenseVector;
    use ips_store::{IndexConfig, ShardedConfig};

    fn index() -> ShardedServingIndex {
        let data = vec![
            DenseVector::from(&[0.9, 0.0][..]),
            DenseVector::from(&[0.0, 0.8][..]),
        ];
        let spec = JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap();
        ShardedServingIndex::build(data, spec, IndexConfig::Brute, ShardedConfig::default())
            .unwrap()
    }

    #[test]
    fn windows_cover_disjoint_intervals() {
        let index = index();
        let mut window = TelemetryWindow::new();
        let q = vec![DenseVector::from(&[1.0, 0.0][..])];
        index.query(&q).unwrap();
        index.query(&q).unwrap();
        let first = window.advance(&index);
        assert_eq!(first.queries, 2);
        assert_eq!(first.batches, 2);
        assert_eq!(first.hits, 2);
        assert!((first.mean_query_norm - 1.0).abs() < 0.01);
        assert!(
            first.max_query_norm >= 1.0,
            "max bound never underestimates"
        );
        assert_eq!(first.live, 2);
        // An idle window is empty; the lifetime aggregates clearly are not.
        let idle = window.advance(&index);
        assert_eq!(idle.queries, 0);
        assert_eq!(idle.hits, 0);
        assert_eq!(idle.mean_query_norm, 0.0);
        // Mutations land in the window they happen in.
        index.insert(DenseVector::from(&[0.1, 0.1][..])).unwrap();
        index.delete(0).unwrap();
        index.query(&q).unwrap();
        let third = window.advance(&index);
        assert_eq!((third.inserts, third.deletes), (1, 1));
        assert_eq!(third.queries, 1);
        assert_eq!(third.hits, 0, "the best partner was deleted");
        assert_eq!(third.live, 2);
        assert_eq!(third.hit_rate(), 0.0);
        assert_eq!(third.mutation_rate(), 2.0);
    }
}
