//! The closed-loop controller: sense → compare → re-plan → swap.
//!
//! Each [`AdaptiveController::check`] folds the telemetry recorded since the
//! last check into an [`ObservedWorkload`], synthesises fresh
//! [`WorkloadStats`] from it, and scores the drift against the statistics the
//! live plan was costed on ([`WorkloadStats::drift_from`]). Drift must exceed
//! the threshold for [`AdaptiveConfig::hysteresis_checks`] *consecutive*
//! checks before the planner is consulted — one anomalous window (a traffic
//! blip, a teared snapshot) never triggers a multi-second rebuild. When the
//! planner's fresh choice differs from the structure currently serving, the
//! controller calls [`ShardedServingIndex::migrate_to`], which builds the
//! replacement in the background of the serving traffic and swaps it in
//! atomically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use ips_core::planner::{self, CostModel, JoinPlan, JoinPlanner, PlannerConfig, WorkloadStats};
use ips_core::problem::JoinSpec;
use ips_linalg::DenseVector;
use ips_store::{IndexConfig, MigrationReport, Result, ShardedServingIndex, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::observe::{ObservedWorkload, TelemetryWindow};

/// Tuning of the adaptive control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Drift score (worst relative change across the watched workload
    /// dimensions, in `[0, 1]`) at or above which a window counts toward
    /// triggering a re-plan.
    pub drift_threshold: f64,
    /// Consecutive drifted windows required before the planner runs. The
    /// hysteresis: a single anomalous window never migrates.
    pub hysteresis_checks: u32,
    /// Windows with fewer observed queries than this are skipped outright —
    /// too little signal to compare distributions.
    pub min_window_queries: u64,
    /// Sampling and per-strategy parameters for planner re-entry. Seeded from
    /// the serving index's live configuration by [`AdaptiveController::new`].
    pub planner: PlannerConfig,
    /// Cost constants the re-planning decision is scored with.
    pub model: CostModel,
    /// Seed for the mini-join sampling inside stats synthesis.
    pub seed: u64,
    /// Seconds between checks when the controller runs on its own thread
    /// ([`AdaptiveController::spawn`]).
    pub drift_check_secs: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            drift_threshold: 0.3,
            hysteresis_checks: 2,
            min_window_queries: 16,
            planner: PlannerConfig::default(),
            model: CostModel::default(),
            seed: 0xAD_AF7,
            drift_check_secs: 5,
        }
    }
}

/// What one [`AdaptiveController::check`] concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlDecision {
    /// The window held too few queries to compare distributions; nothing was
    /// scored and the hysteresis streak is untouched.
    InsufficientWindow {
        /// Queries the window did hold.
        queries: u64,
    },
    /// First sufficient window: its statistics became the drift baseline.
    BaselineEstablished,
    /// Drift below threshold; the streak was reset.
    Steady {
        /// The scored drift.
        drift: f64,
    },
    /// Drift at or above threshold, but the hysteresis streak has not yet
    /// reached [`AdaptiveConfig::hysteresis_checks`].
    Pending {
        /// The scored drift.
        drift: f64,
        /// Consecutive drifted windows so far.
        streak: u32,
    },
    /// The planner ran on the fresh statistics and re-chose the structure
    /// already serving — the baseline was re-anchored, nothing was rebuilt.
    Replanned {
        /// The scored drift.
        drift: f64,
        /// The (re-confirmed) winning strategy.
        choice: planner::Strategy,
    },
    /// The planner chose a different structure and the index migrated to it.
    Migrated {
        /// The scored drift.
        drift: f64,
        /// What the migration did.
        report: MigrationReport,
    },
}

/// The drift-detecting, re-planning controller wrapped around one
/// [`ShardedServingIndex`].
///
/// Drive it manually with [`AdaptiveController::check`] (deterministic — what
/// the tests and benches do) or hand it its own thread with
/// [`AdaptiveController::spawn`] (what `ips serve adaptive=on` does).
pub struct AdaptiveController {
    index: Arc<ShardedServingIndex>,
    config: AdaptiveConfig,
    planner: JoinPlanner,
    window: TelemetryWindow,
    baseline: Option<WorkloadStats>,
    streak: u32,
    rng: StdRng,
}

impl AdaptiveController {
    /// Wraps `index` with a controller.
    ///
    /// The planner's per-family parameters start from the index's live
    /// configuration (so a migration *away* from a tuned family can migrate
    /// *back* to the identical structure), and its engine/scoring options are
    /// copied from the index's serving configuration so every candidate
    /// strategy is costed the way it would actually run.
    pub fn new(index: Arc<ShardedServingIndex>, mut config: AdaptiveConfig) -> Self {
        match index.index_config() {
            IndexConfig::Brute => {}
            IndexConfig::Alsh(params) => config.planner.alsh = params,
            IndexConfig::Symmetric(params) => config.planner.symmetric = params,
            IndexConfig::Sketch {
                config: sketch,
                leaf_size,
            } => {
                config.planner.sketch = sketch;
                config.planner.sketch_leaf_size = leaf_size;
            }
        }
        let serving = index.serving_config();
        config.planner.engine = serving.engine;
        config.planner.scoring = serving.scoring;
        let planner = JoinPlanner {
            config: config.planner,
            model: config.model,
        };
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            index,
            config,
            planner,
            window: TelemetryWindow::new(),
            baseline: None,
            streak: 0,
            rng,
        }
    }

    /// The index this controller steers.
    pub fn index(&self) -> &Arc<ShardedServingIndex> {
        &self.index
    }

    /// The configuration the controller runs with.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Runs one control iteration: fold the telemetry window, score drift
    /// against the baseline, and — after enough consecutive drifted windows —
    /// re-plan and migrate.
    ///
    /// The scored drift is published to the index
    /// ([`ShardedServingIndex::set_drift_score`]) on every scored window, so
    /// the `stats`/`plan` protocol replies always show the latest reading.
    pub fn check(&mut self) -> Result<ControlDecision> {
        let observed = self.window.advance(&self.index);
        if observed.queries < self.config.min_window_queries {
            return Ok(ControlDecision::InsufficientWindow {
                queries: observed.queries,
            });
        }
        let entries = self.index.live_entries();
        let spec = self.index.spec();
        let fresh = observed_stats(
            &mut self.rng,
            &entries,
            &observed,
            spec,
            self.planner.config.sample_data,
            self.planner.config.sample_queries,
        )?;
        let Some(baseline) = &self.baseline else {
            self.index.set_drift_score(0.0);
            self.baseline = Some(fresh);
            return Ok(ControlDecision::BaselineEstablished);
        };
        let drift = fresh.drift_from(baseline);
        self.index.set_drift_score(drift);
        if drift < self.config.drift_threshold {
            self.streak = 0;
            return Ok(ControlDecision::Steady { drift });
        }
        self.streak += 1;
        if self.streak < self.config.hysteresis_checks {
            return Ok(ControlDecision::Pending {
                drift,
                streak: self.streak,
            });
        }
        // Enough consecutive drifted windows: consult the planner on the
        // fresh statistics and re-anchor the baseline on them either way —
        // the decision (migrate or stay) now reflects this workload.
        self.streak = 0;
        let plan = self.planner.plan_from_stats(fresh.clone(), spec);
        self.baseline = Some(fresh);
        let target = plan_index_config(&plan);
        if target == self.index.index_config() {
            return Ok(ControlDecision::Replanned {
                drift,
                choice: plan.choice,
            });
        }
        let report = self.index.migrate_to(target)?;
        Ok(ControlDecision::Migrated { drift, report })
    }

    /// Moves the controller onto its own thread, checking every
    /// [`AdaptiveConfig::drift_check_secs`] until the handle is stopped or
    /// dropped.
    ///
    /// Migrations and errors emit one structured line each on stderr, next to
    /// the serving layer's slow-query log.
    pub fn spawn(self) -> ControllerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let period = Duration::from_secs(self.config.drift_check_secs.max(1));
        let join = thread::spawn(move || {
            let mut controller = self;
            loop {
                // Sleep in short slices so stop() returns promptly even with
                // a long check period.
                let mut slept = Duration::ZERO;
                while slept < period && !flag.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(25).min(period - slept);
                    thread::sleep(slice);
                    slept += slice;
                }
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                match controller.check() {
                    Ok(ControlDecision::Migrated { drift, report }) => eprintln!(
                        "adaptive migrate drift={drift:.3} from={} to={} entries={} \
                         reconciled={} build_ns={} swap_ns={}",
                        report.from,
                        report.to,
                        report.entries,
                        report.reconciled,
                        report.build_ns,
                        report.swap_ns,
                    ),
                    Ok(_) => {}
                    Err(e) => eprintln!("adaptive check failed: {e}"),
                }
            }
        });
        ControllerHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle to a controller running on its own thread
/// ([`AdaptiveController::spawn`]). Stops and joins the thread when dropped.
#[derive(Debug)]
pub struct ControllerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ControllerHandle {
    /// Stops the control loop and joins its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Maps a resolved [`JoinPlan`] onto the serving layer's structure
/// configuration — the same mapping `IndexBuilder`'s `algo=auto` arm applies
/// at build time.
pub fn plan_index_config(plan: &JoinPlan) -> IndexConfig {
    match plan.choice {
        planner::Strategy::BruteForce => IndexConfig::Brute,
        planner::Strategy::Alsh => IndexConfig::Alsh(plan.alsh_params),
        planner::Strategy::Symmetric => IndexConfig::Symmetric(plan.symmetric_params),
        planner::Strategy::Sketch => IndexConfig::Sketch {
            config: plan.sketch_config,
            leaf_size: plan.sketch_leaf_size,
        },
    }
}

/// Synthesises planner-ready [`WorkloadStats`] from the live entry set and a
/// telemetry window.
///
/// The data side is exact — norms over every live vector. The query side is
/// reconstructed from what the telemetry retains: the mean query norm is
/// exact (histogram sums are exact), the max is the top occupied bucket's
/// bound. For the mini-join that measures the promise/output densities the
/// original query vectors are gone, so sampled *data* directions rescaled to
/// the observed mean query norm stand in for them — the queries-resemble-data
/// proxy. The cost model's strategy ranking is driven mostly by the norm
/// scale (through the densities and the ALSH query radius), which the proxy
/// preserves; it is exactly the quantity whose drift triggered the re-plan.
pub fn observed_stats<R: Rng + ?Sized>(
    rng: &mut R,
    entries: &[(u64, DenseVector)],
    observed: &ObservedWorkload,
    spec: JoinSpec,
    sample_data: usize,
    sample_queries: usize,
) -> Result<WorkloadStats> {
    if entries.is_empty() {
        return Err(StoreError::InvalidParameter {
            name: "entries",
            reason: "cannot synthesise workload statistics over an empty index".into(),
        });
    }
    let dim = entries[0].1.dim();
    let norms: Vec<f64> = entries.iter().map(|(_, v)| v.norm()).collect();
    let max_data_norm = norms.iter().cloned().fold(0.0, f64::max);
    let mean_data_norm = norms.iter().sum::<f64>() / norms.len() as f64;
    let mean_query_norm = observed.mean_query_norm;
    let max_query_norm = observed.max_query_norm.max(mean_query_norm);

    let sample = |rng: &mut R, count: usize| -> Vec<usize> {
        if entries.len() <= count {
            (0..entries.len()).collect()
        } else {
            (0..count)
                .map(|_| rng.gen_range(0..entries.len()))
                .collect()
        }
    };
    let data_sample = sample(rng, sample_data);
    // Synthetic queries: sampled data directions rescaled to the observed
    // mean query norm (zero vectors stay zero).
    let queries: Vec<DenseVector> = sample(rng, sample_queries)
        .into_iter()
        .map(|i| {
            let v = &entries[i].1;
            let norm = v.norm();
            if norm < 1e-12 {
                v.clone()
            } else {
                v.scaled(mean_query_norm / norm)
            }
        })
        .collect();
    let mut sampled_inner_products = Vec::with_capacity(data_sample.len() * queries.len());
    for &i in &data_sample {
        for q in &queries {
            sampled_inner_products.push(entries[i].1.dot(q)?);
        }
    }
    let (mut promise, mut output) = (0usize, 0usize);
    for &ip in &sampled_inner_products {
        if spec.satisfies_promise(ip) {
            promise += 1;
        }
        if spec.acceptable(ip) {
            output += 1;
        }
    }
    let pairs = sampled_inner_products.len().max(1) as f64;
    Ok(WorkloadStats {
        data_count: entries.len(),
        query_count: observed.queries as usize,
        dim,
        max_data_norm,
        mean_data_norm,
        max_query_norm,
        mean_query_norm,
        promise_density: promise as f64 / pairs,
        output_density: output as f64 / pairs,
        sampled_inner_products,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_core::asymmetric::AlshParams;
    use ips_core::problem::{JoinSpec, JoinVariant};
    use ips_store::{IndexFamily, ShardedConfig};

    fn spec() -> JoinSpec {
        JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap()
    }

    fn data(n: usize, dim: usize, scale: f64) -> Vec<DenseVector> {
        (0..n)
            .map(|i| {
                let mut v = vec![0.1 * scale; dim];
                v[i % dim] = scale;
                DenseVector::from(&v[..])
            })
            .collect()
    }

    fn test_config() -> AdaptiveConfig {
        AdaptiveConfig {
            min_window_queries: 4,
            hysteresis_checks: 2,
            ..AdaptiveConfig::default()
        }
    }

    fn drive(index: &ShardedServingIndex, norm: f64, count: usize) {
        let dim = 4;
        let queries: Vec<DenseVector> = (0..count)
            .map(|i| {
                let mut v = vec![0.0; dim];
                v[i % dim] = norm;
                DenseVector::from(&v[..])
            })
            .collect();
        index.query(&queries).unwrap();
    }

    #[test]
    fn drift_walks_through_hysteresis_and_migrates_to_the_planned_family() {
        // A tiny index deliberately built on the wrong structure: at 16
        // vectors the cost model prices ALSH's table probes far above the
        // cheap alternatives, so the first re-plan must migrate off it. The
        // declared query radius covers both traffic phases (ALSH rejects
        // out-of-radius queries outright).
        let alsh = AlshParams {
            bits_per_table: 4,
            tables: 8,
            query_radius: 4.0,
            ..AlshParams::default()
        };
        let index = Arc::new(
            ShardedServingIndex::build(
                data(16, 4, 0.7),
                spec(),
                IndexConfig::Alsh(alsh),
                ShardedConfig::default(),
            )
            .unwrap(),
        );
        let mut controller = AdaptiveController::new(Arc::clone(&index), test_config());
        assert_eq!(
            controller.config().planner.alsh,
            alsh,
            "params seeded from the live index"
        );

        // Idle window: nothing to compare.
        assert_eq!(
            controller.check().unwrap(),
            ControlDecision::InsufficientWindow { queries: 0 }
        );
        // First sufficient window locks the baseline.
        drive(&index, 1.0, 8);
        assert_eq!(
            controller.check().unwrap(),
            ControlDecision::BaselineEstablished
        );
        // Same traffic again: steady, no streak.
        drive(&index, 1.0, 8);
        match controller.check().unwrap() {
            ControlDecision::Steady { drift } => assert!(drift < 0.3, "drift {drift}"),
            other => panic!("expected steady, got {other:?}"),
        }
        assert!(index.drift_score() < 0.3);
        // The workload shifts: query norms triple. One drifted window is
        // hysteresis-pending, the second triggers the planner.
        drive(&index, 3.0, 8);
        match controller.check().unwrap() {
            ControlDecision::Pending { drift, streak } => {
                assert!(drift >= 0.3, "drift {drift}");
                assert_eq!(streak, 1);
                assert_eq!(
                    index.family(),
                    IndexFamily::Alsh,
                    "hysteresis holds the swap back"
                );
            }
            other => panic!("expected pending, got {other:?}"),
        }
        drive(&index, 3.0, 8);
        let report = match controller.check().unwrap() {
            ControlDecision::Migrated { drift, report } => {
                assert!(drift >= 0.3);
                report
            }
            other => panic!("expected migration, got {other:?}"),
        };
        assert_eq!(report.from, IndexFamily::Alsh);
        assert_ne!(
            report.to,
            IndexFamily::Alsh,
            "must migrate off the drifted structure"
        );
        assert_eq!(report.entries, 16);
        assert_eq!(index.family(), report.to);
        assert_eq!(index.migrations(), 1);
        assert!(
            index.drift_score() >= 0.3,
            "gauge keeps the triggering score"
        );

        // The baseline re-anchored on the post-shift workload: the same
        // traffic is steady again, not a migration loop.
        drive(&index, 3.0, 8);
        match controller.check().unwrap() {
            ControlDecision::Steady { drift } => assert!(drift < 0.3, "drift {drift}"),
            other => panic!("expected steady after re-anchor, got {other:?}"),
        }
    }

    #[test]
    fn replanning_onto_the_current_family_swaps_nothing() {
        // Start on the structure the planner prefers for this workload (its
        // own default sketch configuration): the drift-triggered re-plan
        // re-chooses it and must not rebuild anything.
        let defaults = PlannerConfig::default();
        let index = Arc::new(
            ShardedServingIndex::build(
                data(16, 4, 0.7),
                spec(),
                IndexConfig::Sketch {
                    config: defaults.sketch,
                    leaf_size: defaults.sketch_leaf_size,
                },
                ShardedConfig::default(),
            )
            .unwrap(),
        );
        let mut controller = AdaptiveController::new(Arc::clone(&index), test_config());
        drive(&index, 1.0, 8);
        controller.check().unwrap();
        drive(&index, 3.0, 8);
        controller.check().unwrap();
        drive(&index, 3.0, 8);
        match controller.check().unwrap() {
            ControlDecision::Replanned { choice, .. } => {
                assert_eq!(choice, planner::Strategy::Sketch)
            }
            other => panic!("expected replan, got {other:?}"),
        }
        assert_eq!(index.migrations(), 0);
    }

    #[test]
    fn spawned_controller_stops_cleanly() {
        let index = Arc::new(
            ShardedServingIndex::build(
                data(8, 4, 0.7),
                spec(),
                IndexConfig::Brute,
                ShardedConfig::default(),
            )
            .unwrap(),
        );
        let handle = AdaptiveController::new(index, AdaptiveConfig::default()).spawn();
        handle.stop();
    }

    #[test]
    fn synthesised_stats_mirror_the_observed_window() {
        let entries: Vec<(u64, DenseVector)> = data(6, 4, 0.5)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let observed = ObservedWorkload {
            queries: 10,
            batches: 2,
            hits: 5,
            mean_query_norm: 2.0,
            max_query_norm: 2.5,
            mean_batch_size: 5.0,
            candidates: 0,
            pruned: 0,
            rescored: 0,
            inserts: 0,
            deletes: 0,
            live: 6,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let stats = observed_stats(&mut rng, &entries, &observed, spec(), 48, 24).unwrap();
        assert_eq!(stats.data_count, 6);
        assert_eq!(stats.query_count, 10);
        assert_eq!(stats.dim, 4);
        assert!((stats.mean_query_norm - 2.0).abs() < 1e-9);
        assert!((stats.max_query_norm - 2.5).abs() < 1e-9);
        // Every synthetic query carries the observed mean norm.
        assert_eq!(stats.sampled_inner_products.len(), 6 * 6);
        assert!(stats.promise_density >= stats.output_density);
        let err = observed_stats(&mut rng, &[], &observed, spec(), 48, 24);
        assert!(err.is_err(), "empty entry set must be rejected");
    }
}
