//! # ips-adapt
//!
//! Closed-loop adaptive serving: the subsystem that keeps a long-lived
//! serving index on the strategy the *current* workload would have been
//! planned onto, not the one it happened to be built with.
//!
//! The paper's central observation is that no single strategy dominates —
//! which structure wins depends on measurable workload statistics. The
//! `ips-core` planner exploits that at build time; this crate closes the loop
//! at *serve* time:
//!
//! 1. **Sense** — [`TelemetryWindow`] folds the serving layer's cumulative
//!    telemetry (query norms, batch sizes, candidate/prune/rescore tallies,
//!    mutation counters) into per-window deltas via
//!    [`ips_obs::HistogramSnapshot::diff`], yielding an [`ObservedWorkload`].
//! 2. **Compare** — [`controller::observed_stats`] synthesises fresh
//!    [`ips_core::planner::WorkloadStats`] from the window plus the live
//!    entry set, and `WorkloadStats::drift_from` scores them against the
//!    statistics the live plan was costed on.
//! 3. **Re-plan** — after the drift threshold is exceeded for enough
//!    *consecutive* windows (hysteresis), [`ips_core::JoinPlanner`] re-runs
//!    on the fresh statistics.
//! 4. **Swap** — if the planner now prefers a different structure,
//!    [`ips_store::ShardedServingIndex::migrate_to`] builds the replacement
//!    off the lock path and swaps it in atomically, preserving external ids,
//!    counters, and in-flight coalesced batches.
//!
//! [`AdaptiveController::check`] runs one sense→compare→re-plan→swap
//! iteration deterministically; [`AdaptiveController::spawn`] runs it
//! periodically on a background thread, which is what `ips serve adaptive=on`
//! does.
//!
//! ```
//! use std::sync::Arc;
//! use ips_adapt::{AdaptiveConfig, AdaptiveController, ControlDecision};
//! use ips_core::problem::{JoinSpec, JoinVariant};
//! use ips_linalg::DenseVector;
//! use ips_store::{IndexConfig, ShardedConfig, ShardedServingIndex};
//!
//! let index = Arc::new(
//!     ShardedServingIndex::build(
//!         vec![
//!             DenseVector::from(&[0.9, 0.0][..]),
//!             DenseVector::from(&[0.0, 0.8][..]),
//!         ],
//!         JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap(),
//!         IndexConfig::Brute,
//!         ShardedConfig::default(),
//!     )
//!     .unwrap(),
//! );
//! let mut controller = AdaptiveController::new(Arc::clone(&index), AdaptiveConfig::default());
//! // No traffic yet: the window is empty, nothing is scored.
//! assert_eq!(
//!     controller.check().unwrap(),
//!     ControlDecision::InsufficientWindow { queries: 0 }
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod observe;

pub use controller::{
    plan_index_config, AdaptiveConfig, AdaptiveController, ControlDecision, ControllerHandle,
};
pub use observe::{ObservedWorkload, TelemetryWindow};
