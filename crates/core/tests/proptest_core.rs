//! Property-based tests for the core problem definitions and baselines.

use ips_core::brute::{brute_force_join, brute_force_mips};
use ips_core::problem::{evaluate_join, negate_queries, JoinSpec, JoinVariant};
use ips_linalg::DenseVector;
use proptest::prelude::*;

fn vectors(count: usize, dim: usize) -> impl Strategy<Value = Vec<DenseVector>> {
    prop::collection::vec(
        prop::collection::vec(-1.0f64..1.0, dim).prop_map(DenseVector::new),
        count,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_spec_thresholds_are_consistent(s in 0.01f64..5.0, c in 0.01f64..1.0) {
        let spec = JoinSpec::new(s, c, JoinVariant::Unsigned).unwrap();
        prop_assert!(spec.relaxed_threshold() <= spec.threshold + 1e-12);
        // Anything satisfying the promise is also acceptable.
        for ip in [-2.0 * s, -s, -c * s, 0.0, c * s, s, 2.0 * s] {
            if spec.satisfies_promise(ip) {
                prop_assert!(spec.acceptable(ip));
            }
        }
    }

    #[test]
    fn brute_force_join_output_is_always_valid(
        data in vectors(12, 6),
        queries in vectors(8, 6),
        s in 0.05f64..1.5,
    ) {
        let spec = JoinSpec::exact(s, JoinVariant::Unsigned).unwrap();
        let pairs = brute_force_join(&data, &queries, &spec).unwrap();
        // The exact join achieves recall 1 and validity by definition.
        let (recall, valid) = evaluate_join(&data, &queries, &spec, &pairs).unwrap();
        prop_assert_eq!(recall, 1.0);
        prop_assert!(valid);
        // At most one pair per query.
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            prop_assert!(seen.insert(p.query_index));
        }
    }

    #[test]
    fn signed_mips_on_negated_query_flips_sign(
        data in vectors(10, 5),
        query in prop::collection::vec(-1.0f64..1.0, 5).prop_map(DenseVector::new),
    ) {
        // max_p pᵀ(−q) = −min_p pᵀq: check through the unsigned spec that the best
        // absolute inner product is invariant under query negation.
        let spec = JoinSpec::exact(1e-9, JoinVariant::Unsigned).unwrap();
        let best = brute_force_mips(&data, &query, &spec).unwrap();
        let best_neg = brute_force_mips(&data, &query.negated(), &spec).unwrap();
        match (best, best_neg) {
            (Some(a), Some(b)) => {
                prop_assert!((a.inner_product.abs() - b.inner_product.abs()).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "negating the query changed answer existence"),
        }
    }

    #[test]
    fn negate_queries_is_an_involution(queries in vectors(6, 4)) {
        let double = negate_queries(&negate_queries(&queries));
        for (a, b) in queries.iter().zip(double.iter()) {
            for i in 0..a.dim() {
                prop_assert!((a[i] - b[i]).abs() < 1e-12);
            }
        }
    }
}
