//! Top-`k` search and joins.
//!
//! The paper's problem definition (footnote 1) notes that "from an upper bound side, it
//! is common to limit the number of occurrences of each tuple in a join result to a
//! given number k". This module provides that variant: instead of a single partner per
//! query, up to `k` partners are reported, every one of them clearing the relaxed
//! threshold `cs` of the spec. The exact scan is the reference implementation; the
//! LSH indexes of Sections 4.1–4.2 implement the same interface by re-scoring their
//! candidate sets, so recall-vs-`k` curves can be measured for the recommender-style
//! workloads that motivated MIPS in the first place.

use crate::asymmetric::AlshMipsIndex;
use crate::error::Result;
use crate::mips::{BruteForceMipsIndex, MipsIndex, SearchResult};
use crate::problem::{JoinSpec, MatchPair};
use crate::symmetric::SymmetricLshMips;
use ips_linalg::DenseVector;

/// A MIPS index that can report several partners per query.
///
/// Every returned result clears the spec's relaxed threshold `cs`, results are sorted by
/// decreasing similarity value (signed inner product or absolute value, depending on the
/// variant), and at most `k` results are returned. Approximate implementations may
/// return fewer than `k` even when `k` acceptable partners exist — that is the recall
/// the experiments measure.
pub trait TopKMipsIndex: MipsIndex {
    /// Returns up to `k` acceptable partners for the query, best first.
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>>;
}

/// Shared references forward, so [`crate::engine::JoinEngine`] can run top-`k` joins
/// over a borrowed index just as it runs single-partner joins.
impl<I: TopKMipsIndex + ?Sized> TopKMipsIndex for &I {
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>> {
        (**self).search_top_k(query, k)
    }
}

/// Sorts candidate results by the spec's similarity value (descending), keeps only
/// acceptable ones, and truncates to `k`.
fn finalize(mut hits: Vec<SearchResult>, spec: &JoinSpec, k: usize) -> Vec<SearchResult> {
    hits.retain(|h| spec.acceptable(h.inner_product));
    hits.sort_by(|a, b| {
        spec.variant
            .value(b.inner_product)
            .partial_cmp(&spec.variant.value(a.inner_product))
            .expect("inner products are finite")
            .then(a.data_index.cmp(&b.data_index))
    });
    hits.truncate(k);
    hits
}

/// Scores every index in `candidates` against the query and applies [`finalize`].
fn rescore_candidates(
    data: &[DenseVector],
    candidates: &[usize],
    query: &DenseVector,
    spec: &JoinSpec,
    k: usize,
) -> Result<Vec<SearchResult>> {
    let mut hits = Vec::with_capacity(candidates.len());
    for &i in candidates {
        let ip = data[i].dot(query)?;
        hits.push(SearchResult {
            data_index: i,
            inner_product: ip,
        });
    }
    Ok(finalize(hits, spec, k))
}

impl TopKMipsIndex for BruteForceMipsIndex {
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>> {
        let all: Vec<usize> = (0..self.len()).collect();
        rescore_candidates(self.data(), &all, query, &self.spec(), k)
    }
}

impl TopKMipsIndex for AlshMipsIndex {
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>> {
        let candidates = self.candidate_indices(query)?;
        let spec = self.spec();
        if let (Some(quant), true) = (self.quant_tile(), k > 0) {
            // Conservative quantized pruning keeps every exact top-k member
            // (see `crate::kernel`), so finalizing the survivors is identical.
            let survivors = crate::kernel::top_k_candidates_quantized(
                self.data(),
                quant,
                &candidates,
                query,
                &spec,
                k,
                self.kernel_counters(),
            )?;
            return rescore_candidates(self.data(), &survivors, query, &spec, k);
        }
        rescore_candidates(self.data(), &candidates, query, &spec, k)
    }
}

impl TopKMipsIndex for SymmetricLshMips {
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>> {
        let candidates = self.candidate_indices(query)?;
        let spec = self.spec();
        if let (Some(quant), true) = (self.quant_tile(), k > 0) {
            let survivors = crate::kernel::top_k_candidates_quantized(
                self.data(),
                quant,
                &candidates,
                query,
                &spec,
                k,
                self.kernel_counters(),
            )?;
            return rescore_candidates(self.data(), &survivors, query, &spec, k);
        }
        rescore_candidates(self.data(), &candidates, query, &spec, k)
    }
}

/// The sketch structure recovers a *single* candidate per query (the prefix-tree walk
/// of Section 4.3 has no ranked candidate set), so its top-`k` is the top-1 result —
/// an approximate implementation is allowed to return fewer than `k` partners, and
/// this one always returns at most one. The serving layer documents this when a
/// sketch-family index answers `topk`.
impl TopKMipsIndex for crate::mips::SketchMipsAdapter {
    fn search_top_k(&self, query: &DenseVector, k: usize) -> Result<Vec<SearchResult>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        Ok(self.search(query)?.into_iter().collect())
    }
}

/// Runs a top-`k` join through any [`TopKMipsIndex`]: up to `k` pairs per query, each
/// clearing the relaxed threshold `cs`.
pub fn top_k_join<I: TopKMipsIndex>(
    index: &I,
    queries: &[DenseVector],
    k: usize,
) -> Result<Vec<MatchPair>> {
    let mut out = Vec::new();
    for (j, q) in queries.iter().enumerate() {
        for hit in index.search_top_k(q, k)? {
            out.push(MatchPair {
                data_index: hit.data_index,
                query_index: j,
                inner_product: hit.inner_product,
            });
        }
    }
    Ok(out)
}

/// Recall of an approximate top-`k` result against the exact one: the fraction of the
/// exact top-`k` data indices that the approximate result also reports. Returns 1 when
/// the exact result is empty.
pub fn top_k_recall(exact: &[SearchResult], approximate: &[SearchResult]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let approx: std::collections::HashSet<usize> =
        approximate.iter().map(|h| h.data_index).collect();
    let hit = exact
        .iter()
        .filter(|h| approx.contains(&h.data_index))
        .count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymmetric::AlshParams;
    use crate::problem::JoinVariant;
    use crate::symmetric::SymmetricParams;
    use ips_linalg::random::{random_ball_vector, random_unit_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x70_4B)
    }

    fn spec(s: f64, c: f64) -> JoinSpec {
        JoinSpec::new(s, c, JoinVariant::Signed).unwrap()
    }

    #[test]
    fn brute_force_top_k_is_the_exact_ranking() {
        let data = vec![
            DenseVector::from(&[0.9, 0.0][..]),
            DenseVector::from(&[0.5, 0.0][..]),
            DenseVector::from(&[0.7, 0.0][..]),
            DenseVector::from(&[0.1, 0.0][..]),
        ];
        let index = BruteForceMipsIndex::new(data, spec(0.6, 0.5));
        let query = DenseVector::from(&[1.0, 0.0][..]);
        let top = index.search_top_k(&query, 3).unwrap();
        // Acceptable pairs clear cs = 0.3: that's 0.9, 0.7 and 0.5, in that order.
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].data_index, 0);
        assert_eq!(top[1].data_index, 2);
        assert_eq!(top[2].data_index, 1);
        // k larger than the number of acceptable pairs just returns them all.
        assert_eq!(index.search_top_k(&query, 10).unwrap().len(), 3);
        // k = 0 returns nothing.
        assert!(index.search_top_k(&query, 0).unwrap().is_empty());
    }

    #[test]
    fn unsigned_top_k_ranks_by_absolute_value() {
        let data = vec![
            DenseVector::from(&[-0.9, 0.0][..]),
            DenseVector::from(&[0.5, 0.0][..]),
        ];
        let spec = JoinSpec::new(0.4, 0.9, JoinVariant::Unsigned).unwrap();
        let index = BruteForceMipsIndex::new(data, spec);
        let query = DenseVector::from(&[1.0, 0.0][..]);
        let top = index.search_top_k(&query, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].data_index, 0);
        assert!(top[0].inner_product < 0.0);
    }

    #[test]
    fn alsh_top_k_is_a_subset_of_acceptable_pairs_and_recall_is_high() {
        let mut r = rng();
        let dim = 16;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data: Vec<DenseVector> = (0..200)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.2))
            .collect();
        // Plant five vectors with high inner products with the query.
        for (slot, scale) in [
            (3usize, 0.95),
            (50, 0.9),
            (90, 0.85),
            (140, 0.8),
            (190, 0.75),
        ] {
            data[slot] = query.scaled(scale);
        }
        let spec = spec(0.7, 0.7);
        let exact = BruteForceMipsIndex::new(data.clone(), spec);
        let alsh = AlshMipsIndex::build(
            &mut r,
            data.clone(),
            spec,
            AlshParams {
                bits_per_table: 6,
                tables: 48,
                ..Default::default()
            },
        )
        .unwrap();
        let exact_top = exact.search_top_k(&query, 5).unwrap();
        let alsh_top = alsh.search_top_k(&query, 5).unwrap();
        assert_eq!(exact_top.len(), 5);
        for hit in &alsh_top {
            assert!(spec.acceptable(hit.inner_product));
            let true_ip = data[hit.data_index].dot(&query).unwrap();
            assert!((true_ip - hit.inner_product).abs() < 1e-9);
        }
        assert!(
            top_k_recall(&exact_top, &alsh_top) >= 0.6,
            "ALSH top-k recall too low: {alsh_top:?}"
        );
    }

    #[test]
    fn symmetric_top_k_respects_the_relaxed_threshold() {
        let mut r = rng();
        let dim = 10;
        let query = random_unit_vector(&mut r, dim).unwrap().scaled(0.9);
        let mut data: Vec<DenseVector> = (0..80)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.1))
            .collect();
        data[7] = query.scaled(0.9);
        data[21] = query.scaled(0.95);
        let spec = spec(0.6, 0.5);
        let index =
            SymmetricLshMips::build(&mut r, data, spec, SymmetricParams::default()).unwrap();
        let top = index.search_top_k(&query, 4).unwrap();
        for hit in &top {
            assert!(spec.acceptable(hit.inner_product));
        }
        // Results come back best-first.
        for pair in top.windows(2) {
            assert!(pair[0].inner_product >= pair[1].inner_product);
        }
    }

    #[test]
    fn top_k_join_reports_at_most_k_pairs_per_query() {
        let mut r = rng();
        let dim = 8;
        let data: Vec<DenseVector> = (0..60)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let queries: Vec<DenseVector> = (0..15)
            .map(|_| random_unit_vector(&mut r, dim).unwrap())
            .collect();
        let spec = spec(0.3, 0.5);
        let index = BruteForceMipsIndex::new(data.clone(), spec);
        for k in [1usize, 3, 7] {
            let pairs = top_k_join(&index, &queries, k).unwrap();
            let mut per_query = std::collections::HashMap::new();
            for p in &pairs {
                *per_query.entry(p.query_index).or_insert(0usize) += 1;
                assert!(spec.acceptable(p.inner_product));
            }
            assert!(per_query.values().all(|&count| count <= k), "k = {k}");
        }
    }

    #[test]
    fn recall_helper_edge_cases() {
        assert_eq!(top_k_recall(&[], &[]), 1.0);
        let a = SearchResult {
            data_index: 1,
            inner_product: 0.5,
        };
        let b = SearchResult {
            data_index: 2,
            inner_product: 0.4,
        };
        assert_eq!(top_k_recall(&[a, b], &[a]), 0.5);
        assert_eq!(top_k_recall(&[a, b], &[]), 0.0);
        assert_eq!(top_k_recall(&[a], &[a, b]), 1.0);
    }
}
