//! A common interface over all maximum-inner-product-search indexes.
//!
//! The paper discusses several data structures for `(cs, s)` search / `c`-MIPS
//! (Sections 4.1–4.3); the [`MipsIndex`] trait lets the join layer, the examples and the
//! benchmarks treat them interchangeably, with the quadratic scan as the reference
//! implementation.

use crate::brute::brute_force_mips;
use crate::error::Result;
use crate::problem::{JoinSpec, MatchPair};
use ips_linalg::DenseVector;

/// The outcome of one search query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Index of the returned data vector.
    pub data_index: usize,
    /// Its exact inner product with the query.
    pub inner_product: f64,
}

impl From<MatchPair> for SearchResult {
    fn from(pair: MatchPair) -> Self {
        Self {
            data_index: pair.data_index,
            inner_product: pair.inner_product,
        }
    }
}

/// An index answering `(cs, s)` inner product search queries over a fixed data set.
pub trait MipsIndex {
    /// Number of indexed data vectors.
    fn len(&self) -> usize;

    /// Returns `true` when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spec (`s`, `c`, signed/unsigned) the index answers queries for.
    fn spec(&self) -> JoinSpec;

    /// Answers one query: a data vector whose inner product clears `cs`, when the index
    /// finds one. Definition 1 only promises an answer when some vector clears `s`;
    /// approximate indexes may miss even then (that is what recall experiments measure),
    /// but they never return a pair below `cs`.
    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>>;

    /// Answers a batch of queries, one slot per query in order.
    ///
    /// The default implementation is the serial loop over [`MipsIndex::search`];
    /// implementations override it when a batch can be answered faster than
    /// query-at-a-time (e.g. the brute-force scan re-orders its loops for cache
    /// locality). [`crate::engine::JoinEngine`] feeds whole chunks through this
    /// method, so an override accelerates every join in the workspace.
    ///
    /// Overrides must return exactly what the serial loop would: the engine and
    /// the batch/serial equivalence property tests rely on it.
    fn search_batch(&self, queries: &[DenseVector]) -> Result<Vec<Option<SearchResult>>> {
        queries.iter().map(|q| self.search(q)).collect()
    }
}

/// Shared references to an index are themselves indexes, so [`crate::engine::JoinEngine`]
/// can either own its index or borrow one that outlives it.
impl<I: MipsIndex + ?Sized> MipsIndex for &I {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn spec(&self) -> JoinSpec {
        (**self).spec()
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        (**self).search(query)
    }

    fn search_batch(&self, queries: &[DenseVector]) -> Result<Vec<Option<SearchResult>>> {
        // Forward explicitly so a batch override on `I` is not lost behind the
        // reference's default method.
        (**self).search_batch(queries)
    }
}

/// The exact quadratic-scan index: the reference [`MipsIndex`] implementation.
pub struct BruteForceMipsIndex {
    data: Vec<DenseVector>,
    spec: JoinSpec,
    kernel: Option<crate::kernel::PreparedKernel>,
}

impl BruteForceMipsIndex {
    /// Builds the index (which just stores the data).
    pub fn new(data: Vec<DenseVector>, spec: JoinSpec) -> Self {
        Self {
            data,
            spec,
            kernel: None,
        }
    }

    /// Builds the index with a scoring-kernel selection (`dtype` /
    /// `quantized`). The default options add no preprocessing and keep batch
    /// results bit-identical to [`BruteForceMipsIndex::new`].
    pub fn with_options(
        data: Vec<DenseVector>,
        spec: JoinSpec,
        options: crate::kernel::ScoringOptions,
    ) -> Result<Self> {
        let kernel = if options.is_default() {
            None
        } else {
            Some(crate::kernel::PreparedKernel::prepare(&data, options)?)
        };
        Ok(Self { data, spec, kernel })
    }

    /// Re-prepares the scoring kernel in place — what long-lived serving
    /// wrappers call after a rebuild. The default options drop any prepared
    /// kernel and restore the bit-identical `f64` path.
    pub fn set_scoring(&mut self, options: crate::kernel::ScoringOptions) -> Result<()> {
        self.kernel = if options.is_default() {
            None
        } else {
            Some(crate::kernel::PreparedKernel::prepare(&self.data, options)?)
        };
        Ok(())
    }

    /// Access to the underlying data vectors.
    pub fn data(&self) -> &[DenseVector] {
        &self.data
    }

    /// The prepared kernel's activity tallies — zero on the default exact
    /// path, which has no prepared kernel and records nothing.
    pub fn kernel_activity(&self) -> crate::kernel::KernelActivity {
        self.kernel
            .as_ref()
            .map(crate::kernel::PreparedKernel::activity)
            .unwrap_or_default()
    }
}

impl MipsIndex for BruteForceMipsIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        // The exact index applies the *promise* threshold: it answers whenever some
        // vector clears s, which trivially also clears cs.
        Ok(brute_force_mips(&self.data, query, &self.spec)?.map(SearchResult::from))
    }

    /// Data-major scan: each data vector is loaded once and scored against the whole
    /// batch, instead of streaming the full data set past every query. Same results as
    /// the serial loop (strict `>` keeps the earliest argmax either way), much friendlier
    /// to the cache for wide batches. A non-default scoring kernel
    /// ([`BruteForceMipsIndex::with_options`]) dispatches through the tiled
    /// `f32` / quantized paths instead.
    fn search_batch(&self, queries: &[DenseVector]) -> Result<Vec<Option<SearchResult>>> {
        match &self.kernel {
            Some(prepared) => {
                crate::kernel::scored_batch(&self.data, prepared, queries, &self.spec)
            }
            None => data_major_batch(&self.data, queries, &self.spec),
        }
    }
}

/// The data-major batched exact scan shared by [`BruteForceMipsIndex`] and the
/// brute-force join baseline in [`crate::brute`].
///
/// Matches the serial one-`search`-per-query loop exactly, including the corners:
/// an empty batch is trivially answered whatever the index holds, and a non-empty
/// batch over an empty data set fails the way the first `search` would.
pub(crate) fn data_major_batch(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
) -> Result<Vec<Option<SearchResult>>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    if data.is_empty() {
        return Err(crate::error::CoreError::EmptyDataSet);
    }
    let mut best: Vec<Option<SearchResult>> = vec![None; queries.len()];
    for (i, p) in data.iter().enumerate() {
        for (j, q) in queries.iter().enumerate() {
            // Hot loop: skip the checked dot's length test and error
            // allocation when the dimensions agree (`dot_unchecked_len` is
            // bit-identical to `dot`); fall back to the checked path so a
            // mismatched batch fails exactly as the serial loop would.
            let ip = if p.dim() == q.dim() {
                p.dot_unchecked_len(q)
            } else {
                p.dot(q)?
            };
            let value = spec.variant.value(ip);
            let better = best[j]
                .as_ref()
                .map(|b| value > spec.variant.value(b.inner_product))
                .unwrap_or(true);
            if better {
                best[j] = Some(SearchResult {
                    data_index: i,
                    inner_product: ip,
                });
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|slot| slot.filter(|b| spec.satisfies_promise(b.inner_product)))
        .collect())
}

/// The Section 4.3 linear-sketch structure behind the common [`MipsIndex`] interface.
///
/// Wraps [`ips_sketch::SketchMipsIndex`]: the sketch proposes a candidate maximiser per
/// query, and the adapter keeps it only when its *exact* inner product clears the
/// spec's relaxed threshold `cs` under the spec's variant — precisely the per-query
/// step of the Section 4.3 unsigned join. The structure estimates `‖Aq‖_∞`, so it is
/// natively unsigned; under a [`crate::problem::JoinVariant::Signed`] spec the
/// candidate is still found by absolute value but only *reported* when its signed
/// inner product clears `cs`, keeping the [`MipsIndex::search`] validity promise
/// (anti-correlated pairs cost recall, never validity).
pub struct SketchMipsAdapter {
    inner: ips_sketch::SketchMipsIndex,
    spec: JoinSpec,
}

impl SketchMipsAdapter {
    /// Builds the sketch structure over `data` for the given spec.
    pub fn build<R: rand::Rng + ?Sized>(
        rng: &mut R,
        data: Vec<DenseVector>,
        spec: JoinSpec,
        config: ips_sketch::linf_mips::MaxIpConfig,
        leaf_size: usize,
    ) -> Result<Self> {
        let inner = ips_sketch::SketchMipsIndex::build(rng, data, config, leaf_size)?;
        Ok(Self { inner, spec })
    }

    /// The wrapped sketch structure.
    pub fn inner(&self) -> &ips_sketch::SketchMipsIndex {
        &self.inner
    }

    /// Wraps an already-built (e.g. snapshot-loaded) sketch structure under a spec —
    /// the inverse of [`SketchMipsAdapter::inner`], used by snapshot persistence.
    pub fn from_parts(inner: ips_sketch::SketchMipsIndex, spec: JoinSpec) -> Self {
        Self { inner, spec }
    }
}

impl MipsIndex for SketchMipsAdapter {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        let candidate = self.inner.query(query)?;
        // `acceptable` applies the spec's variant, so a Signed spec never reports
        // an anti-correlated candidate below cs (the validity half of the trait
        // contract); for Unsigned specs this is the seed's abs() >= cs check.
        Ok(self
            .spec
            .acceptable(candidate.inner_product)
            .then_some(SearchResult {
                data_index: candidate.index,
                inner_product: candidate.inner_product,
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn brute_force_index_roundtrip() {
        let data = vec![dv(&[1.0, 0.0]), dv(&[0.0, 0.4])];
        let spec = JoinSpec::new(0.3, 0.5, JoinVariant::Signed).unwrap();
        let index = BruteForceMipsIndex::new(data.clone(), spec);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.spec(), spec);
        assert_eq!(index.data().len(), 2);
        let hit = index.search(&dv(&[1.0, 0.0])).unwrap().unwrap();
        assert_eq!(hit.data_index, 0);
        assert_eq!(hit.inner_product, 1.0);
        // No vector clears s = 0.3 for this query.
        assert!(index.search(&dv(&[0.0, 0.1])).unwrap().is_none());
    }

    #[test]
    fn batch_override_matches_serial_loop_on_corners() {
        let spec = JoinSpec::new(0.3, 0.5, JoinVariant::Signed).unwrap();
        // Empty batch: trivially empty, even over an empty index (the serial
        // loop never calls `search`).
        let empty_index = BruteForceMipsIndex::new(Vec::new(), spec);
        assert_eq!(empty_index.search_batch(&[]).unwrap(), Vec::new());
        // Non-empty batch over an empty index: fails like the first `search`.
        assert!(empty_index.search_batch(&[dv(&[1.0])]).is_err());
    }

    #[test]
    fn sketch_adapter_honours_signed_validity() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x5EC7);
        // One strongly anti-correlated data vector: under a Signed spec the
        // adapter must not report it, however large its absolute inner product.
        let data = vec![dv(&[-0.9, 0.0]), dv(&[0.05, 0.05])];
        let config = ips_sketch::linf_mips::MaxIpConfig {
            kappa: 2.0,
            copies: 9,
            rows: None,
        };
        let signed = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let adapter = SketchMipsAdapter::build(&mut rng, data.clone(), signed, config, 4).unwrap();
        let q = dv(&[1.0, 0.0]);
        assert_eq!(adapter.search(&q).unwrap(), None);
        // The same pair is reported under an Unsigned spec (the seed behaviour).
        let unsigned = JoinSpec::new(0.8, 0.6, JoinVariant::Unsigned).unwrap();
        let adapter = SketchMipsAdapter::build(&mut rng, data, unsigned, config, 4).unwrap();
        let hit = adapter.search(&q).unwrap().unwrap();
        assert_eq!(hit.data_index, 0);
        assert!(hit.inner_product < 0.0);
    }

    #[test]
    fn search_result_from_match_pair() {
        let pair = MatchPair {
            data_index: 3,
            query_index: 7,
            inner_product: 0.5,
        };
        let sr = SearchResult::from(pair);
        assert_eq!(sr.data_index, 3);
        assert_eq!(sr.inner_product, 0.5);
    }
}
