//! A common interface over all maximum-inner-product-search indexes.
//!
//! The paper discusses several data structures for `(cs, s)` search / `c`-MIPS
//! (Sections 4.1–4.3); the [`MipsIndex`] trait lets the join layer, the examples and the
//! benchmarks treat them interchangeably, with the quadratic scan as the reference
//! implementation.

use crate::brute::brute_force_mips;
use crate::error::Result;
use crate::problem::{JoinSpec, MatchPair};
use ips_linalg::DenseVector;

/// The outcome of one search query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Index of the returned data vector.
    pub data_index: usize,
    /// Its exact inner product with the query.
    pub inner_product: f64,
}

impl From<MatchPair> for SearchResult {
    fn from(pair: MatchPair) -> Self {
        Self {
            data_index: pair.data_index,
            inner_product: pair.inner_product,
        }
    }
}

/// An index answering `(cs, s)` inner product search queries over a fixed data set.
pub trait MipsIndex {
    /// Number of indexed data vectors.
    fn len(&self) -> usize;

    /// Returns `true` when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spec (`s`, `c`, signed/unsigned) the index answers queries for.
    fn spec(&self) -> JoinSpec;

    /// Answers one query: a data vector whose inner product clears `cs`, when the index
    /// finds one. Definition 1 only promises an answer when some vector clears `s`;
    /// approximate indexes may miss even then (that is what recall experiments measure),
    /// but they never return a pair below `cs`.
    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>>;
}

/// The exact quadratic-scan index: the reference [`MipsIndex`] implementation.
pub struct BruteForceMipsIndex {
    data: Vec<DenseVector>,
    spec: JoinSpec,
}

impl BruteForceMipsIndex {
    /// Builds the index (which just stores the data).
    pub fn new(data: Vec<DenseVector>, spec: JoinSpec) -> Self {
        Self { data, spec }
    }

    /// Access to the underlying data vectors.
    pub fn data(&self) -> &[DenseVector] {
        &self.data
    }
}

impl MipsIndex for BruteForceMipsIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        // The exact index applies the *promise* threshold: it answers whenever some
        // vector clears s, which trivially also clears cs.
        Ok(brute_force_mips(&self.data, query, &self.spec)?.map(SearchResult::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn brute_force_index_roundtrip() {
        let data = vec![dv(&[1.0, 0.0]), dv(&[0.0, 0.4])];
        let spec = JoinSpec::new(0.3, 0.5, JoinVariant::Signed).unwrap();
        let index = BruteForceMipsIndex::new(data.clone(), spec);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.spec(), spec);
        assert_eq!(index.data().len(), 2);
        let hit = index.search(&dv(&[1.0, 0.0])).unwrap().unwrap();
        assert_eq!(hit.data_index, 0);
        assert_eq!(hit.inner_product, 1.0);
        // No vector clears s = 0.3 for this query.
        assert!(index.search(&dv(&[0.0, 0.1])).unwrap().is_none());
    }

    #[test]
    fn search_result_from_match_pair() {
        let pair = MatchPair {
            data_index: 3,
            query_index: 7,
            inner_product: 0.5,
        };
        let sr = SearchResult::from(pair);
        assert_eq!(sr.data_index, 3);
        assert_eq!(sr.inner_product, 0.5);
    }
}
