//! The algebraic (matrix-multiplication) joins, wrapped behind the core API.
//!
//! Section 1.2 of the paper ("Algebraic techniques") credits Valiant \[51\] and
//! Karppa et al. \[29\] with the only truly subquadratic algorithms for unsigned join in
//! the *permissible* ranges of Table 1 — they reduce the join to (fast) matrix
//! multiplication rather than to hashing. The implementations live in the `ips-matmul`
//! substrate crate; this module adapts them to the workspace-wide [`JoinSpec`] /
//! [`MatchPair`] vocabulary so the benchmark harness can compare them head-to-head with
//! the brute-force, LSH and sketch joins.

use crate::error::{CoreError, Result};
use crate::problem::{JoinSpec, JoinVariant, MatchPair};
use ips_linalg::{DenseVector, SignVector};
use ips_matmul::{
    amplified_unsigned_join, matmul_exact_join, matmul_exact_join_parallel, AlgebraicPair,
    AmplifiedJoinConfig,
};
use rand::Rng;

fn convert(pairs: Vec<AlgebraicPair>) -> Vec<MatchPair> {
    pairs
        .into_iter()
        .map(|p| MatchPair {
            data_index: p.data_index,
            query_index: p.query_index,
            inner_product: p.inner_product,
        })
        .collect()
}

/// Exact join evaluated as one blockwise Gram product: for every query, the best
/// partner is reported when it clears the promise threshold `s` — the same semantics as
/// [`crate::brute::brute_force_join`], but with matrix-multiplication memory locality.
pub fn algebraic_exact_join(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
    query_block: usize,
) -> Result<Vec<MatchPair>> {
    let unsigned = spec.variant == JoinVariant::Unsigned;
    let pairs = matmul_exact_join(data, queries, spec.threshold, unsigned, query_block)?;
    Ok(convert(pairs))
}

/// Multi-threaded variant of [`algebraic_exact_join`].
pub fn algebraic_exact_join_parallel(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
    query_block: usize,
    threads: usize,
) -> Result<Vec<MatchPair>> {
    let unsigned = spec.variant == JoinVariant::Unsigned;
    let pairs = matmul_exact_join_parallel(
        data,
        queries,
        spec.threshold,
        unsigned,
        query_block,
        threads,
    )?;
    Ok(convert(pairs))
}

/// The amplify-and-multiply `(cs, s)` join for `{−1,1}` data (Valiant/Karppa style).
///
/// Only the unsigned variant is supported — the algebraic amplification squares away
/// signs — so a [`JoinVariant::Signed`] spec is rejected. Reported pairs always satisfy
/// `|pᵀq| ≥ cs`; recall is probabilistic, exactly as for the LSH joins.
pub fn amplified_sign_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[SignVector],
    queries: &[SignVector],
    spec: &JoinSpec,
    config: AmplifiedJoinConfig,
) -> Result<Vec<MatchPair>> {
    if spec.variant != JoinVariant::Unsigned {
        return Err(CoreError::InvalidParameter {
            name: "spec.variant",
            reason: "the amplified algebraic join only answers the unsigned variant".into(),
        });
    }
    if spec.approximation >= 1.0 {
        return Err(CoreError::InvalidParameter {
            name: "spec.approximation",
            reason: "the amplified join needs a strict approximation factor c < 1".into(),
        });
    }
    let report = amplified_unsigned_join(
        rng,
        data,
        queries,
        spec.threshold,
        spec.approximation,
        config,
    )?;
    Ok(convert(report.pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use ips_linalg::random::{random_sign_vector, random_unit_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA1_6E)
    }

    #[test]
    fn algebraic_exact_join_matches_brute_force() {
        let mut r = rng();
        let dim = 12;
        let data: Vec<DenseVector> = (0..50)
            .map(|_| random_unit_vector(&mut r, dim).unwrap())
            .collect();
        let queries: Vec<DenseVector> = (0..20)
            .map(|_| random_unit_vector(&mut r, dim).unwrap())
            .collect();
        for variant in [JoinVariant::Signed, JoinVariant::Unsigned] {
            let spec = JoinSpec::exact(0.3, variant).unwrap();
            let expected = brute_force_join(&data, &queries, &spec).unwrap();
            let got = algebraic_exact_join(&data, &queries, &spec, 7).unwrap();
            assert_eq!(got, expected, "variant {variant:?}");
            let parallel = algebraic_exact_join_parallel(&data, &queries, &spec, 7, 3).unwrap();
            assert_eq!(parallel, expected, "parallel variant {variant:?}");
        }
    }

    #[test]
    fn amplified_join_rejects_signed_and_exact_specs() {
        let mut r = rng();
        let data = vec![random_sign_vector(&mut r, 16)];
        let queries = vec![random_sign_vector(&mut r, 16)];
        let signed = JoinSpec::new(8.0, 0.5, JoinVariant::Signed).unwrap();
        assert!(amplified_sign_join(
            &mut r,
            &data,
            &queries,
            &signed,
            AmplifiedJoinConfig::default()
        )
        .is_err());
        let exact = JoinSpec::exact(8.0, JoinVariant::Unsigned).unwrap();
        assert!(amplified_sign_join(
            &mut r,
            &data,
            &queries,
            &exact,
            AmplifiedJoinConfig::default()
        )
        .is_err());
    }

    #[test]
    fn amplified_join_finds_a_planted_sign_pair() {
        let mut r = rng();
        let dim = 64;
        let query = random_sign_vector(&mut r, dim);
        let mut data: Vec<SignVector> = (0..80).map(|_| random_sign_vector(&mut r, dim)).collect();
        // Planted partner agrees with the query on 60 of 64 coordinates: ip = 56.
        let mut partner = query.clone();
        for i in 60..dim {
            partner.set(i, -query.get(i));
        }
        data[17] = partner;
        let spec = JoinSpec::new(56.0, 0.5, JoinVariant::Unsigned).unwrap();
        let pairs = amplified_sign_join(
            &mut r,
            &data,
            &[query],
            &spec,
            AmplifiedJoinConfig {
                degree: 2,
                projection_dim: 4096,
                detection_fraction: 0.5,
            },
        )
        .unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].data_index, 17);
        assert!(spec.acceptable(pairs[0].inner_product));
    }
}
