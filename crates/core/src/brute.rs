//! Exact brute-force joins and MIPS — the quadratic baselines.
//!
//! Every upper bound in the paper is an attempt to beat these `O(|P|·|Q|·d)` loops, and
//! every conditional lower bound says that in certain regimes one essentially cannot.
//! Both a sequential and a multi-threaded variant are provided; the parallel variant
//! (the [`crate::engine::JoinEngine`] over a borrowed exact index) is the honest
//! baseline for the wall-clock benchmarks on multi-core machines.

use crate::engine::{EngineConfig, JoinEngine};
use crate::error::{CoreError, Result};
use crate::mips::{data_major_batch, MipsIndex, SearchResult};
use crate::problem::{JoinSpec, MatchPair};
use ips_linalg::DenseVector;

/// For each query, finds the best pair according to the spec's variant and reports it if
/// it clears the *promise* threshold `s` (the exact join of Definition 1 with `c = 1`
/// semantics applied to the best partner).
pub fn brute_force_join(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
) -> Result<Vec<MatchPair>> {
    if data.is_empty() || queries.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    let mut out = Vec::new();
    for (j, q) in queries.iter().enumerate() {
        if let Some(pair) = best_for_query(data, q, j, spec)? {
            out.push(pair);
        }
    }
    Ok(out)
}

/// The exact quadratic-scan index over *borrowed* data: the zero-copy sibling of
/// [`crate::mips::BruteForceMipsIndex`], for callers that already own the vectors
/// (the parallel baseline below, the CLI's default algorithm) and should not pay
/// a second copy just to join through the engine.
pub struct BorrowedBruteIndex<'a> {
    data: &'a [DenseVector],
    spec: JoinSpec,
    kernel: Option<crate::kernel::PreparedKernel>,
}

impl<'a> BorrowedBruteIndex<'a> {
    /// Wraps the data set (no copy, no preprocessing).
    pub fn new(data: &'a [DenseVector], spec: JoinSpec) -> Self {
        Self {
            data,
            spec,
            kernel: None,
        }
    }

    /// Wraps the data set with a scoring-kernel selection: non-default
    /// options pack the data into the `f32` / quantized tiles once, so every
    /// batch scores through the cheap kernel. Default options are exactly
    /// [`BorrowedBruteIndex::new`].
    pub fn with_options(
        data: &'a [DenseVector],
        spec: JoinSpec,
        options: crate::kernel::ScoringOptions,
    ) -> Result<Self> {
        let kernel = if options.is_default() {
            None
        } else {
            Some(crate::kernel::PreparedKernel::prepare(data, options)?)
        };
        Ok(Self { data, spec, kernel })
    }
}

impl MipsIndex for BorrowedBruteIndex<'_> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        Ok(brute_force_mips(self.data, query, &self.spec)?.map(SearchResult::from))
    }

    fn search_batch(&self, queries: &[DenseVector]) -> Result<Vec<Option<SearchResult>>> {
        match &self.kernel {
            Some(prepared) => crate::kernel::scored_batch(self.data, prepared, queries, &self.spec),
            None => data_major_batch(self.data, queries, &self.spec),
        }
    }
}

/// Multi-threaded exact join: the [`JoinEngine`] over a borrowed exact index, with
/// the query set split across `threads` workers (one chunk each, mirroring the
/// pre-engine behaviour of this baseline). The builder spelling is
/// `Join::data(d).queries(q).spec(s).strategy(Strategy::Brute).threads(n).run()`
/// (see [`crate::facade`]; no randomness is involved either way).
pub fn brute_force_join_parallel(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
    threads: usize,
) -> Result<Vec<MatchPair>> {
    if data.is_empty() || queries.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    if threads == 0 {
        return Err(CoreError::InvalidParameter {
            name: "threads",
            reason: "at least one worker thread is required".into(),
        });
    }
    let threads = threads.min(queries.len());
    let index = BorrowedBruteIndex::new(data, *spec);
    let config = EngineConfig {
        threads,
        chunk_size: queries.len().div_ceil(threads),
    };
    JoinEngine::with_config(index, config).run(queries)
}

/// Exact maximum inner product search: the data index maximising the variant's value,
/// together with the (signed) inner product.
pub fn brute_force_mips(
    data: &[DenseVector],
    query: &DenseVector,
    spec: &JoinSpec,
) -> Result<Option<MatchPair>> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    best_for_query(data, query, 0, spec)
}

fn best_for_query(
    data: &[DenseVector],
    q: &DenseVector,
    query_index: usize,
    spec: &JoinSpec,
) -> Result<Option<MatchPair>> {
    // One-query batch through the shared kernel, so the argmax tie-breaking and
    // promise filter have a single definition crate-wide.
    let hit = data_major_batch(data, std::slice::from_ref(q), spec)?
        .pop()
        .flatten();
    Ok(hit.map(|h| MatchPair {
        data_index: h.data_index,
        query_index,
        inner_product: h.inner_product,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn empty_inputs_rejected() {
        let spec = JoinSpec::exact(0.5, JoinVariant::Signed).unwrap();
        assert!(brute_force_join(&[], &[dv(&[1.0])], &spec).is_err());
        assert!(brute_force_join(&[dv(&[1.0])], &[], &spec).is_err());
        assert!(brute_force_mips(&[], &dv(&[1.0]), &spec).is_err());
        assert!(brute_force_join_parallel(&[dv(&[1.0])], &[dv(&[1.0])], &spec, 0).is_err());
    }

    #[test]
    fn signed_join_finds_best_partner_per_query() {
        let data = vec![dv(&[1.0, 0.0]), dv(&[0.5, 0.5]), dv(&[0.0, 1.0])];
        let queries = vec![dv(&[1.0, 0.0]), dv(&[0.0, -1.0])];
        let spec = JoinSpec::exact(0.8, JoinVariant::Signed).unwrap();
        let pairs = brute_force_join(&data, &queries, &spec).unwrap();
        // Query 0 matches data 0 (ip 1.0 >= 0.8); query 1 has no positive partner.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].data_index, 0);
        assert_eq!(pairs[0].query_index, 0);
    }

    #[test]
    fn unsigned_join_catches_negative_correlations() {
        let data = vec![dv(&[1.0, 0.0])];
        let queries = vec![dv(&[-0.95, 0.0])];
        let signed = JoinSpec::exact(0.8, JoinVariant::Signed).unwrap();
        assert!(brute_force_join(&data, &queries, &signed)
            .unwrap()
            .is_empty());
        let unsigned = JoinSpec::exact(0.8, JoinVariant::Unsigned).unwrap();
        let pairs = brute_force_join(&data, &queries, &unsigned).unwrap();
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].inner_product < 0.0);
    }

    #[test]
    fn mips_returns_argmax() {
        let data = vec![dv(&[0.2, 0.0]), dv(&[0.9, 0.1]), dv(&[0.5, 0.5])];
        let q = dv(&[1.0, 0.0]);
        let spec = JoinSpec::exact(0.1, JoinVariant::Signed).unwrap();
        let best = brute_force_mips(&data, &q, &spec).unwrap().unwrap();
        assert_eq!(best.data_index, 1);
        // Below the promise threshold nothing is returned.
        let strict = JoinSpec::exact(5.0, JoinVariant::Signed).unwrap();
        assert!(brute_force_mips(&data, &q, &strict).unwrap().is_none());
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(0xACE);
        let dim = 12;
        let data: Vec<DenseVector> = (0..60)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        let queries: Vec<DenseVector> = (0..23)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        let spec = JoinSpec::exact(0.3, JoinVariant::Unsigned).unwrap();
        let sequential = brute_force_join(&data, &queries, &spec).unwrap();
        for threads in [1, 2, 4, 7, 64] {
            let parallel = brute_force_join_parallel(&data, &queries, &spec, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }
}
