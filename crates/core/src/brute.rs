//! Exact brute-force joins and MIPS — the quadratic baselines.
//!
//! Every upper bound in the paper is an attempt to beat these `O(|P|·|Q|·d)` loops, and
//! every conditional lower bound says that in certain regimes one essentially cannot.
//! Both a sequential and a multi-threaded variant (scoped threads over query chunks,
//! via `crossbeam`) are provided; the parallel variant is the honest baseline for the
//! wall-clock benchmarks on multi-core machines.

use crate::error::{CoreError, Result};
use crate::problem::{JoinSpec, MatchPair};
use ips_linalg::DenseVector;

/// For each query, finds the best pair according to the spec's variant and reports it if
/// it clears the *promise* threshold `s` (the exact join of Definition 1 with `c = 1`
/// semantics applied to the best partner).
pub fn brute_force_join(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
) -> Result<Vec<MatchPair>> {
    if data.is_empty() || queries.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    let mut out = Vec::new();
    for (j, q) in queries.iter().enumerate() {
        if let Some(pair) = best_for_query(data, q, j, spec)? {
            out.push(pair);
        }
    }
    Ok(out)
}

/// Multi-threaded exact join: splits the query set across `threads` scoped workers.
pub fn brute_force_join_parallel(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
    threads: usize,
) -> Result<Vec<MatchPair>> {
    if data.is_empty() || queries.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    if threads == 0 {
        return Err(CoreError::InvalidParameter {
            name: "threads",
            reason: "at least one worker thread is required".into(),
        });
    }
    let threads = threads.min(queries.len());
    let chunk_size = queries.len().div_ceil(threads);
    let results: Vec<Result<Vec<MatchPair>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                scope.spawn(move |_| -> Result<Vec<MatchPair>> {
                    let mut local = Vec::new();
                    for (offset, q) in chunk.iter().enumerate() {
                        let j = chunk_idx * chunk_size + offset;
                        if let Some(pair) = best_for_query(data, q, j, spec)? {
                            local.push(pair);
                        }
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    out.sort_by_key(|p| p.query_index);
    Ok(out)
}

/// Exact maximum inner product search: the data index maximising the variant's value,
/// together with the (signed) inner product.
pub fn brute_force_mips(
    data: &[DenseVector],
    query: &DenseVector,
    spec: &JoinSpec,
) -> Result<Option<MatchPair>> {
    if data.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    best_for_query(data, query, 0, spec)
}

fn best_for_query(
    data: &[DenseVector],
    q: &DenseVector,
    query_index: usize,
    spec: &JoinSpec,
) -> Result<Option<MatchPair>> {
    let mut best: Option<MatchPair> = None;
    for (i, p) in data.iter().enumerate() {
        let ip = p.dot(q)?;
        let value = spec.variant.value(ip);
        let better = best
            .as_ref()
            .map(|b| value > spec.variant.value(b.inner_product))
            .unwrap_or(true);
        if better {
            best = Some(MatchPair {
                data_index: i,
                query_index,
                inner_product: ip,
            });
        }
    }
    Ok(best.filter(|b| spec.satisfies_promise(b.inner_product)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn empty_inputs_rejected() {
        let spec = JoinSpec::exact(0.5, JoinVariant::Signed).unwrap();
        assert!(brute_force_join(&[], &[dv(&[1.0])], &spec).is_err());
        assert!(brute_force_join(&[dv(&[1.0])], &[], &spec).is_err());
        assert!(brute_force_mips(&[], &dv(&[1.0]), &spec).is_err());
        assert!(brute_force_join_parallel(&[dv(&[1.0])], &[dv(&[1.0])], &spec, 0).is_err());
    }

    #[test]
    fn signed_join_finds_best_partner_per_query() {
        let data = vec![dv(&[1.0, 0.0]), dv(&[0.5, 0.5]), dv(&[0.0, 1.0])];
        let queries = vec![dv(&[1.0, 0.0]), dv(&[0.0, -1.0])];
        let spec = JoinSpec::exact(0.8, JoinVariant::Signed).unwrap();
        let pairs = brute_force_join(&data, &queries, &spec).unwrap();
        // Query 0 matches data 0 (ip 1.0 >= 0.8); query 1 has no positive partner.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].data_index, 0);
        assert_eq!(pairs[0].query_index, 0);
    }

    #[test]
    fn unsigned_join_catches_negative_correlations() {
        let data = vec![dv(&[1.0, 0.0])];
        let queries = vec![dv(&[-0.95, 0.0])];
        let signed = JoinSpec::exact(0.8, JoinVariant::Signed).unwrap();
        assert!(brute_force_join(&data, &queries, &signed).unwrap().is_empty());
        let unsigned = JoinSpec::exact(0.8, JoinVariant::Unsigned).unwrap();
        let pairs = brute_force_join(&data, &queries, &unsigned).unwrap();
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].inner_product < 0.0);
    }

    #[test]
    fn mips_returns_argmax() {
        let data = vec![dv(&[0.2, 0.0]), dv(&[0.9, 0.1]), dv(&[0.5, 0.5])];
        let q = dv(&[1.0, 0.0]);
        let spec = JoinSpec::exact(0.1, JoinVariant::Signed).unwrap();
        let best = brute_force_mips(&data, &q, &spec).unwrap().unwrap();
        assert_eq!(best.data_index, 1);
        // Below the promise threshold nothing is returned.
        let strict = JoinSpec::exact(5.0, JoinVariant::Signed).unwrap();
        assert!(brute_force_mips(&data, &q, &strict).unwrap().is_none());
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(0xACE);
        let dim = 12;
        let data: Vec<DenseVector> = (0..60)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        let queries: Vec<DenseVector> = (0..23)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        let spec = JoinSpec::exact(0.3, JoinVariant::Unsigned).unwrap();
        let sequential = brute_force_join(&data, &queries, &spec).unwrap();
        for threads in [1, 2, 4, 7, 64] {
            let parallel = brute_force_join_parallel(&data, &queries, &spec, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }
}
