//! The unified join engine: one parallel, chunk-batched driver behind every join.
//!
//! A `(cs, s)` join is "build an index over `P`, query it with every `q ∈ Q`" — the
//! reduction the paper uses throughout. The seed implementation ran that reduction as a
//! serial one-query-at-a-time loop in four separate places; [`JoinEngine`] is the single
//! replacement. It owns (or borrows) any [`MipsIndex`], splits the query set into
//! chunks, and feeds the chunks through [`MipsIndex::search_batch`] on a pool of scoped
//! worker threads with work-stealing chunk claims, so:
//!
//! * every index gets query parallelism for free (searches take `&self`; all the
//!   workspace's indexes are plain data and therefore [`Sync`]);
//! * an index that can answer a *batch* faster than query-at-a-time (the brute-force
//!   scan's data-major loop, and any future blocked/SIMD path) accelerates every join
//!   by overriding one method;
//! * the output is byte-for-byte what the serial loop produces — the workers only
//!   partition the query set, and results are reassembled in query order.
//!
//! This is the seam future sharding and caching work plugs into: anything that can
//! answer `search_batch` — a remote shard, a cached layer, a GPU kernel — joins through
//! the same driver. It is also the execution core every run of the fluent
//! [`crate::facade::JoinBuilder`] ends in: whatever strategy the builder (or the
//! planner behind [`crate::facade::Strategy::Auto`]) selects, the query set reaches the
//! chosen index through `JoinEngine::run`.

use crate::error::Result;
use crate::mips::MipsIndex;
use crate::problem::{JoinSpec, MatchPair};
use crate::topk::TopKMipsIndex;
use ips_linalg::DenseVector;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How a [`JoinEngine`] schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Queries per batched work unit handed to [`MipsIndex::search_batch`].
    pub chunk_size: usize,
}

impl EngineConfig {
    /// Serial execution (one thread), primarily for baselines and tests.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// Exactly `threads` workers with the default chunk size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    fn resolved_chunk_size(&self) -> usize {
        self.chunk_size.max(1)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            // Large enough that a batch amortises scheduling and lets data-major
            // batch kernels reuse each loaded data vector; small enough that a
            // typical query set still splits across every core.
            chunk_size: 32,
        }
    }
}

/// The unified parallel join driver over any [`MipsIndex`].
///
/// `I` may be an owned index (`JoinEngine<AlshMipsIndex>`) or a borrowed one
/// (`JoinEngine<&AlshMipsIndex>`), since `&I` implements [`MipsIndex`] too.
///
/// ```
/// use ips_core::engine::{EngineConfig, JoinEngine};
/// use ips_core::mips::BruteForceMipsIndex;
/// use ips_core::problem::{JoinSpec, JoinVariant};
/// use ips_linalg::DenseVector;
///
/// let data = vec![
///     DenseVector::from(&[1.0, 0.0][..]),
///     DenseVector::from(&[0.0, 1.0][..]),
/// ];
/// let spec = JoinSpec::new(0.5, 1.0, JoinVariant::Signed).unwrap();
/// let engine = JoinEngine::with_config(
///     BruteForceMipsIndex::new(data, spec),
///     EngineConfig::with_threads(2),
/// );
/// let queries = vec![DenseVector::from(&[0.9, 0.1][..])];
/// let pairs = engine.run(&queries).unwrap();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].data_index, 0);
/// // An empty query set joins to an empty result (workspace-wide contract).
/// assert!(engine.run(&[]).unwrap().is_empty());
/// ```
pub struct JoinEngine<I: MipsIndex> {
    index: I,
    config: EngineConfig,
}

impl<I: MipsIndex> JoinEngine<I> {
    /// An engine over `index` with the default configuration.
    pub fn new(index: I) -> Self {
        Self::with_config(index, EngineConfig::default())
    }

    /// An engine over `index` with an explicit schedule.
    pub fn with_config(index: I, config: EngineConfig) -> Self {
        Self { index, config }
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Consumes the engine, returning the index.
    pub fn into_index(self) -> I {
        self.index
    }

    /// The engine's schedule.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The `(cs, s)` spec of the underlying index.
    pub fn spec(&self) -> JoinSpec {
        self.index.spec()
    }

    /// Runs the join serially on the calling thread (still chunk-batched, so
    /// [`MipsIndex::search_batch`] overrides apply). This is the reference
    /// semantics [`JoinEngine::run`] must reproduce.
    pub fn run_serial(&self, queries: &[DenseVector]) -> Result<Vec<MatchPair>> {
        let chunk_size = self.config.resolved_chunk_size();
        let mut out = Vec::new();
        for (chunk_idx, chunk) in queries.chunks(chunk_size).enumerate() {
            let hits = self.index.search_batch(chunk)?;
            collect_chunk(&mut out, chunk_idx * chunk_size, hits);
        }
        Ok(out)
    }

    /// Runs the `(cs, s)` join of the index's data set against `queries`.
    ///
    /// Chunks of `config.chunk_size` queries are claimed by `config.threads`
    /// scoped workers off a shared atomic cursor (work stealing, so uneven
    /// per-query cost — common for LSH probing — cannot idle a worker). Results
    /// are returned sorted by query index and are identical to
    /// [`JoinEngine::run_serial`].
    pub fn run(&self, queries: &[DenseVector]) -> Result<Vec<MatchPair>>
    where
        I: Sync,
    {
        self.run_chunked(queries, &|chunk, base| {
            let hits = self.index.search_batch(chunk)?;
            let mut local = Vec::new();
            collect_chunk(&mut local, base, hits);
            Ok(local)
        })
    }

    /// [`JoinEngine::run`] with the pass timed into `sink`: records the
    /// engine wall time as [`ips_obs::Stage::Engine`] and the batch width as
    /// [`ips_obs::Observable::BatchSize`]. The answer is exactly `run`'s —
    /// the sink only observes.
    pub fn run_with_sink(
        &self,
        queries: &[DenseVector],
        sink: &dyn ips_obs::TraceSink,
    ) -> Result<Vec<MatchPair>>
    where
        I: Sync,
    {
        let start = std::time::Instant::now();
        let out = self.run(queries);
        sink.stage_ns(ips_obs::Stage::Engine, start.elapsed().as_nanos() as u64);
        sink.observe(ips_obs::Observable::BatchSize, queries.len() as u64);
        out
    }

    /// Runs a batched top-`k` join through the same chunked, work-stealing driver as
    /// [`JoinEngine::run`]: up to `k` pairs per query, each clearing the relaxed
    /// threshold `cs`, best first within a query, queries in order.
    ///
    /// This is the serving layer's batch entry point — a long-lived
    /// [`TopKMipsIndex`] answers whole query batches with the engine's concurrency
    /// and chunking instead of a caller-side loop.
    pub fn run_top_k(&self, queries: &[DenseVector], k: usize) -> Result<Vec<MatchPair>>
    where
        I: TopKMipsIndex + Sync,
    {
        self.run_chunked(queries, &|chunk, base| {
            let mut local = Vec::new();
            for (offset, q) in chunk.iter().enumerate() {
                for hit in self.index.search_top_k(q, k)? {
                    local.push(MatchPair {
                        data_index: hit.data_index,
                        query_index: base + offset,
                        inner_product: hit.inner_product,
                    });
                }
            }
            Ok(local)
        })
    }

    /// [`JoinEngine::run_top_k`] with the pass timed into `sink`, mirroring
    /// [`JoinEngine::run_with_sink`].
    pub fn run_top_k_with_sink(
        &self,
        queries: &[DenseVector],
        k: usize,
        sink: &dyn ips_obs::TraceSink,
    ) -> Result<Vec<MatchPair>>
    where
        I: TopKMipsIndex + Sync,
    {
        let start = std::time::Instant::now();
        let out = self.run_top_k(queries, k);
        sink.stage_ns(ips_obs::Stage::Engine, start.elapsed().as_nanos() as u64);
        sink.observe(ips_obs::Observable::BatchSize, queries.len() as u64);
        out
    }

    /// The shared chunked driver: splits `queries` into chunks, has workers claim
    /// chunks off an atomic cursor, and reassembles per-chunk pair lists in chunk
    /// order — so any per-chunk computation gets identical scheduling, early-abort
    /// and output-ordering behaviour.
    fn run_chunked<F>(&self, queries: &[DenseVector], per_chunk: &F) -> Result<Vec<MatchPair>>
    where
        I: Sync,
        F: Fn(&[DenseVector], usize) -> Result<Vec<MatchPair>> + Sync,
    {
        let chunk_size = self.config.resolved_chunk_size();
        let chunks: Vec<&[DenseVector]> = queries.chunks(chunk_size).collect();
        let threads = self.config.resolved_threads().min(chunks.len().max(1));
        if threads <= 1 || chunks.len() <= 1 {
            let mut out = Vec::new();
            for (k, chunk) in chunks.iter().enumerate() {
                out.extend(per_chunk(chunk, k * chunk_size)?);
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        type Tagged = Vec<(usize, Vec<MatchPair>)>;
        let worker_results: Vec<Result<Tagged>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let failed = &failed;
                    let chunks = &chunks;
                    scope.spawn(move || -> Result<Tagged> {
                        let mut local = Vec::new();
                        loop {
                            // One worker's failure is the whole join's failure;
                            // stop claiming chunks so the error surfaces without
                            // paying for the rest of the query set.
                            if failed.load(Ordering::Relaxed) {
                                return Ok(local);
                            }
                            let k = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks.get(k) else {
                                return Ok(local);
                            };
                            match per_chunk(chunk, k * chunk_size) {
                                Ok(pairs) => local.push((k, pairs)),
                                Err(e) => {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join engine worker panicked"))
                .collect()
        });

        let mut tagged = Vec::new();
        for r in worker_results {
            tagged.extend(r?);
        }
        // Chunk order is query order, and pairs within a chunk are already ordered,
        // so reassembly by chunk index reproduces the serial output exactly — even
        // when a query contributes several pairs (top-k), which a per-pair sort on
        // query index alone could not keep stable.
        tagged.sort_unstable_by_key(|(k, _)| *k);
        Ok(tagged.into_iter().flat_map(|(_, pairs)| pairs).collect())
    }
}

fn collect_chunk(
    out: &mut Vec<MatchPair>,
    base: usize,
    hits: Vec<Option<crate::mips::SearchResult>>,
) {
    for (offset, hit) in hits.into_iter().enumerate() {
        if let Some(hit) = hit {
            out.push(MatchPair {
                data_index: hit.data_index,
                query_index: base + offset,
                inner_product: hit.inner_product,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mips::BruteForceMipsIndex;
    use crate::problem::JoinVariant;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(seed: u64, n: usize, q: usize, dim: usize) -> (Vec<DenseVector>, Vec<DenseVector>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..n)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        let queries = (0..q)
            .map(|_| random_unit_vector(&mut rng, dim).unwrap())
            .collect();
        (data, queries)
    }

    #[test]
    fn parallel_run_matches_serial_for_every_schedule() {
        let (data, queries) = workload(0xE46, 80, 37, 12);
        let spec = JoinSpec::exact(0.2, JoinVariant::Unsigned).unwrap();
        let index = BruteForceMipsIndex::new(data, spec);
        let reference = JoinEngine::with_config(&index, EngineConfig::serial())
            .run_serial(&queries)
            .unwrap();
        for threads in [1, 2, 3, 8] {
            for chunk_size in [1, 5, 32, 64] {
                let engine = JoinEngine::with_config(
                    &index,
                    EngineConfig {
                        threads,
                        chunk_size,
                    },
                );
                assert_eq!(
                    engine.run(&queries).unwrap(),
                    reference,
                    "threads={threads} chunk_size={chunk_size}"
                );
            }
        }
    }

    #[test]
    fn parallel_top_k_matches_the_serial_per_query_loop() {
        use crate::topk::TopKMipsIndex;
        let (data, queries) = workload(0xE50, 90, 41, 10);
        let spec = JoinSpec::new(0.1, 0.5, JoinVariant::Signed).unwrap();
        let index = BruteForceMipsIndex::new(data, spec);
        for k in [1usize, 3, 5] {
            // Reference: the plain per-query loop.
            let mut expected = Vec::new();
            for (j, q) in queries.iter().enumerate() {
                for hit in index.search_top_k(q, k).unwrap() {
                    expected.push(MatchPair {
                        data_index: hit.data_index,
                        query_index: j,
                        inner_product: hit.inner_product,
                    });
                }
            }
            for threads in [1, 3, 8] {
                for chunk_size in [1, 7, 64] {
                    let engine = JoinEngine::with_config(
                        &index,
                        EngineConfig {
                            threads,
                            chunk_size,
                        },
                    );
                    assert_eq!(
                        engine.run_top_k(&queries, k).unwrap(),
                        expected,
                        "k={k} threads={threads} chunk_size={chunk_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_query_set_yields_empty_join() {
        let (data, _) = workload(0xE47, 10, 0, 8);
        let spec = JoinSpec::exact(0.2, JoinVariant::Signed).unwrap();
        let engine = JoinEngine::new(BruteForceMipsIndex::new(data, spec));
        assert!(engine.run(&[]).unwrap().is_empty());
        assert!(engine.run_serial(&[]).unwrap().is_empty());
    }

    #[test]
    fn engine_exposes_index_spec_and_config() {
        let (data, _) = workload(0xE48, 4, 0, 8);
        let spec = JoinSpec::exact(0.5, JoinVariant::Signed).unwrap();
        let engine = JoinEngine::with_config(
            BruteForceMipsIndex::new(data, spec),
            EngineConfig::with_threads(3),
        );
        assert_eq!(engine.spec(), spec);
        assert_eq!(engine.config().threads, 3);
        assert_eq!(engine.index().len(), 4);
        assert_eq!(engine.into_index().len(), 4);
    }

    #[test]
    fn errors_from_workers_propagate() {
        let (data, _) = workload(0xE49, 20, 0, 8);
        let spec = JoinSpec::exact(0.2, JoinVariant::Signed).unwrap();
        let engine = JoinEngine::with_config(
            BruteForceMipsIndex::new(data, spec),
            EngineConfig {
                threads: 4,
                chunk_size: 2,
            },
        );
        // Dimension-mismatched queries must surface the underlying error.
        let bad: Vec<DenseVector> = (0..16).map(|_| DenseVector::from(&[1.0][..])).collect();
        assert!(engine.run(&bad).is_err());
        assert!(engine.run_serial(&bad).is_err());
    }
}
