//! Approximate `(cs, s)` joins assembled from the search structures.
//!
//! A join is "build an index over `P`, query it with every `q ∈ Q`" (the reduction the
//! paper uses throughout: a subquadratic-query index immediately gives a subquadratic
//! join). Three joins are provided, one per Section 4 data structure:
//!
//! * [`alsh_join`] — the Section 4.1 asymmetric-LSH index ([`AlshMipsIndex`]);
//! * [`symmetric_join`] — the Section 4.2 symmetric LSH ([`SymmetricLshMips`]);
//! * [`sketch_join`] — the Section 4.3 linear-sketch structure
//!   ([`crate::mips::SketchMipsAdapter`] over `ips-sketch`);
//!
//! plus [`index_join`], the generic driver that works with any [`MipsIndex`]. All four
//! entry points build (or borrow) an index and hand the query set to
//! [`JoinEngine::run`] — the unified parallel, chunk-batched driver — so they share one
//! scheduling, batching and result-assembly path. Every reported pair carries its exact
//! inner product, and the engine never reports a pair below `cs`, so the outputs
//! satisfy the validity half of Definition 1 by construction; recall is what the
//! experiments measure.
//!
//! Each `*_join` function has an `*_engine` sibling returning the configured
//! [`JoinEngine`] instead of running it, for callers that want to reuse the index
//! across query batches or pick a custom [`EngineConfig`]. Callers that do not
//! want to pick a strategy at all should use [`crate::planner::auto_join`], which
//! estimates each strategy's cost on the workload and dispatches the winner
//! through these same entry points.
//!
//! **These free functions are the legacy surface.** New code should prefer the
//! fluent [`crate::facade::JoinBuilder`] (`Join::data(d).queries(q)…run()`),
//! which unifies all of them behind one typed entry point; every `*_join`
//! function here is now a thin shim over that builder and remains
//! bit-identical to its pre-facade behaviour (see `MIGRATION.md`).
//!
//! # Contract
//!
//! Every entry point honours the validity half of Definition 1 by construction —
//! no reported pair falls below `cs` — and only ever *misses* promised queries;
//! see the [`JoinSpec`](crate::problem::JoinSpec#validity-contract) rustdoc for
//! the full contract. Engine semantics note: an **empty query set** joins to an
//! empty result across all entry points (the seed's sketch path used to reject
//! it; the engine unified the behaviour). An empty *data* set still fails at
//! index construction or on the first search, as before.

use crate::asymmetric::{AlshMipsIndex, AlshParams};
use crate::engine::{EngineConfig, JoinEngine};
use crate::error::Result;
use crate::facade::{Join, Strategy};
use crate::mips::{MipsIndex, SketchMipsAdapter};
use crate::problem::{JoinSpec, MatchPair};
use crate::symmetric::{SymmetricLshMips, SymmetricParams};
use ips_linalg::DenseVector;
use ips_sketch::linf_mips::MaxIpConfig;
use rand::Rng;

/// Runs a `(cs, s)` join through an already-built [`MipsIndex`].
///
/// Legacy shim: equivalent to `JoinEngine::new(index).run(queries)`, which is
/// also the execution core every [`crate::facade::JoinBuilder`] run ends in.
pub fn index_join<I: MipsIndex + Sync>(
    index: &I,
    queries: &[DenseVector],
) -> Result<Vec<MatchPair>> {
    JoinEngine::new(index).run(queries)
}

/// Builds the Section 4.1 asymmetric-LSH index over `data` and wraps it in an engine.
pub fn alsh_engine<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    spec: JoinSpec,
    params: AlshParams,
    config: EngineConfig,
) -> Result<JoinEngine<AlshMipsIndex>> {
    alsh_engine_scored(
        rng,
        data,
        spec,
        params,
        config,
        crate::kernel::ScoringOptions::default(),
    )
}

/// [`alsh_engine`] with a scoring-kernel selection: `quantized=true` enables
/// the cheap candidate-scoring kernel (identical results — see
/// [`crate::kernel`]). The default options are exactly [`alsh_engine`].
pub fn alsh_engine_scored<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    spec: JoinSpec,
    params: AlshParams,
    config: EngineConfig,
    scoring: crate::kernel::ScoringOptions,
) -> Result<JoinEngine<AlshMipsIndex>> {
    let mut index = AlshMipsIndex::build(rng, data.to_vec(), spec, params)?;
    index.set_scoring(scoring)?;
    Ok(JoinEngine::with_config(index, config))
}

/// The Section 4.1 join: builds an [`AlshMipsIndex`] over `data` and queries it with
/// every element of `queries`.
///
/// Legacy shim over [`crate::facade::JoinBuilder`] (bit-identical given the
/// same RNG state; proptested in `tests/tests/proptest_facade.rs`).
pub fn alsh_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    params: AlshParams,
) -> Result<Vec<MatchPair>> {
    Ok(Join::data(data)
        .queries(queries)
        .spec(spec)
        .strategy(Strategy::Alsh)
        .alsh_params(params)
        .run_with_rng(rng)?
        .matches)
}

/// Builds the Section 4.2 symmetric-LSH index over `data` and wraps it in an engine.
pub fn symmetric_engine<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    spec: JoinSpec,
    params: SymmetricParams,
    config: EngineConfig,
) -> Result<JoinEngine<SymmetricLshMips>> {
    symmetric_engine_scored(
        rng,
        data,
        spec,
        params,
        config,
        crate::kernel::ScoringOptions::default(),
    )
}

/// [`symmetric_engine`] with a scoring-kernel selection: `quantized=true`
/// enables the cheap candidate-scoring kernel (identical results — see
/// [`crate::kernel`]). The default options are exactly [`symmetric_engine`].
pub fn symmetric_engine_scored<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    spec: JoinSpec,
    params: SymmetricParams,
    config: EngineConfig,
    scoring: crate::kernel::ScoringOptions,
) -> Result<JoinEngine<SymmetricLshMips>> {
    let mut index = SymmetricLshMips::build(rng, data.to_vec(), spec, params)?;
    index.set_scoring(scoring)?;
    Ok(JoinEngine::with_config(index, config))
}

/// The Section 4.2 join: symmetric LSH over a shared unit-ball domain.
///
/// Legacy shim over [`crate::facade::JoinBuilder`] (bit-identical given the
/// same RNG state; proptested in `tests/tests/proptest_facade.rs`).
pub fn symmetric_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    params: SymmetricParams,
) -> Result<Vec<MatchPair>> {
    Ok(Join::data(data)
        .queries(queries)
        .spec(spec)
        .strategy(Strategy::Symmetric)
        .symmetric_params(params)
        .run_with_rng(rng)?
        .matches)
}

/// Builds the Section 4.3 sketch structure over `data` and wraps it in an engine.
pub fn sketch_engine<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    spec: JoinSpec,
    config: MaxIpConfig,
    leaf_size: usize,
    engine_config: EngineConfig,
) -> Result<JoinEngine<SketchMipsAdapter>> {
    let index = SketchMipsAdapter::build(rng, data.to_vec(), spec, config, leaf_size)?;
    Ok(JoinEngine::with_config(index, engine_config))
}

/// The Section 4.3 join: the unsigned `(cs, s)` join computed through the linear-sketch
/// MIPS structure of `ips-sketch`. The spec's variant is ignored — the sketch structure
/// is inherently unsigned (it estimates `‖Aq‖_∞`).
///
/// Legacy shim over [`crate::facade::JoinBuilder`] (bit-identical given the
/// same RNG state; proptested in `tests/tests/proptest_facade.rs`).
pub fn sketch_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    config: MaxIpConfig,
    leaf_size: usize,
) -> Result<Vec<MatchPair>> {
    Ok(Join::data(data)
        .queries(queries)
        .spec(spec)
        .strategy(Strategy::Sketch)
        .sketch_config(config)
        .sketch_leaf_size(leaf_size)
        .run_with_rng(rng)?
        .matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::problem::{evaluate_join, JoinVariant};
    use ips_datagen::planted::{PlantedConfig, PlantedInstance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x10B5)
    }

    fn planted(rng: &mut StdRng) -> PlantedInstance {
        PlantedInstance::generate(
            rng,
            PlantedConfig {
                data: 250,
                queries: 30,
                dim: 24,
                background_scale: 0.05,
                planted_ip: 0.85,
                planted: 6,
            },
        )
        .unwrap()
    }

    #[test]
    fn alsh_join_recovers_planted_pairs() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let pairs = alsh_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            AlshParams::default(),
        )
        .unwrap();
        let reported: Vec<(usize, usize)> = pairs
            .iter()
            .map(|p| (p.data_index, p.query_index))
            .collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(recall >= 0.8, "ALSH join recall too low: {recall}");
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid, "ALSH join reported an invalid pair");
    }

    #[test]
    fn sketch_join_recovers_planted_pairs() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.5, JoinVariant::Unsigned).unwrap();
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 11,
            rows: None,
        };
        let pairs = sketch_join(&mut r, inst.data(), inst.queries(), spec, config, 8).unwrap();
        let reported: Vec<(usize, usize)> = pairs
            .iter()
            .map(|p| (p.data_index, p.query_index))
            .collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(recall >= 0.8, "sketch join recall too low: {recall}");
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid, "sketch join reported an invalid pair");
    }

    #[test]
    fn joins_agree_with_brute_force_on_which_queries_have_partners() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let exact = brute_force_join(inst.data(), inst.queries(), &spec).unwrap();
        let exact_queries: std::collections::HashSet<usize> =
            exact.iter().map(|p| p.query_index).collect();
        // Every planted query is found by brute force.
        for &(_, qi) in inst.planted_pairs() {
            assert!(exact_queries.contains(&qi));
        }
        // The approximate joins may only report queries among those (no false answers
        // above cs exist for other queries in this instance because the background is
        // far below cs).
        let pairs = alsh_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            AlshParams::default(),
        )
        .unwrap();
        for p in &pairs {
            assert!(exact_queries.contains(&p.query_index));
        }
    }

    #[test]
    fn empty_query_set_joins_to_empty_everywhere() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Unsigned).unwrap();
        let index = crate::mips::BruteForceMipsIndex::new(inst.data().to_vec(), spec);
        assert!(index_join(&index, &[]).unwrap().is_empty());
        assert!(
            alsh_join(&mut r, inst.data(), &[], spec, AlshParams::default())
                .unwrap()
                .is_empty()
        );
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 5,
            rows: None,
        };
        assert!(sketch_join(&mut r, inst.data(), &[], spec, config, 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn symmetric_join_runs_on_shared_domain() {
        let mut r = rng();
        // Small instance: symmetric construction is heavier due to the tag dimension.
        let inst = PlantedInstance::generate(
            &mut r,
            PlantedConfig {
                data: 60,
                queries: 8,
                dim: 12,
                background_scale: 0.05,
                planted_ip: 0.9,
                planted: 3,
            },
        )
        .unwrap();
        let spec = JoinSpec::new(0.8, 0.5, JoinVariant::Signed).unwrap();
        let pairs = symmetric_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            SymmetricParams::default(),
        )
        .unwrap();
        let reported: Vec<(usize, usize)> = pairs
            .iter()
            .map(|p| (p.data_index, p.query_index))
            .collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(
            recall >= 2.0 / 3.0,
            "symmetric join recall too low: {recall}"
        );
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid);
    }
}
