//! Approximate `(cs, s)` joins assembled from the search structures.
//!
//! A join is "build an index over `P`, query it with every `q ∈ Q`" (the reduction the
//! paper uses throughout: a subquadratic-query index immediately gives a subquadratic
//! join). Three joins are provided, one per Section 4 data structure:
//!
//! * [`alsh_join`] — the Section 4.1 asymmetric-LSH index ([`AlshMipsIndex`]);
//! * [`symmetric_join`] — the Section 4.2 symmetric LSH ([`SymmetricLshMips`]);
//! * [`sketch_join`] — the Section 4.3 linear-sketch structure (delegating to
//!   `ips-sketch`);
//!
//! plus [`index_join`], the generic driver that works with any [`MipsIndex`]. Every
//! reported pair carries its exact inner product, and the generic driver never reports a
//! pair below `cs`, so the outputs satisfy the validity half of Definition 1 by
//! construction; recall is what the experiments measure.

use crate::asymmetric::{AlshMipsIndex, AlshParams};
use crate::error::Result;
use crate::mips::MipsIndex;
use crate::problem::{JoinSpec, MatchPair};
use crate::symmetric::{SymmetricLshMips, SymmetricParams};
use ips_linalg::DenseVector;
use ips_sketch::join::sketch_unsigned_join;
use ips_sketch::linf_mips::MaxIpConfig;
use rand::Rng;

/// Runs a `(cs, s)` join through an already-built [`MipsIndex`].
pub fn index_join<I: MipsIndex>(index: &I, queries: &[DenseVector]) -> Result<Vec<MatchPair>> {
    let mut out = Vec::new();
    for (j, q) in queries.iter().enumerate() {
        if let Some(hit) = index.search(q)? {
            out.push(MatchPair {
                data_index: hit.data_index,
                query_index: j,
                inner_product: hit.inner_product,
            });
        }
    }
    Ok(out)
}

/// The Section 4.1 join: builds an [`AlshMipsIndex`] over `data` and queries it with
/// every element of `queries`.
pub fn alsh_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    params: AlshParams,
) -> Result<Vec<MatchPair>> {
    let index = AlshMipsIndex::build(rng, data.to_vec(), spec, params)?;
    index_join(&index, queries)
}

/// The Section 4.2 join: symmetric LSH over a shared unit-ball domain.
pub fn symmetric_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    params: SymmetricParams,
) -> Result<Vec<MatchPair>> {
    let index = SymmetricLshMips::build(rng, data.to_vec(), spec, params)?;
    index_join(&index, queries)
}

/// The Section 4.3 join: the unsigned `(cs, s)` join computed through the linear-sketch
/// MIPS structure of `ips-sketch`. The spec's variant is ignored — the sketch structure
/// is inherently unsigned (it estimates `‖Aq‖_∞`).
pub fn sketch_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
    config: MaxIpConfig,
    leaf_size: usize,
) -> Result<Vec<MatchPair>> {
    let pairs = sketch_unsigned_join(rng, data, queries, spec.relaxed_threshold(), config, leaf_size)?;
    Ok(pairs
        .into_iter()
        .map(|p| MatchPair {
            data_index: p.data_index,
            query_index: p.query_index,
            inner_product: p.inner_product,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::problem::{evaluate_join, JoinVariant};
    use ips_datagen::planted::{PlantedConfig, PlantedInstance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x10B5)
    }

    fn planted(rng: &mut StdRng) -> PlantedInstance {
        PlantedInstance::generate(
            rng,
            PlantedConfig {
                data: 250,
                queries: 30,
                dim: 24,
                background_scale: 0.05,
                planted_ip: 0.85,
                planted: 6,
            },
        )
        .unwrap()
    }

    #[test]
    fn alsh_join_recovers_planted_pairs() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let pairs = alsh_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            AlshParams::default(),
        )
        .unwrap();
        let reported: Vec<(usize, usize)> =
            pairs.iter().map(|p| (p.data_index, p.query_index)).collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(recall >= 0.8, "ALSH join recall too low: {recall}");
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid, "ALSH join reported an invalid pair");
    }

    #[test]
    fn sketch_join_recovers_planted_pairs() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.5, JoinVariant::Unsigned).unwrap();
        let config = MaxIpConfig {
            kappa: 2.0,
            copies: 11,
            rows: None,
        };
        let pairs = sketch_join(&mut r, inst.data(), inst.queries(), spec, config, 8).unwrap();
        let reported: Vec<(usize, usize)> =
            pairs.iter().map(|p| (p.data_index, p.query_index)).collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(recall >= 0.8, "sketch join recall too low: {recall}");
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid, "sketch join reported an invalid pair");
    }

    #[test]
    fn joins_agree_with_brute_force_on_which_queries_have_partners() {
        let mut r = rng();
        let inst = planted(&mut r);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let exact = brute_force_join(inst.data(), inst.queries(), &spec).unwrap();
        let exact_queries: std::collections::HashSet<usize> =
            exact.iter().map(|p| p.query_index).collect();
        // Every planted query is found by brute force.
        for &(_, qi) in inst.planted_pairs() {
            assert!(exact_queries.contains(&qi));
        }
        // The approximate joins may only report queries among those (no false answers
        // above cs exist for other queries in this instance because the background is
        // far below cs).
        let pairs = alsh_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            AlshParams::default(),
        )
        .unwrap();
        for p in &pairs {
            assert!(exact_queries.contains(&p.query_index));
        }
    }

    #[test]
    fn symmetric_join_runs_on_shared_domain() {
        let mut r = rng();
        // Small instance: symmetric construction is heavier due to the tag dimension.
        let inst = PlantedInstance::generate(
            &mut r,
            PlantedConfig {
                data: 60,
                queries: 8,
                dim: 12,
                background_scale: 0.05,
                planted_ip: 0.9,
                planted: 3,
            },
        )
        .unwrap();
        let spec = JoinSpec::new(0.8, 0.5, JoinVariant::Signed).unwrap();
        let pairs = symmetric_join(
            &mut r,
            inst.data(),
            inst.queries(),
            spec,
            SymmetricParams::default(),
        )
        .unwrap();
        let reported: Vec<(usize, usize)> =
            pairs.iter().map(|p| (p.data_index, p.query_index)).collect();
        let recall = inst.recall(&reported, spec.relaxed_threshold());
        assert!(recall >= 2.0 / 3.0, "symmetric join recall too low: {recall}");
        let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
        assert!(valid);
    }
}
