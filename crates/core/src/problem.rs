//! Problem definitions: signed and unsigned, exact and `(cs, s)`-approximate joins.
//!
//! Definition 1 of the paper: given `P, Q ⊆ R^d`, `0 < c < 1` and `s > 0`, the signed
//! `(cs, s)` join returns, for each `q ∈ Q`, at least one pair `(p, q)` with `pᵀq ≥ cs`
//! *provided* some `p' ∈ P` has `p'ᵀq ≥ s`; no guarantee is given for queries without
//! such a partner. The unsigned variant replaces inner products by absolute values.
//! The indexing (search) versions are the same statements for a single query at a time.
//!
//! The unsigned join reduces to two signed joins — against `Q` and against `−Q` —
//! followed by filtering on the absolute value; [`negate_queries`] and
//! [`JoinVariant::admits`] provide the pieces of that reduction.

use crate::error::{CoreError, Result};
use ips_linalg::DenseVector;
use serde::{Deserialize, Serialize};

/// Whether a join/search thresholds the inner product itself or its absolute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinVariant {
    /// Threshold `pᵀq ≥ s` — "similar or preferred items with a positive correlation".
    Signed,
    /// Threshold `|pᵀq| ≥ s` — "even a large negative correlation is of interest".
    Unsigned,
}

impl JoinVariant {
    /// The effective similarity value of an inner product under this variant.
    pub fn value(self, inner_product: f64) -> f64 {
        match self {
            JoinVariant::Signed => inner_product,
            JoinVariant::Unsigned => inner_product.abs(),
        }
    }

    /// Returns `true` when an inner product passes the given threshold under this
    /// variant.
    pub fn admits(self, inner_product: f64, threshold: f64) -> bool {
        self.value(inner_product) >= threshold
    }
}

/// The parameters of a `(cs, s)` approximate join or search.
///
/// # Validity contract
///
/// Definition 1 splits a join's guarantee into two halves, and every index and
/// join entry point in this workspace honours the first *by construction*:
///
/// * **Validity** — a reported pair `(p, q)` always clears the *relaxed*
///   threshold: `variant.value(pᵀq) ≥ cs` (see [`JoinSpec::acceptable`]).
///   Indexes re-score their candidates against the exact inner product before
///   reporting, so no approximation error can leak a below-`cs` pair into the
///   output. This holds for *every* strategy, including the natively unsigned
///   Section 4.3 sketch under a [`JoinVariant::Signed`] spec (the adapter
///   finds candidates by absolute value but only reports them when the signed
///   product clears `cs`).
/// * **Recall** — an answer is only *promised* for queries that have a partner
///   clearing the full threshold `s` (see [`JoinSpec::satisfies_promise`]).
///   The exact strategies answer every promised query; the approximate ones
///   may miss (that is precisely what the experiments measure), but a miss is
///   the only permitted failure mode.
///
/// [`evaluate_join`] scores both halves against ground truth.
///
/// # Empty inputs
///
/// Since the joins were unified behind [`crate::engine::JoinEngine`], an empty
/// *query* set joins to an empty result across every entry point — including
/// the sketch path, which used to reject it. An empty *data* set still fails
/// (at index construction or on the first search): there is nothing to build
/// an index over, and `(cs, s)` search over an empty set is undefined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// The promise threshold `s > 0`.
    pub threshold: f64,
    /// The approximation factor `c ∈ (0, 1]`; `c = 1` makes the join exact.
    pub approximation: f64,
    /// Signed or unsigned semantics.
    pub variant: JoinVariant,
}

impl JoinSpec {
    /// Creates a spec, validating `s > 0` and `0 < c ≤ 1`.
    pub fn new(threshold: f64, approximation: f64, variant: JoinVariant) -> Result<Self> {
        if !(threshold > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "threshold",
                reason: format!("threshold s must be positive, got {threshold}"),
            });
        }
        if !(approximation > 0.0 && approximation <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "approximation",
                reason: format!("approximation c must lie in (0,1], got {approximation}"),
            });
        }
        Ok(Self {
            threshold,
            approximation,
            variant,
        })
    }

    /// Convenience constructor for an exact (`c = 1`) join.
    pub fn exact(threshold: f64, variant: JoinVariant) -> Result<Self> {
        Self::new(threshold, 1.0, variant)
    }

    /// The relaxed threshold `cs` that reported pairs must clear.
    pub fn relaxed_threshold(&self) -> f64 {
        self.approximation * self.threshold
    }

    /// Returns `true` when an inner product satisfies the *promise* threshold `s`.
    pub fn satisfies_promise(&self, inner_product: f64) -> bool {
        self.variant.admits(inner_product, self.threshold)
    }

    /// Returns `true` when an inner product is acceptable to report (clears `cs`).
    pub fn acceptable(&self, inner_product: f64) -> bool {
        self.variant.admits(inner_product, self.relaxed_threshold())
    }
}

/// One pair reported by a join: indices into the data and query sets plus the exact
/// inner product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchPair {
    /// Index into the data set `P`.
    pub data_index: usize,
    /// Index into the query set `Q`.
    pub query_index: usize,
    /// The exact inner product `pᵀq`.
    pub inner_product: f64,
}

/// Negates every query vector — the first half of the unsigned-to-signed reduction
/// described in the paper's problem-definition section.
pub fn negate_queries(queries: &[DenseVector]) -> Vec<DenseVector> {
    queries.iter().map(DenseVector::negated).collect()
}

/// Evaluates how well a reported pair set satisfies Definition 1 against ground truth:
/// returns `(recall, valid)` where `recall` is the fraction of queries *with* a partner
/// above `s` for which some pair clearing `cs` was reported, and `valid` is `true` when
/// every reported pair indeed clears `cs`.
pub fn evaluate_join(
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: &JoinSpec,
    reported: &[MatchPair],
) -> Result<(f64, bool)> {
    let mut valid = true;
    for pair in reported {
        let p = data
            .get(pair.data_index)
            .ok_or(CoreError::InvalidParameter {
                name: "reported",
                reason: format!("data index {} out of range", pair.data_index),
            })?;
        let q = queries
            .get(pair.query_index)
            .ok_or(CoreError::InvalidParameter {
                name: "reported",
                reason: format!("query index {} out of range", pair.query_index),
            })?;
        let ip = p.dot(q)?;
        if !spec.acceptable(ip) {
            valid = false;
        }
    }
    let mut promised = 0usize;
    let mut answered = 0usize;
    for (j, q) in queries.iter().enumerate() {
        let has_partner = data
            .iter()
            .map(|p| p.dot(q))
            .collect::<std::result::Result<Vec<_>, _>>()?
            .into_iter()
            .any(|ip| spec.satisfies_promise(ip));
        if has_partner {
            promised += 1;
            let got = reported.iter().any(|pair| {
                pair.query_index == j
                    && data
                        .get(pair.data_index)
                        .and_then(|p| p.dot(q).ok())
                        .map(|ip| spec.acceptable(ip))
                        .unwrap_or(false)
            });
            if got {
                answered += 1;
            }
        }
    }
    let recall = if promised == 0 {
        1.0
    } else {
        answered as f64 / promised as f64
    };
    Ok((recall, valid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(xs: &[f64]) -> DenseVector {
        DenseVector::from(xs)
    }

    #[test]
    fn spec_validation() {
        assert!(JoinSpec::new(0.0, 0.5, JoinVariant::Signed).is_err());
        assert!(JoinSpec::new(1.0, 0.0, JoinVariant::Signed).is_err());
        assert!(JoinSpec::new(1.0, 1.5, JoinVariant::Signed).is_err());
        let spec = JoinSpec::new(2.0, 0.5, JoinVariant::Unsigned).unwrap();
        assert_eq!(spec.relaxed_threshold(), 1.0);
        let exact = JoinSpec::exact(1.0, JoinVariant::Signed).unwrap();
        assert_eq!(exact.approximation, 1.0);
    }

    #[test]
    fn variant_semantics() {
        assert!(JoinVariant::Signed.admits(1.5, 1.0));
        assert!(!JoinVariant::Signed.admits(-1.5, 1.0));
        assert!(JoinVariant::Unsigned.admits(-1.5, 1.0));
        assert_eq!(JoinVariant::Signed.value(-2.0), -2.0);
        assert_eq!(JoinVariant::Unsigned.value(-2.0), 2.0);
    }

    #[test]
    fn promise_and_acceptance() {
        let spec = JoinSpec::new(1.0, 0.5, JoinVariant::Signed).unwrap();
        assert!(spec.satisfies_promise(1.2));
        assert!(!spec.satisfies_promise(0.7));
        assert!(spec.acceptable(0.7));
        assert!(!spec.acceptable(0.4));
        let unsigned = JoinSpec::new(1.0, 0.5, JoinVariant::Unsigned).unwrap();
        assert!(unsigned.satisfies_promise(-1.2));
        assert!(unsigned.acceptable(-0.6));
    }

    #[test]
    fn negate_queries_flips_signs() {
        let qs = vec![dv(&[1.0, -2.0]), dv(&[0.5, 0.0])];
        let negated = negate_queries(&qs);
        assert_eq!(negated[0].as_slice(), &[-1.0, 2.0]);
        assert_eq!(negated[1].as_slice(), &[-0.5, 0.0]);
    }

    #[test]
    fn unsigned_join_via_two_signed_joins() {
        // The reduction: a pair with large |ip| shows up in the signed join against Q or
        // against −Q.
        let p = dv(&[1.0, 0.0]);
        let q_pos = dv(&[0.9, 0.1]);
        let q_neg = dv(&[-0.9, 0.1]);
        let spec = JoinSpec::new(0.5, 1.0, JoinVariant::Signed).unwrap();
        assert!(spec.satisfies_promise(p.dot(&q_pos).unwrap()));
        assert!(!spec.satisfies_promise(p.dot(&q_neg).unwrap()));
        assert!(spec.satisfies_promise(p.dot(&q_neg.negated()).unwrap()));
    }

    #[test]
    fn evaluate_join_scores_recall_and_validity() {
        let data = vec![dv(&[1.0, 0.0]), dv(&[0.0, 1.0])];
        let queries = vec![dv(&[1.0, 0.0]), dv(&[0.0, 0.2])];
        let spec = JoinSpec::new(0.9, 0.5, JoinVariant::Signed).unwrap();
        // Query 0 has a partner above s=0.9 (data 0); query 1 does not.
        let perfect = vec![MatchPair {
            data_index: 0,
            query_index: 0,
            inner_product: 1.0,
        }];
        let (recall, valid) = evaluate_join(&data, &queries, &spec, &perfect).unwrap();
        assert_eq!(recall, 1.0);
        assert!(valid);
        let (recall, _) = evaluate_join(&data, &queries, &spec, &[]).unwrap();
        assert_eq!(recall, 0.0);
        // A reported pair that does not clear cs invalidates the answer.
        let bogus = vec![MatchPair {
            data_index: 1,
            query_index: 0,
            inner_product: 0.0,
        }];
        let (_, valid) = evaluate_join(&data, &queries, &spec, &bogus).unwrap();
        assert!(!valid);
        // Out-of-range indices are rejected.
        let broken = vec![MatchPair {
            data_index: 9,
            query_index: 0,
            inner_product: 0.0,
        }];
        assert!(evaluate_join(&data, &queries, &spec, &broken).is_err());
    }
}
