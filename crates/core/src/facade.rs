//! The fluent join facade: one typed entry point over every join strategy.
//!
//! The workspace grew four join families (brute force, the Section 4.1 ALSH
//! index, the Section 4.2 symmetric LSH, the Section 4.3 sketch structure) plus
//! the cost-based planner, and with them nine positional free functions. This
//! module is the single surface that replaces them for callers: build a
//! [`JoinBuilder`] with [`Join::data`], describe the workload and the `(cs, s)`
//! contract with fluent setters, and [`JoinBuilder::run`] it:
//!
//! ```
//! use ips_core::facade::{Join, Strategy};
//! use ips_datagen::planted::{PlantedConfig, PlantedInstance};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let inst = PlantedInstance::generate(&mut rng, PlantedConfig {
//!     data: 300, queries: 24, dim: 24,
//!     background_scale: 0.1, planted_ip: 0.85, planted: 4,
//! }).unwrap();
//!
//! let report = Join::data(inst.data())
//!     .queries(inst.queries())
//!     .threshold(0.8)
//!     .approximation(0.6)
//!     .strategy(Strategy::Auto)
//!     .threads(2)
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! println!("{} ran in {} ns, {} pairs", report.strategy, report.wall_ns,
//!          report.matches.len());
//! assert!(report.plan.is_some()); // Strategy::Auto attaches the planner's decision
//! ```
//!
//! # Determinism contract
//!
//! [`JoinBuilder::run`] seeds a [`rand::rngs::StdRng`] from [`JoinBuilder::seed`]
//! and dispatches through exactly the same engine-backed entry points the legacy
//! free functions use ([`crate::join::alsh_engine`] and friends), so its output
//! is **bit-identical** to the legacy call with the same parameters and a
//! same-seeded RNG — the property `tests/tests/proptest_facade.rs` pins for all
//! four fixed strategies and [`Strategy::Auto`]. Callers that thread their own
//! RNG (the legacy shims themselves do) use [`JoinBuilder::run_with_rng`].
//!
//! The legacy free functions (`alsh_join`, `sketch_join`, `auto_join`, …) still
//! exist as thin shims over this builder; see `MIGRATION.md` at the repository
//! root for the mapping.

use crate::asymmetric::AlshParams;
use crate::brute::BorrowedBruteIndex;
use crate::engine::{EngineConfig, JoinEngine};
use crate::error::{CoreError, Result};
use crate::kernel::{Dtype, ScoringOptions};
use crate::planner::{self, CostModel, JoinPlan, JoinPlanner, PlannerConfig, WorkloadStats};
use crate::problem::{JoinSpec, JoinVariant, MatchPair};
use crate::symmetric::SymmetricParams;
use ips_linalg::DenseVector;
use ips_sketch::linf_mips::MaxIpConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which join strategy a [`JoinBuilder`] dispatches — the four fixed families
/// plus [`Strategy::Auto`], which consults the cost-based [`JoinPlanner`].
///
/// This is the *selection* type of the facade; the planner's
/// [`planner::Strategy`] is the *decision* type (always concrete). Conversions
/// go both ways via [`From`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Let the cost-based planner pick the cheapest eligible strategy.
    #[default]
    Auto,
    /// The exact data-major quadratic scan ([`crate::brute`]).
    Brute,
    /// The Section 4.1 asymmetric-LSH index ([`crate::asymmetric`]).
    Alsh,
    /// The Section 4.2 symmetric LSH ([`crate::symmetric`]).
    Symmetric,
    /// The Section 4.3 linear-sketch structure (`ips-sketch`).
    Sketch,
}

impl Strategy {
    /// Every selectable strategy, `Auto` first.
    pub const ALL: [Strategy; 5] = [
        Strategy::Auto,
        Strategy::Brute,
        Strategy::Alsh,
        Strategy::Symmetric,
        Strategy::Sketch,
    ];

    /// The name used by the CLI (`algorithm=`) and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Brute => "brute",
            Strategy::Alsh => "alsh",
            Strategy::Symmetric => "symmetric",
            Strategy::Sketch => "sketch",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "auto" => Ok(Strategy::Auto),
            "brute" => Ok(Strategy::Brute),
            "alsh" => Ok(Strategy::Alsh),
            "symmetric" => Ok(Strategy::Symmetric),
            "sketch" => Ok(Strategy::Sketch),
            other => Err(CoreError::InvalidParameter {
                name: "strategy",
                reason: format!(
                    "unknown strategy `{other}`; expected auto, brute, alsh, symmetric or sketch"
                ),
            }),
        }
    }
}

impl From<planner::Strategy> for Strategy {
    fn from(s: planner::Strategy) -> Self {
        match s {
            planner::Strategy::BruteForce => Strategy::Brute,
            planner::Strategy::Alsh => Strategy::Alsh,
            planner::Strategy::Symmetric => Strategy::Symmetric,
            planner::Strategy::Sketch => Strategy::Sketch,
        }
    }
}

/// What a [`JoinBuilder::run`] produced: the matches plus everything a caller
/// needs to report on the run without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// The reported pairs; every one clears the relaxed threshold `cs`
    /// (the validity half of Definition 1, by construction).
    pub matches: Vec<MatchPair>,
    /// The concrete strategy that ran — for [`Strategy::Auto`] this is the
    /// planner's choice, otherwise the requested strategy itself.
    pub strategy: planner::Strategy,
    /// The cost-based plan, present only under [`Strategy::Auto`].
    pub plan: Option<JoinPlan>,
    /// The sampled workload statistics the plan was based on, present only
    /// under [`Strategy::Auto`] (manual strategies never sample the workload —
    /// that keeps them bit-identical to the legacy entry points).
    pub stats: Option<WorkloadStats>,
    /// End-to-end wall-clock nanoseconds of the dispatch (planning included
    /// under [`Strategy::Auto`]).
    pub wall_ns: u128,
}

/// Entry point of the fluent facade: [`Join::data`] starts a [`JoinBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct Join;

impl Join {
    /// Starts a builder over the data set `P` of the join.
    pub fn data(data: &[DenseVector]) -> JoinBuilder<'_> {
        JoinBuilder {
            data,
            queries: &[],
            threshold: None,
            approximation: 1.0,
            variant: JoinVariant::Signed,
            strategy: Strategy::Auto,
            alsh: AlshParams::default(),
            symmetric: SymmetricParams::default(),
            sketch: MaxIpConfig::default(),
            sketch_leaf_size: 16,
            engine: EngineConfig::default(),
            cost_model: CostModel::default(),
            scoring: ScoringOptions::default(),
            seed: 42,
        }
    }
}

/// The fluent join configuration; see the [module docs](self) for the contract
/// and an end-to-end example.
///
/// Defaults: `strategy` [`Strategy::Auto`], `approximation` 1.0 (exact),
/// `variant` [`JoinVariant::Signed`], per-family parameters at their
/// [`Default`]s, `seed` 42, engine schedule [`EngineConfig::default`]
/// (one worker per CPU, chunks of 32). Only the promise threshold `s` has no
/// default — [`JoinBuilder::run`] rejects a builder where neither
/// [`JoinBuilder::threshold`] nor [`JoinBuilder::spec`] was called.
#[derive(Debug, Clone)]
#[must_use = "a JoinBuilder does nothing until `run` (or `run_with_rng`) is called"]
pub struct JoinBuilder<'a> {
    data: &'a [DenseVector],
    queries: &'a [DenseVector],
    threshold: Option<f64>,
    approximation: f64,
    variant: JoinVariant,
    strategy: Strategy,
    alsh: AlshParams,
    symmetric: SymmetricParams,
    sketch: MaxIpConfig,
    sketch_leaf_size: usize,
    engine: EngineConfig,
    cost_model: CostModel,
    scoring: ScoringOptions,
    seed: u64,
}

impl<'a> JoinBuilder<'a> {
    /// The query set `Q` (default: empty, which joins to an empty result).
    pub fn queries(mut self, queries: &'a [DenseVector]) -> Self {
        self.queries = queries;
        self
    }

    /// The promise threshold `s > 0` of Definition 1. Required (unless
    /// [`JoinBuilder::spec`] supplies a whole spec).
    pub fn threshold(mut self, s: f64) -> Self {
        self.threshold = Some(s);
        self
    }

    /// The approximation factor `c ∈ (0, 1]`; reported pairs clear `cs`
    /// (default 1.0 — exact).
    pub fn approximation(mut self, c: f64) -> Self {
        self.approximation = c;
        self
    }

    /// Signed or unsigned inner-product semantics (default signed).
    pub fn variant(mut self, variant: JoinVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets threshold, approximation and variant from an existing validated
    /// [`JoinSpec`] in one call.
    pub fn spec(mut self, spec: JoinSpec) -> Self {
        self.threshold = Some(spec.threshold);
        self.approximation = spec.approximation;
        self.variant = spec.variant;
        self
    }

    /// Which strategy to dispatch (default [`Strategy::Auto`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// ALSH parameters used by [`Strategy::Alsh`] (and as the planner's ALSH
    /// candidate under [`Strategy::Auto`]).
    pub fn alsh_params(mut self, params: AlshParams) -> Self {
        self.alsh = params;
        self
    }

    /// Symmetric-LSH parameters used by [`Strategy::Symmetric`].
    pub fn symmetric_params(mut self, params: SymmetricParams) -> Self {
        self.symmetric = params;
        self
    }

    /// Extra query-directed probe buckets per table (see [`ips_lsh::probe`]),
    /// applied to both LSH families in one call (default 0 — classical
    /// single-bucket lookups, bit-identical to the pre-probing behaviour).
    ///
    /// Call **after** [`JoinBuilder::alsh_params`] / \
    /// [`JoinBuilder::symmetric_params`] if you set both — those setters
    /// replace the whole parameter structs, probes field included.
    pub fn probes(mut self, probes: usize) -> Self {
        self.alsh.probes = probes;
        self.symmetric.probes = probes;
        self
    }

    /// Sketch configuration used by [`Strategy::Sketch`].
    pub fn sketch_config(mut self, config: MaxIpConfig) -> Self {
        self.sketch = config;
        self
    }

    /// Leaf size of the sketch recovery tree (default 16).
    pub fn sketch_leaf_size(mut self, leaf_size: usize) -> Self {
        self.sketch_leaf_size = leaf_size;
        self
    }

    /// Worker threads of the [`JoinEngine`] (`0` = one per available CPU,
    /// the default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine.threads = threads;
        self
    }

    /// Queries per batched engine work unit (default 32).
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.engine.chunk_size = chunk_size;
        self
    }

    /// The whole engine schedule in one call.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The planner's calibrated cost constants (only consulted under
    /// [`Strategy::Auto`]).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Floating-point width of the brute-force candidate-scoring kernel
    /// (default [`Dtype::F64`], which is bit-identical to the legacy path).
    ///
    /// `Dtype::F32` scores each query against an `f32` tile of the data and
    /// exactly rescores the winner in `f64`, so every reported pair still
    /// clears the relaxed threshold `cs`; only near-ties (within `f32`
    /// rounding of each other) may resolve differently. Ignored when
    /// [`JoinBuilder::quantized`] is on — the quantized kernel is both cheaper
    /// and exact.
    pub fn dtype(mut self, dtype: Dtype) -> Self {
        self.scoring.dtype = dtype;
        self
    }

    /// Opt into the `i8` fixed-point candidate-scoring kernel with exact
    /// `f64` rescoring of the survivors (default off).
    ///
    /// The quantized pass is conservative — every true maximiser survives the
    /// prune and ties break identically under the exact rescore — so the final
    /// match set is **identical** to the pure `f64` path (a property
    /// `tests/tests/proptest_kernels.rs` pins for all four families).
    pub fn quantized(mut self, quantized: bool) -> Self {
        self.scoring.quantized = quantized;
        self
    }

    /// Both reduced-precision knobs in one call.
    pub fn scoring(mut self, scoring: ScoringOptions) -> Self {
        self.scoring = scoring;
        self
    }

    /// Seed of the [`StdRng`] that [`JoinBuilder::run`] dispatches with
    /// (default 42). Ignored by [`JoinBuilder::run_with_rng`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The validated `(cs, s)` spec this builder describes.
    pub fn build_spec(&self) -> Result<JoinSpec> {
        let threshold = self.threshold.ok_or_else(|| CoreError::InvalidParameter {
            name: "threshold",
            reason: "JoinBuilder needs a promise threshold: call .threshold(s) or .spec(spec)"
                .to_string(),
        })?;
        JoinSpec::new(threshold, self.approximation, self.variant)
    }

    /// Runs the join with a fresh [`StdRng`] seeded from [`JoinBuilder::seed`].
    pub fn run(self) -> Result<JoinReport> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_with_rng(&mut rng)
    }

    /// Runs the join drawing randomness from the caller's RNG — the
    /// entry point the legacy free functions shim through, and the one to use
    /// when bit-identical replay against such a function matters.
    pub fn run_with_rng<R: Rng + ?Sized>(self, rng: &mut R) -> Result<JoinReport> {
        let spec = self.build_spec()?;
        let start = std::time::Instant::now();
        let (matches, strategy, plan) = match self.strategy {
            Strategy::Auto => {
                let mut config = PlannerConfig::with_params(
                    self.alsh,
                    self.symmetric,
                    self.sketch,
                    self.sketch_leaf_size,
                    self.engine,
                );
                config.scoring = self.scoring;
                let planner = JoinPlanner {
                    config,
                    model: self.cost_model,
                };
                let plan = planner.plan(rng, self.data, self.queries, spec)?;
                let matches = plan.execute(rng, self.data, self.queries)?;
                (matches, plan.choice, Some(plan))
            }
            Strategy::Brute => {
                let engine = JoinEngine::with_config(
                    BorrowedBruteIndex::with_options(self.data, spec, self.scoring)?,
                    self.engine,
                );
                (
                    engine.run(self.queries)?,
                    planner::Strategy::BruteForce,
                    None,
                )
            }
            Strategy::Alsh => (
                crate::join::alsh_engine_scored(
                    rng,
                    self.data,
                    spec,
                    self.alsh,
                    self.engine,
                    self.scoring,
                )?
                .run(self.queries)?,
                planner::Strategy::Alsh,
                None,
            ),
            Strategy::Symmetric => (
                crate::join::symmetric_engine_scored(
                    rng,
                    self.data,
                    spec,
                    self.symmetric,
                    self.engine,
                    self.scoring,
                )?
                .run(self.queries)?,
                planner::Strategy::Symmetric,
                None,
            ),
            Strategy::Sketch => (
                crate::join::sketch_engine(
                    rng,
                    self.data,
                    spec,
                    self.sketch,
                    self.sketch_leaf_size,
                    self.engine,
                )?
                .run(self.queries)?,
                planner::Strategy::Sketch,
                None,
            ),
        };
        let wall_ns = start.elapsed().as_nanos();
        let stats = plan.as_ref().map(|p| p.stats.clone());
        Ok(JoinReport {
            matches,
            strategy,
            plan,
            stats,
            wall_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::evaluate_join;
    use ips_datagen::planted::{PlantedConfig, PlantedInstance};

    fn instance(seed: u64) -> PlantedInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        PlantedInstance::generate(
            &mut rng,
            PlantedConfig {
                data: 200,
                queries: 20,
                dim: 16,
                background_scale: 0.05,
                planted_ip: 0.85,
                planted: 5,
            },
        )
        .unwrap()
    }

    #[test]
    fn builder_requires_a_threshold() {
        let data = [DenseVector::from(&[0.5, 0.5][..])];
        let err = Join::data(&data).run().unwrap_err();
        assert!(err.to_string().contains("threshold"), "{err}");
    }

    #[test]
    fn builder_rejects_invalid_spec_values() {
        let data = [DenseVector::from(&[0.5, 0.5][..])];
        assert!(Join::data(&data).threshold(-1.0).run().is_err());
        assert!(Join::data(&data)
            .threshold(0.5)
            .approximation(1.5)
            .run()
            .is_err());
    }

    #[test]
    fn auto_attaches_plan_and_stats_and_is_valid() {
        let inst = instance(0xFACE);
        let report = Join::data(inst.data())
            .queries(inst.queries())
            .threshold(0.8)
            .approximation(0.6)
            .run()
            .unwrap();
        let plan = report.plan.as_ref().expect("auto attaches a plan");
        assert_eq!(plan.choice, report.strategy);
        assert_eq!(report.stats.as_ref().unwrap(), &plan.stats);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let (_, valid) =
            evaluate_join(inst.data(), inst.queries(), &spec, &report.matches).unwrap();
        assert!(valid);
    }

    #[test]
    fn manual_strategies_attach_no_plan() {
        let inst = instance(0xBEEF);
        for strategy in [Strategy::Brute, Strategy::Alsh, Strategy::Sketch] {
            let report = Join::data(inst.data())
                .queries(inst.queries())
                .threshold(0.8)
                .approximation(0.6)
                .strategy(strategy)
                .run()
                .unwrap();
            assert!(report.plan.is_none(), "{strategy} carried a plan");
            assert!(report.stats.is_none());
            assert_eq!(Strategy::from(report.strategy), strategy);
        }
    }

    #[test]
    fn run_is_reproducible_for_a_fixed_seed() {
        let inst = instance(0x5EED);
        let go = || {
            Join::data(inst.data())
                .queries(inst.queries())
                .threshold(0.8)
                .approximation(0.6)
                .strategy(Strategy::Alsh)
                .seed(9)
                .run()
                .unwrap()
                .matches
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.name());
        }
        assert!("nope".parse::<Strategy>().is_err());
        // The planner's concrete strategies map onto the facade's.
        for p in planner::Strategy::ALL {
            assert_eq!(Strategy::from(p).name(), p.name());
        }
    }

    #[test]
    fn quantized_scoring_matches_the_default_path_for_every_strategy() {
        let inst = instance(0xC0DE);
        for strategy in Strategy::ALL {
            let go = |quantized: bool| {
                Join::data(inst.data())
                    .queries(inst.queries())
                    .threshold(0.8)
                    .approximation(0.6)
                    .strategy(strategy)
                    .quantized(quantized)
                    .seed(3)
                    .run()
                    .unwrap()
                    .matches
            };
            assert_eq!(go(false), go(true), "{strategy}");
        }
    }

    #[test]
    fn f32_scoring_reports_valid_pairs() {
        let inst = instance(0xF32);
        let report = Join::data(inst.data())
            .queries(inst.queries())
            .threshold(0.8)
            .approximation(0.6)
            .strategy(Strategy::Brute)
            .dtype(Dtype::F32)
            .run()
            .unwrap();
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        let (_, valid) =
            evaluate_join(inst.data(), inst.queries(), &spec, &report.matches).unwrap();
        assert!(valid);
        assert!(!report.matches.is_empty());
    }

    #[test]
    fn probed_runs_stay_valid_and_zero_probes_is_bit_identical() {
        let inst = instance(0xBE5);
        let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
        for strategy in [Strategy::Alsh, Strategy::Symmetric] {
            let go = |probes: usize| {
                Join::data(inst.data())
                    .queries(inst.queries())
                    .threshold(0.8)
                    .approximation(0.6)
                    .strategy(strategy)
                    .probes(probes)
                    .seed(11)
                    .run()
                    .unwrap()
                    .matches
            };
            let baseline = go(0);
            let unprobed = Join::data(inst.data())
                .queries(inst.queries())
                .threshold(0.8)
                .approximation(0.6)
                .strategy(strategy)
                .seed(11)
                .run()
                .unwrap()
                .matches;
            assert_eq!(baseline, unprobed, "{strategy}: probes(0) must be a no-op");
            let probed = go(6);
            let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &probed).unwrap();
            assert!(valid, "{strategy}: probed matches must stay valid");
            for pair in &baseline {
                assert!(
                    probed.contains(pair),
                    "{strategy}: probing dropped a baseline match {pair:?}"
                );
            }
        }
    }

    #[test]
    fn empty_queries_join_to_empty_for_every_strategy() {
        let inst = instance(0xE);
        for strategy in Strategy::ALL {
            let report = Join::data(inst.data())
                .threshold(0.8)
                .approximation(0.6)
                .strategy(strategy)
                .run()
                .unwrap();
            assert!(report.matches.is_empty(), "{strategy}");
        }
    }
}
