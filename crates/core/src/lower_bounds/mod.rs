//! Lower-bound machinery (Section 3 of the paper).
//!
//! The section's main theorem (Theorem 3) bounds the achievable collision-probability
//! gap `P1 − P2` of *any* `(s, cs, P1, P2)`-asymmetric LSH for inner product similarity,
//! via a purely combinatorial argument (Lemma 4) applied to explicit "hard" sequences of
//! data and query vectors. This module reproduces all three ingredients:
//!
//! * [`sequences`] — the three hard-sequence constructions (geometric 1-d, arithmetic
//!   2-d, and the nearly-orthogonal binary-tree construction), each producing sequences
//!   `P, Q` with the staircase property `qᵢᵀpⱼ ≥ s` iff `j ≥ i`;
//! * [`grid`] — the Lemma 4 grid: the partition of the lower triangle of the collision
//!   matrix into exponentially sized squares (Figure 1), the mass-accounting bound
//!   `P1 − P2 ≤ 1/(8·log n)`, and helpers for rendering Figure 1;
//! * [`gap`] — the closed-form gap bounds of Theorem 3 as functions of `(d, s, c, U)`.

pub mod gap;
pub mod grid;
pub mod sequences;

pub use gap::{gap_bound_case1, gap_bound_case2, gap_bound_case3};
pub use grid::{gap_upper_bound, grid_squares, GridSquare};
pub use sequences::{hard_sequence_case1, hard_sequence_case2, hard_sequence_case3, HardSequence};
