//! Closed-form gap bounds (Theorem 3).
//!
//! Each case of Theorem 3 combines a hard-sequence construction of a certain length `n`
//! with Lemma 4's `P1 − P2 ≤ 1/(8·log n)`. The functions here evaluate the resulting
//! bounds directly from the parameters `(d, s, c, U)`, mirroring the statement of the
//! theorem:
//!
//! 1. `P1 − P2 = O(1 / log(d·log_{1/c}(U/s)))` for signed and unsigned IPS, valid when
//!    `s ≤ min(cU, U/(4√d))`;
//! 2. `P1 − P2 = O(1 / log(d·√(U/(s(1−c)))))` for signed IPS, valid when `d ≥ 2` and
//!    `s ≤ U/(2d)`;
//! 3. `P1 − P2 = O(√(s/U))` for signed and unsigned IPS, valid when
//!    `d = Ω(U⁵/(c²s⁵))` and `s ≤ U/8`.
//!
//! All three tend to zero as `U/s → ∞`, which is the paper's headline consequence: *no*
//! asymmetric LSH for inner products exists over an unbounded query domain.

use super::grid::gap_upper_bound;

/// Theorem 3, case 1: bound on `P1 − P2` from the geometric sequences, or `None` when
/// the case's preconditions (`d ≥ 1`, `0 < c < 1`, `s ≤ min(cU, U/(4√d))`) fail.
pub fn gap_bound_case1(d: usize, s: f64, c: f64, u: f64) -> Option<f64> {
    if d == 0 || !(s > 0.0) || !(c > 0.0 && c < 1.0) || !(u > 0.0) {
        return None;
    }
    if s > c * u || s > u / (4.0 * (d as f64).sqrt()) {
        return None;
    }
    // Sequence length n = Θ(d · log_{1/c}(U/s)); the d-dimensional construction stacks
    // d/2 translated copies of the 1-dimensional staircase.
    let m = ((u / s).ln() / (1.0 / c).ln()).floor().max(1.0);
    let n = ((d as f64 / 2.0).max(1.0) * m).floor() as usize;
    Some(gap_upper_bound(n.max(2)))
}

/// Theorem 3, case 2: bound on `P1 − P2` from the arithmetic sequences (signed IPS
/// only), or `None` when the preconditions (`d ≥ 2`, `s ≤ U/(2d)`) fail.
pub fn gap_bound_case2(d: usize, s: f64, c: f64, u: f64) -> Option<f64> {
    if d < 2 || !(s > 0.0) || !(c > 0.0 && c < 1.0) || !(u > 0.0) {
        return None;
    }
    if s > u / (2.0 * d as f64) {
        return None;
    }
    let m = (u / (s * (1.0 - c))).sqrt().floor().max(1.0);
    let n = ((d as f64 / 2.0) * m).floor() as usize;
    Some(gap_upper_bound(n.max(2)))
}

/// Theorem 3, case 3: bound `O(√(s/U))` from the binary-tree sequences, or `None` when
/// the preconditions (`s ≤ U/8`, `d ≥ U⁵/(c²s⁵)`) fail.
pub fn gap_bound_case3(d: usize, s: f64, c: f64, u: f64) -> Option<f64> {
    if d == 0 || !(s > 0.0) || !(c > 0.0 && c < 1.0) || !(u > 0.0) {
        return None;
    }
    if s > u / 8.0 {
        return None;
    }
    if (d as f64) < u.powi(5) / (c * c * s.powi(5)) {
        return None;
    }
    // Sequence length n = 2^{√(U/(8s))}, so 1/(8 log n) = 1/(8 √(U/(8s))) = √(s/(8U))·(1/√8)…
    // — evaluate it through the generic Lemma 4 bound for consistency.
    let log_n = (u / (8.0 * s)).sqrt();
    Some(1.0 / (8.0 * log_n.max(1.0)))
}

/// The best (smallest) applicable Theorem 3 bound for the given parameters, if any case
/// applies.
pub fn best_gap_bound(d: usize, s: f64, c: f64, u: f64) -> Option<f64> {
    [
        gap_bound_case1(d, s, c, u),
        gap_bound_case2(d, s, c, u),
        gap_bound_case3(d, s, c, u),
    ]
    .into_iter()
    .flatten()
    .min_by(|a, b| a.partial_cmp(b).expect("bounds are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_preconditions() {
        assert!(gap_bound_case1(0, 0.1, 0.5, 1.0).is_none());
        assert!(gap_bound_case1(4, 0.0, 0.5, 1.0).is_none());
        assert!(gap_bound_case1(4, 0.1, 1.5, 1.0).is_none());
        // s too large relative to U/(4√d).
        assert!(gap_bound_case1(100, 0.2, 0.9, 1.0).is_none());
        assert!(gap_bound_case1(4, 0.01, 0.5, 1.0).is_some());
    }

    #[test]
    fn case2_preconditions() {
        assert!(gap_bound_case2(1, 0.01, 0.5, 1.0).is_none());
        assert!(gap_bound_case2(4, 0.2, 0.5, 1.0).is_none()); // s > U/(2d)
        assert!(gap_bound_case2(4, 0.1, 0.5, 1.0).is_some());
    }

    #[test]
    fn case3_preconditions() {
        assert!(gap_bound_case3(10, 0.2, 0.5, 1.0).is_none()); // s > U/8
        assert!(gap_bound_case3(10, 0.1, 0.5, 1.0).is_none()); // d too small
        let d = (1.0_f64 / (0.25 * 0.01_f64.powi(5))).ceil() as usize;
        assert!(gap_bound_case3(d, 0.01, 0.5, 1.0).is_some());
    }

    #[test]
    fn bounds_shrink_as_query_domain_grows() {
        // The paper's headline: as U/s grows, the permissible gap vanishes, so no
        // asymmetric LSH exists for unbounded queries.
        let b_small = gap_bound_case1(4, 0.1, 0.5, 1.0).unwrap();
        let b_large = gap_bound_case1(4, 0.1, 0.5, 1000.0).unwrap();
        assert!(b_large < b_small);
        let b2_small = gap_bound_case2(4, 0.01, 0.9, 1.0).unwrap();
        let b2_large = gap_bound_case2(4, 0.01, 0.9, 1000.0).unwrap();
        assert!(b2_large < b2_small);
        // For case 3 the ratio U/s is grown by shrinking s (the dimension requirement
        // d = Ω(U⁵/(c²s⁵)) grows too fast to raise U directly within usize).
        let d_mid = (1.0_f64 / (0.25 * 0.01_f64.powi(5))).ceil() as usize;
        let d_small = (1.0_f64 / (0.25 * 0.001_f64.powi(5))).ceil() as usize;
        let b3_mid = gap_bound_case3(d_mid, 0.01, 0.5, 1.0).unwrap();
        let b3_small = gap_bound_case3(d_small, 0.001, 0.5, 1.0).unwrap();
        assert!(b3_small < b3_mid);
    }

    #[test]
    fn case2_beats_case1_for_small_thresholds() {
        // Case 2's sequence length √(U/s) dominates case 1's log(U/s) once U/s is large,
        // so its gap bound is smaller there.
        let d = 4;
        let s = 1e-6;
        let c = 0.5;
        let u = 1.0;
        let b1 = gap_bound_case1(d, s, c, u).unwrap();
        let b2 = gap_bound_case2(d, s, c, u).unwrap();
        assert!(b2 < b1, "case 2 ({b2}) should beat case 1 ({b1})");
    }

    #[test]
    fn best_bound_picks_the_minimum() {
        let d = 4;
        let s = 0.001;
        let c = 0.9;
        let u = 1.0;
        let best = best_gap_bound(d, s, c, u).unwrap();
        for bound in [
            gap_bound_case1(d, s, c, u),
            gap_bound_case2(d, s, c, u),
            gap_bound_case3(d, s, c, u),
        ]
        .into_iter()
        .flatten()
        {
            assert!(best <= bound);
        }
        assert!(best_gap_bound(1, 10.0, 0.5, 1.0).is_none());
    }
}
