//! The hard data/query sequences of Theorem 3.
//!
//! All three constructions produce sequences `Q = (q₀, …, q_{n−1})` (queries, in the
//! ball of radius `U`) and `P = (p₀, …, p_{n−1})` (data, in the unit ball) with the
//! *staircase property*
//!
//! ```text
//! qᵢᵀpⱼ ≥ s    when j ≥ i,          qᵢᵀpⱼ ≤ cs    when j < i,
//! ```
//!
//! which is exactly the hypothesis of Lemma 4; the longer the sequence, the smaller the
//! gap `P1 − P2 ≤ 1/(8·log n)` any asymmetric LSH can achieve. The three cases trade
//! generality for length:
//!
//! 1. geometric, works for signed *and* unsigned IPS, length `Θ(log_{1/c}(U/s))`
//!    (implemented in dimension 1, the paper's warm-up, which is the construction the
//!    staircase argument actually needs);
//! 2. arithmetic, signed IPS only, dimension 2, length `Θ(√(U/(s(1−c))))`;
//! 3. binary-tree over a nearly-orthogonal vector family, signed and unsigned, length
//!    `2^{√(U/(8s))}`, requiring dimension `Ω(log⁵ n / c²)`.

use crate::error::{CoreError, Result};
use ips_linalg::incoherent::ReedSolomonCollection;
use ips_linalg::DenseVector;

/// A hard sequence pair together with the parameters it was built for.
#[derive(Debug, Clone)]
pub struct HardSequence {
    /// Query vectors `q₀, …, q_{n−1}`, inside the ball of radius `U`.
    pub queries: Vec<DenseVector>,
    /// Data vectors `p₀, …, p_{n−1}`, inside the unit ball.
    pub data: Vec<DenseVector>,
    /// Threshold `s`.
    pub s: f64,
    /// Approximation factor `c`.
    pub c: f64,
    /// Query-domain radius `U`.
    pub u: f64,
}

impl HardSequence {
    /// Sequence length `n`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Verifies the staircase property, optionally for unsigned IPS (absolute values).
    /// Returns the first violating `(i, j)` pair if any.
    pub fn verify_staircase(&self, unsigned: bool) -> Result<Option<(usize, usize)>> {
        for (i, q) in self.queries.iter().enumerate() {
            for (j, p) in self.data.iter().enumerate() {
                let mut ip = q.dot(p)?;
                if unsigned {
                    ip = ip.abs();
                }
                let ok = if j >= i {
                    ip >= self.s - 1e-9
                } else {
                    ip <= self.c * self.s + 1e-9
                };
                if !ok {
                    return Ok(Some((i, j)));
                }
            }
        }
        Ok(None)
    }

    /// Verifies the domain constraints: data in the unit ball, queries in the `U`-ball.
    pub fn verify_domains(&self) -> bool {
        self.data.iter().all(|p| p.norm() <= 1.0 + 1e-9)
            && self.queries.iter().all(|q| q.norm() <= self.u + 1e-9)
    }

    /// The Lemma 4 upper bound on `P1 − P2` implied by this sequence's length.
    pub fn implied_gap_bound(&self) -> f64 {
        super::grid::gap_upper_bound(self.len())
    }
}

fn validate_common(s: f64, c: f64, u: f64) -> Result<()> {
    if !(s > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: format!("threshold must be positive, got {s}"),
        });
    }
    if !(c > 0.0 && c < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "c",
            reason: format!("approximation must lie in (0,1), got {c}"),
        });
    }
    if !(u >= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "u",
            reason: format!("query radius must be at least 1, got {u}"),
        });
    }
    Ok(())
}

/// Theorem 3, case 1 (warm-up dimension 1): the geometric sequences
/// `qᵢ = U·cⁱ`, `pⱼ = s/(U·cʲ)`, of length `⌊log_{1/c}(U/s)⌋ + 1`.
///
/// `qᵢᵀpⱼ = s·c^{i−j}`, which is `≥ s` iff `j ≥ i` and `≤ cs` otherwise. Works for
/// signed and unsigned IPS (all inner products are positive). Requires `s ≤ c·U` so the
/// sequence has length at least 2.
pub fn hard_sequence_case1(s: f64, c: f64, u: f64) -> Result<HardSequence> {
    validate_common(s, c, u)?;
    if s > c * u {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: format!("case 1 requires s <= c·U (got s={s}, cU={})", c * u),
        });
    }
    // p_j = s/(U c^j) must stay <= 1, i.e. j <= log_{1/c}(U/s).
    let m = ((u / s).ln() / (1.0 / c).ln()).floor() as usize + 1;
    let queries = (0..m)
        .map(|i| DenseVector::new(vec![u * c.powi(i as i32)]))
        .collect();
    let data = (0..m)
        .map(|j| DenseVector::new(vec![s / (u * c.powi(j as i32))]))
        .collect();
    Ok(HardSequence {
        queries,
        data,
        s,
        c,
        u,
    })
}

/// Theorem 3, case 2 (dimension 2): the arithmetic sequences
/// `qᵢ = (√(sU)(1 − (1−c)i), √(sU(1−c)))`, `pⱼ = (√(s/U), j√(s(1−c)/U))`, for signed
/// IPS, of length `Θ(√(U/(s(1−c))))`.
///
/// `qᵢᵀpⱼ = s + s(1−c)(j − i)`. Requires `s ≤ U/2`.
pub fn hard_sequence_case2(s: f64, c: f64, u: f64) -> Result<HardSequence> {
    validate_common(s, c, u)?;
    if s > u / 2.0 {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: format!("case 2 requires s <= U/2 (got s={s}, U={u})"),
        });
    }
    // Data norm: s/U + j²·s(1−c)/U <= 1  =>  j <= sqrt((U − s)/(s(1−c))).
    let j_max = ((u - s) / (s * (1.0 - c))).sqrt().floor() as usize;
    // Query norm: sU(1−(1−c)i)² + sU(1−c) <= U²  =>  |1−(1−c)i| <= sqrt(U/s − (1−c)).
    let i_max = ((1.0 + (u / s - (1.0 - c)).max(0.0).sqrt()) / (1.0 - c)).floor() as usize;
    let m = (j_max.min(i_max) + 1).max(1);
    let queries = (0..m)
        .map(|i| {
            DenseVector::new(vec![
                (s * u).sqrt() * (1.0 - (1.0 - c) * i as f64),
                (s * u * (1.0 - c)).sqrt(),
            ])
        })
        .collect();
    let data = (0..m)
        .map(|j| DenseVector::new(vec![(s / u).sqrt(), j as f64 * (s * (1.0 - c) / u).sqrt()]))
        .collect();
    Ok(HardSequence {
        queries,
        data,
        s,
        c,
        u,
    })
}

/// Theorem 3, case 3: sequences of length `n = 2^⌈√(U/(8s))⌉` built from a family of
/// nearly-orthogonal vectors arranged as a complete binary tree over the index bits,
/// with pairwise coherence `ε = c/(2·log²n)`.
///
/// `qᵢ` sums the *sibling* nodes along its root-to-leaf path at the positions where its
/// bit is 0 (scaled by `√(2sU)`); `pⱼ` sums the *path* nodes at the positions where its
/// bit is 1 (scaled by `√(2s/U)`). The aligned node of the first "0 in `i`, 1 in `j`"
/// bit contributes the full product of the scales, while every other node pair
/// contributes at most `ε` of it — which gives `qᵢᵀpⱼ ≥ s` for `j ≥ i` and `≤ cs` for
/// `j < i` once the coherence is small enough (the paper requires dimension
/// `Ω(ε⁻² log n)` via the JL lemma).
///
/// The paper obtains the nearly-orthogonal family from the Johnson–Lindenstrauss lemma;
/// here the deterministic Reed–Solomon collection is used instead, which guarantees the
/// coherence bound (rather than achieving it with high probability) and makes the
/// construction — and the tests that verify the staircase — fully deterministic.
/// `levels` controls `log₂ n`.
pub fn hard_sequence_case3(s: f64, c: f64, u: f64, levels: u32) -> Result<HardSequence> {
    validate_common(s, c, u)?;
    if levels == 0 || levels > 14 {
        return Err(CoreError::InvalidParameter {
            name: "levels",
            reason: format!("levels must be in 1..=14, got {levels}"),
        });
    }
    if 2.0 * s > u {
        return Err(CoreError::InvalidParameter {
            name: "s",
            reason: format!("case 3 requires 2s <= U (got s={s}, U={u})"),
        });
    }
    let n = 1usize << levels;
    // The query index i is encoded as the value i, the data index j as the value j + 1,
    // both over `levels + 1` bits: then j >= i iff (j+1) > i, and for any a < b the
    // first differing bit of (a, b) has a 0 in a and a 1 in b — exactly the condition
    // the paper's argument needs, now valid on the diagonal as well.
    let width = levels + 1; // bits per encoded value
    let word_count = width as f64;
    // ε·(#cross pairs) must stay below c times the aligned contribution.
    let epsilon = (c / (2.0 * word_count * word_count)).min(0.45);
    // One nearly-orthogonal vector per binary-tree node (prefixes of length 1..=width).
    let node_count = (1usize << (width + 1)) - 2;
    let family = ReedSolomonCollection::with_capacity(node_count as u128, epsilon)?;
    let dim = family.dim();
    let node = |level: u32, prefix: usize| -> usize { (1usize << level) - 2 + prefix };

    // Each side is a sum of at most `width` unit vectors; dividing the paper's scales by
    // `width` keeps queries inside the U-ball and data inside the unit ball.
    let q_norm = (2.0 * s * u).sqrt() / word_count;
    let p_norm = (2.0 * s / u).sqrt() / word_count;

    let build = |value: usize, query_side: bool| -> Result<DenseVector> {
        let mut v = DenseVector::zeros(dim);
        for level in 1..=width {
            let shift = width - level;
            let bit = (value >> shift) & 1;
            let prefix_own = value >> shift; // prefix of length `level`, ending in `bit`
            if query_side && bit == 0 {
                // Query side: the sibling node (same prefix, last bit flipped to 1).
                v.axpy(q_norm, &family.vector(node(level, prefix_own ^ 1) as u128)?)?;
            } else if !query_side && bit == 1 {
                // Data side: its own path node (prefix ending in 1).
                v.axpy(p_norm, &family.vector(node(level, prefix_own) as u128)?)?;
            }
        }
        Ok(v)
    };

    let mut queries = Vec::with_capacity(n);
    let mut data = Vec::with_capacity(n);
    for idx in 0..n {
        queries.push(build(idx, true)?);
        data.push(build(idx + 1, false)?);
    }
    // For j >= i the aligned node contributes q_norm·p_norm exactly; every other node
    // pair contributes at most ε·q_norm·p_norm in absolute value, and there are fewer
    // than width² such pairs. The effective threshold reported here is therefore the
    // worst-case aligned value, and the choice of ε guarantees the j < i side stays
    // below c times it.
    let effective_s = q_norm * p_norm * (1.0 - epsilon * word_count * word_count);
    Ok(HardSequence {
        queries,
        data,
        s: effective_s,
        c,
        u,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_staircase_and_domains() {
        for &(s, c, u) in &[(0.01, 0.5, 1.0), (0.1, 0.8, 4.0), (0.001, 0.3, 2.0)] {
            let seq = hard_sequence_case1(s, c, u).unwrap();
            assert!(seq.len() >= 2, "sequence too short for s={s}, c={c}, U={u}");
            assert!(!seq.is_empty());
            assert!(
                seq.verify_domains(),
                "domain violated for s={s}, c={c}, U={u}"
            );
            assert_eq!(seq.verify_staircase(false).unwrap(), None);
            assert_eq!(seq.verify_staircase(true).unwrap(), None);
            assert!(seq.implied_gap_bound() > 0.0);
        }
    }

    #[test]
    fn case1_length_grows_as_ratio_grows() {
        let short = hard_sequence_case1(0.1, 0.5, 1.0).unwrap();
        let long = hard_sequence_case1(0.0001, 0.5, 1.0).unwrap();
        assert!(long.len() > short.len());
        // Longer sequences imply smaller permissible gaps.
        assert!(long.implied_gap_bound() < short.implied_gap_bound());
    }

    #[test]
    fn case1_parameter_validation() {
        assert!(hard_sequence_case1(0.0, 0.5, 1.0).is_err());
        assert!(hard_sequence_case1(0.5, 1.5, 1.0).is_err());
        assert!(hard_sequence_case1(0.5, 0.5, 0.5).is_err());
        assert!(hard_sequence_case1(0.9, 0.5, 1.0).is_err()); // s > cU
    }

    #[test]
    fn case2_staircase_and_domains() {
        for &(s, c, u) in &[(0.05, 0.5, 1.0), (0.01, 0.9, 2.0), (0.2, 0.7, 8.0)] {
            let seq = hard_sequence_case2(s, c, u).unwrap();
            assert!(seq.len() >= 2, "sequence too short for s={s}, c={c}, U={u}");
            assert!(
                seq.verify_domains(),
                "domain violated for s={s}, c={c}, U={u}"
            );
            // Case 2 only guarantees the signed staircase.
            assert_eq!(seq.verify_staircase(false).unwrap(), None);
        }
        assert!(hard_sequence_case2(0.9, 0.5, 1.0).is_err()); // s > U/2
    }

    #[test]
    fn case2_is_longer_than_case1_for_small_thresholds() {
        // Case 2's length grows like √(U/s) while case 1's only grows like log(U/s), so
        // for small thresholds the arithmetic sequence is much longer — that is exactly
        // why the paper includes it ("longer query and data sequences").
        let s = 1e-5;
        let c = 0.5;
        let u = 1.0;
        let case1 = hard_sequence_case1(s, c, u).unwrap();
        let case2 = hard_sequence_case2(s, c, u).unwrap();
        assert!(
            case2.len() > case1.len(),
            "case 2 ({}) should beat case 1 ({}) for small s/U",
            case2.len(),
            case1.len()
        );
    }

    #[test]
    fn case3_staircase_holds() {
        for &(s, c, levels) in &[(0.05, 0.6, 3u32), (0.02, 0.4, 4), (0.1, 0.8, 2)] {
            let seq = hard_sequence_case3(s, c, 1.0, levels).unwrap();
            assert_eq!(seq.len(), 1usize << levels);
            assert!(seq.verify_domains(), "domains violated for s={s}, c={c}");
            assert_eq!(
                seq.verify_staircase(false).unwrap(),
                None,
                "signed staircase violated for s={s}, c={c}"
            );
            assert_eq!(
                seq.verify_staircase(true).unwrap(),
                None,
                "unsigned staircase violated for s={s}, c={c}"
            );
            assert!(seq.s > 0.0);
        }
    }

    #[test]
    fn case3_parameter_validation() {
        assert!(hard_sequence_case3(0.05, 0.6, 1.0, 0).is_err());
        assert!(hard_sequence_case3(0.05, 0.6, 1.0, 20).is_err());
        assert!(hard_sequence_case3(-1.0, 0.6, 1.0, 3).is_err());
        assert!(hard_sequence_case3(0.9, 0.6, 1.0, 3).is_err()); // 2s > U
    }
}
