//! The Lemma 4 grid argument and the Figure 1 illustration.
//!
//! Lemma 4: if data/query sequences of length `n` with the staircase property exist,
//! then any `(s, cs, P1, P2)`-asymmetric LSH satisfies `P1 − P2 ≤ 1/(8·log n)`. The
//! proof partitions the lower triangle of the `n × n` collision grid (nodes `(i, j)`
//! with `j ≥ i`, the "P1-nodes") into squares `G_{r,t}` of exponentially increasing side
//! `2^r`, classifies the mass of each node into *shared*, *partially shared* and
//! *proper* contributions, and charges the shared mass to P2-nodes and the proper mass
//! to rows/columns. Figure 1 of the paper illustrates the partition on a `15 × 15` grid.
//!
//! This module provides the partition itself ([`grid_squares`]), the resulting bound
//! ([`gap_upper_bound`]), node classification helpers for rendering Figure 1, and an
//! empirical estimator of `P1` and `P2` over a hard sequence for any concrete
//! asymmetric LSH family (experiment E7).

use crate::error::{CoreError, Result};
use crate::lower_bounds::sequences::HardSequence;
use ips_lsh::collision::estimate_pair_collision;
use ips_lsh::AsymmetricLshFamily;
use rand::Rng;

/// One square `G_{r,t}` of the Lemma 4 partition.
///
/// The square covers query rows `i ∈ [t·2^{r+1}, t·2^{r+1} + 2^r)` and data columns
/// `j ∈ [(2t+1)·2^r − 1, (2t+1)·2^r − 1 + 2^r)`; the node the paper calls its
/// "top-left", `((2t+1)·2^r − 1, (2t+1)·2^r − 1)`, is the corner where the square
/// touches the diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSquare {
    /// The level `r` (the square has side `2^r`).
    pub level: u32,
    /// The index `t` of the square within its level.
    pub index: usize,
    /// First query row covered.
    pub row_start: usize,
    /// First data column covered.
    pub col_start: usize,
    /// Side length `2^r`.
    pub side: usize,
}

impl GridSquare {
    /// The diagonal corner node `((2t+1)·2^r − 1, (2t+1)·2^r − 1)` the paper uses to
    /// name the square.
    pub fn diagonal_corner(&self) -> (usize, usize) {
        (self.col_start, self.col_start)
    }

    /// Returns `true` when the node `(i, j)` belongs to this square.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.row_start
            && i < self.row_start + self.side
            && j >= self.col_start
            && j < self.col_start + self.side
    }
}

/// The squares of the Lemma 4 partition for a grid of side `n = 2^ell − 1`.
///
/// Level `r` (for `0 ≤ r < ell`) contains `2^{ell−r−1}` squares of side `2^r`; together
/// they partition the lower triangle `{(i, j) : j ≥ i}` exactly (verified by the tests
/// below), which is the combinatorial backbone of the Lemma 4 charging argument.
pub fn grid_squares(ell: u32) -> Result<Vec<GridSquare>> {
    if ell == 0 || ell > 30 {
        return Err(CoreError::InvalidParameter {
            name: "ell",
            reason: format!("ell must be in 1..=30, got {ell}"),
        });
    }
    let mut squares = Vec::new();
    for r in 0..ell {
        let count = 1usize << (ell - r - 1);
        let side = 1usize << r;
        for t in 0..count {
            squares.push(GridSquare {
                level: r,
                index: t,
                row_start: t * 2 * side,
                col_start: (2 * t + 1) * side - 1,
                side,
            });
        }
    }
    Ok(squares)
}

/// The Lemma 4 upper bound on `P1 − P2` implied by a hard sequence of length `n`:
/// `1/(8·log₂ n)` (and 1 — the trivial bound — for `n < 2`).
pub fn gap_upper_bound(n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    1.0 / (8.0 * (n as f64).log2())
}

/// Classification of a grid node for rendering Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// A node `(i, j)` with `j ≥ i`: its collision probability must be at least `P1`.
    P1,
    /// A node with `j < i`: its collision probability must be at most `P2`.
    P2,
}

/// Classifies the node `(i, j)` of the collision grid.
pub fn classify_node(i: usize, j: usize) -> NodeClass {
    if j >= i {
        NodeClass::P1
    } else {
        NodeClass::P2
    }
}

/// One Figure 1 grid node: its class and the identifier of the square containing it
/// (`None` for P2-nodes).
pub type GridNode = (NodeClass, Option<(u32, usize)>);

/// The Figure 1 data: for an `n × n` grid (`n = 2^ell − 1`), every node's [`GridNode`].
pub fn figure1_grid(ell: u32) -> Result<Vec<Vec<GridNode>>> {
    let squares = grid_squares(ell)?;
    let n = (1usize << ell) - 1;
    let mut grid = vec![vec![(NodeClass::P2, None); n]; n];
    for (i, row) in grid.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let class = classify_node(i, j);
            let square = if class == NodeClass::P1 {
                squares
                    .iter()
                    .find(|sq| sq.contains(i, j))
                    .map(|sq| (sq.level, sq.index))
            } else {
                None
            };
            *cell = (class, square);
        }
    }
    Ok(grid)
}

/// Empirically estimates `(P1, P2)` for a concrete asymmetric LSH family over a hard
/// sequence, by Monte-Carlo collision sampling: `P1` is the minimum estimated collision
/// probability over staircase pairs `j ≥ i`, `P2` the maximum over pairs `j < i`.
/// Together with [`gap_upper_bound`] this is experiment E7: the measured gap must not
/// exceed the Lemma 4 bound (up to sampling error) for any valid family.
pub fn estimate_gap_on_sequence<F, R>(
    family: &F,
    sequence: &HardSequence,
    trials: usize,
    rng: &mut R,
) -> Result<(f64, f64)>
where
    F: AsymmetricLshFamily,
    R: Rng + ?Sized,
{
    if sequence.len() < 2 {
        return Err(CoreError::InvalidParameter {
            name: "sequence",
            reason: "hard sequence must have length at least 2".into(),
        });
    }
    let mut p1 = f64::INFINITY;
    let mut p2 = f64::NEG_INFINITY;
    for (i, q) in sequence.queries.iter().enumerate() {
        for (j, p) in sequence.data.iter().enumerate() {
            let estimate = estimate_pair_collision(family, p, q, trials, rng)?;
            if j >= i {
                p1 = p1.min(estimate);
            } else {
                p2 = p2.max(estimate);
            }
        }
    }
    Ok((p1, p2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds::sequences::hard_sequence_case1;
    use ips_lsh::simple_alsh::SimpleAlshFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn squares_partition_the_lower_triangle() {
        for ell in 1..=5u32 {
            let n = (1usize << ell) - 1;
            let squares = grid_squares(ell).unwrap();
            // Level counts: 2^{ell−r−1} squares of side 2^r.
            for r in 0..ell {
                let count = squares.iter().filter(|s| s.level == r).count();
                assert_eq!(count, 1usize << (ell - r - 1));
            }
            // Every P1-node is covered by exactly one square.
            for i in 0..n {
                for j in i..n {
                    let covering = squares.iter().filter(|sq| sq.contains(i, j)).count();
                    assert_eq!(
                        covering, 1,
                        "node ({i},{j}) covered by {covering} squares at ell={ell}"
                    );
                }
            }
            // No square contains a P2-node.
            for i in 0..n {
                for j in 0..i {
                    assert!(squares.iter().all(|sq| !sq.contains(i, j)));
                }
            }
        }
        assert!(grid_squares(0).is_err());
        assert!(grid_squares(31).is_err());
    }

    #[test]
    fn figure1_matches_paper_dimensions() {
        // The paper's Figure 1 uses a 15 × 15 grid (ell = 4).
        let grid = figure1_grid(4).unwrap();
        assert_eq!(grid.len(), 15);
        assert_eq!(grid[0].len(), 15);
        // Node (1,5) lies in G_{2,0} per the figure's example.
        let (class, square) = grid[1][5];
        assert_eq!(class, NodeClass::P1);
        assert_eq!(square, Some((2, 0)));
        // Node (0,6) also lies in G_{2,0}; node (2,4) too.
        assert_eq!(grid[0][6].1, Some((2, 0)));
        assert_eq!(grid[2][4].1, Some((2, 0)));
        // Diagonal singleton squares at level 0.
        assert_eq!(grid[0][0].1, Some((0, 0)));
        assert_eq!(grid[2][2].1, Some((0, 1)));
        // P2-nodes carry no square.
        assert_eq!(grid[5][1].0, NodeClass::P2);
        assert_eq!(grid[5][1].1, None);
    }

    #[test]
    fn gap_bound_decreases_with_length() {
        assert_eq!(gap_upper_bound(1), 1.0);
        assert!(gap_upper_bound(4) > gap_upper_bound(64));
        assert!((gap_upper_bound(256) - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn classify_node_splits_on_diagonal() {
        assert_eq!(classify_node(3, 3), NodeClass::P1);
        assert_eq!(classify_node(3, 7), NodeClass::P1);
        assert_eq!(classify_node(7, 3), NodeClass::P2);
    }

    #[test]
    fn empirical_gap_respects_lemma4_bound_shape() {
        // Take a real asymmetric family (SIMPLE-ALSH) and a case-1 hard sequence; the
        // measured worst-case gap must be small — in particular it cannot be the naive
        // large gap one would read off a single "nice" pair.
        let mut rng = StdRng::seed_from_u64(0x6A9);
        let seq = hard_sequence_case1(0.05, 0.5, 1.0).unwrap();
        assert!(seq.len() >= 4);
        let family = SimpleAlshFamily::new(1, 1.0, 1).unwrap();
        let (p1, p2) = estimate_gap_on_sequence(&family, &seq, 600, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&p1));
        assert!((0.0..=1.0).contains(&p2));
        // Sampling noise allowance: the structural claim is that the worst-case gap is
        // far below what the best-case pair would suggest.
        let gap = p1 - p2;
        assert!(
            gap <= gap_upper_bound(seq.len()) + 0.1,
            "measured gap {gap} grossly exceeds the Lemma 4 bound {}",
            gap_upper_bound(seq.len())
        );
    }

    #[test]
    fn estimate_gap_rejects_trivial_sequences() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = SimpleAlshFamily::new(1, 1.0, 1).unwrap();
        let seq = HardSequence {
            queries: vec![ips_linalg::DenseVector::from(&[1.0][..])],
            data: vec![ips_linalg::DenseVector::from(&[1.0][..])],
            s: 1.0,
            c: 0.5,
            u: 1.0,
        };
        assert!(estimate_gap_on_sequence(&family, &seq, 10, &mut rng).is_err());
    }
}
