//! Error types for `ips-core`.

use ips_linalg::LinalgError;
use ips_lsh::LshError;
use ips_matmul::MatmulError;
use ips_ovp::OvpError;
use ips_sketch::SketchError;
use std::fmt;

/// Result alias used throughout `ips-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the join and search implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A vector had the wrong dimensionality for the structure it was used with.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Offending dimension.
        actual: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A data set was empty where at least one vector was required.
    EmptyDataSet,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying LSH operation failed.
    Lsh(LshError),
    /// An underlying sketch operation failed.
    Sketch(SketchError),
    /// An underlying OVP operation failed.
    Ovp(OvpError),
    /// An underlying matrix-multiplication operation failed.
    Matmul(MatmulError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::EmptyDataSet => write!(f, "data set must contain at least one vector"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Lsh(e) => write!(f, "LSH error: {e}"),
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
            CoreError::Ovp(e) => write!(f, "OVP error: {e}"),
            CoreError::Matmul(e) => write!(f, "matrix multiplication error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Lsh(e) => Some(e),
            CoreError::Sketch(e) => Some(e),
            CoreError::Ovp(e) => Some(e),
            CoreError::Matmul(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<LshError> for CoreError {
    fn from(e: LshError) -> Self {
        CoreError::Lsh(e)
    }
}

impl From<SketchError> for CoreError {
    fn from(e: SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

impl From<OvpError> for CoreError {
    fn from(e: OvpError) -> Self {
        CoreError::Ovp(e)
    }
}

impl From<MatmulError> for CoreError {
    fn from(e: MatmulError) -> Self {
        CoreError::Matmul(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = LinalgError::Empty { op: "dot" }.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: CoreError = LshError::DomainViolation {
            reason: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("LSH"));
        let e: CoreError = SketchError::EmptyDataSet.into();
        assert!(e.to_string().contains("sketch"));
        let e: CoreError = OvpError::EmptyInstance.into();
        assert!(e.to_string().contains("OVP"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = MatmulError::Empty { op: "gram" }.into();
        assert!(e.to_string().contains("matrix multiplication"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::EmptyDataSet.to_string().contains("at least one"));
        assert!(CoreError::DimensionMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("expected 1"));
        assert!(CoreError::InvalidParameter {
            name: "c",
            reason: "bad".into()
        }
        .to_string()
        .contains('c'));
        assert!(std::error::Error::source(&CoreError::EmptyDataSet).is_none());
    }
}
