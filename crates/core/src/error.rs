//! Error types for `ips-core`, on the workspace error pattern
//! ([`ips_linalg::define_error!`]).

use ips_linalg::LinalgError;
use ips_lsh::LshError;
use ips_matmul::MatmulError;
use ips_ovp::OvpError;
use ips_sketch::SketchError;

ips_linalg::define_error! {
    /// Errors produced by the join and search implementations.
    #[derive(Clone, PartialEq)]
    CoreError, Result {
        variants {
            /// A vector had the wrong dimensionality for the structure it was used with.
            DimensionMismatch {
                /// Expected dimension.
                expected: usize,
                /// Offending dimension.
                actual: usize,
            } => ("dimension mismatch: expected {expected}, got {actual}"),
            /// A parameter was outside its legal range.
            InvalidParameter {
                /// Name of the offending parameter.
                name: &'static str,
                /// Explanation of the constraint that was violated.
                reason: String,
            } => ("invalid parameter `{name}`: {reason}"),
            /// A data set was empty where at least one vector was required.
            EmptyDataSet => ("data set must contain at least one vector"),
        }
        wraps {
            /// An underlying linear-algebra operation failed.
            Linalg(LinalgError) => "linear algebra error",
            /// An underlying LSH operation failed.
            Lsh(LshError) => "LSH error",
            /// An underlying sketch operation failed.
            Sketch(SketchError) => "sketch error",
            /// An underlying OVP operation failed.
            Ovp(OvpError) => "OVP error",
            /// An underlying matrix-multiplication operation failed.
            Matmul(MatmulError) => "matrix multiplication error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = LinalgError::Empty { op: "dot" }.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: CoreError = LshError::DomainViolation { reason: "x".into() }.into();
        assert!(e.to_string().contains("LSH"));
        let e: CoreError = SketchError::EmptyDataSet.into();
        assert!(e.to_string().contains("sketch"));
        let e: CoreError = OvpError::EmptyInstance.into();
        assert!(e.to_string().contains("OVP"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = MatmulError::Empty { op: "gram" }.into();
        assert!(e.to_string().contains("matrix multiplication"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::EmptyDataSet.to_string().contains("at least one"));
        assert!(CoreError::DimensionMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("expected 1"));
        assert!(CoreError::InvalidParameter {
            name: "c",
            reason: "bad".into()
        }
        .to_string()
        .contains('c'));
        assert!(std::error::Error::source(&CoreError::EmptyDataSet).is_none());
    }
}
