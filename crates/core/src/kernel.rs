//! Scoring-kernel selection: the `dtype` / `quantized` knobs and the tiled
//! batch kernels behind them.
//!
//! Every join family bottoms out in dense inner products, and this module is
//! where the workspace decides *which* inner-product kernel runs:
//!
//! * **`dtype=f64`, `quantized=false`** (the default) — the exact per-query
//!   `f64` path, bit-identical to what the engine has always produced.
//! * **`dtype=f32`** — data is packed once into a contiguous
//!   [`FloatTile`] and scored with the autovectorized `f32` kernels from
//!   [`ips_linalg::tile`]. The per-query *winner* is re-scored exactly in
//!   `f64` before it is reported, so the validity contract (reported pairs
//!   clear `cs`) holds exactly; only near-ties between candidates can differ
//!   from the `f64` ranking, which costs recall, never validity.
//! * **`quantized=true`** — data is packed into an `i8` fixed-point
//!   [`QuantTile`]. Candidates are scored with the cheap widening integer
//!   kernel, *conservatively pruned* using the tile's rigorous error bound,
//!   and every survivor is re-scored exactly in `f64`. Because the pruning
//!   rule can never eliminate a true maximiser (see the argument below), the
//!   final match set is **identical** to the pure-`f64` path — not merely
//!   valid, but the same answer.
//!
//! When both knobs are set, quantized scoring takes precedence: it is the
//! cheaper kernel *and* the one with the exactness guarantee.
//!
//! The conservative-pruning argument, in one paragraph: for each candidate
//! `i` the quantized kernel yields `approx_i` with a rigorous bound
//! `|value_i − approx_value_i| ≤ bound_i` (the bound transfers to unsigned
//! values since `||a| − |b|| ≤ |a − b|`). Let `t = max_j (approx_value_j −
//! bound_j)` — a certified lower bound on the true maximum. Any candidate
//! with `approx_value_i + bound_i < t` has `value_i < t ≤ max value` and
//! cannot be the argmax, so pruning it is safe; every true maximiser
//! survives. Survivors are re-scored exactly in ascending index order with
//! the same strict-`>` update as the full scan, which reproduces the
//! earliest-argmax tie-break of the exact loop — hence identical results.

use crate::error::{CoreError, Result};
use crate::mips::SearchResult;
use crate::problem::JoinSpec;
use ips_linalg::{DenseVector, FloatTile, QuantTile, QuantVector};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Floating-point width of the batched scoring kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dtype {
    /// Exact double precision — the default; results are bit-identical to the
    /// pre-kernel-pass engine.
    #[default]
    F64,
    /// Single precision tiles: half the memory traffic and twice the SIMD
    /// width, with the per-query winner exactly re-scored in `f64`.
    F32,
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dtype::F64 => "f64",
            Dtype::F32 => "f32",
        })
    }
}

impl std::str::FromStr for Dtype {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "f64" => Ok(Dtype::F64),
            "f32" => Ok(Dtype::F32),
            other => Err(CoreError::InvalidParameter {
                name: "dtype",
                reason: format!("unknown dtype `{other}`; expected f64 or f32"),
            }),
        }
    }
}

/// The scoring-kernel knobs surfaced through `JoinBuilder`, `IndexBuilder`
/// and the CLI (`dtype=`, `quantized=`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringOptions {
    /// Floating-point width of the brute / batched scoring kernel.
    pub dtype: Dtype,
    /// Score candidates with the `i8` fixed-point kernel and exactly re-score
    /// the conservatively pruned survivors in `f64`.
    pub quantized: bool,
}

impl ScoringOptions {
    /// `true` for the default configuration (`f64`, unquantized) whose results
    /// must stay bit-identical to the pre-kernel-pass engine.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// Lifetime activity tallies of the reduced-precision scoring paths, recorded
/// with relaxed atomics so concurrent engine workers can tick them lock-free.
///
/// The exact `f64` default path records nothing here — its zero-overhead
/// contract stays literal. `scored` counts candidates examined by a
/// reduced-precision kernel, `pruned` those eliminated by the conservative
/// bound without an exact dot product, `rescored` those re-scored exactly,
/// and `rescore_ns` the wall time of the prune-and-rescore passes.
#[derive(Debug, Default)]
pub struct KernelCounters {
    scored: AtomicU64,
    pruned: AtomicU64,
    rescored: AtomicU64,
    rescore_ns: AtomicU64,
}

impl KernelCounters {
    /// Fresh counters, all zero.
    pub const fn new() -> Self {
        Self {
            scored: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            rescored: AtomicU64::new(0),
            rescore_ns: AtomicU64::new(0),
        }
    }

    fn note(&self, scored: u64, pruned: u64, rescored: u64, rescore_ns: u64) {
        self.scored.fetch_add(scored, Ordering::Relaxed);
        self.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.rescored.fetch_add(rescored, Ordering::Relaxed);
        self.rescore_ns.fetch_add(rescore_ns, Ordering::Relaxed);
    }

    /// A copy of the current tallies. Each field is read independently, so
    /// under concurrent recording the copy can mix in-flight queries; exact
    /// only at quiescent points (the same model as the serving counters).
    pub fn activity(&self) -> KernelActivity {
        KernelActivity {
            scored: self.scored.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            rescored: self.rescored.load(Ordering::Relaxed),
            rescore_ns: self.rescore_ns.load(Ordering::Relaxed),
        }
    }
}

impl Clone for KernelCounters {
    /// Clones carry the tallies forward but diverge afterwards (each clone
    /// owns its own atomics) — matching value semantics of the owning index.
    fn clone(&self) -> Self {
        let a = self.activity();
        Self {
            scored: AtomicU64::new(a.scored),
            pruned: AtomicU64::new(a.pruned),
            rescored: AtomicU64::new(a.rescored),
            rescore_ns: AtomicU64::new(a.rescore_ns),
        }
    }
}

/// A plain-value copy of [`KernelCounters`] tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelActivity {
    /// Candidates examined by a reduced-precision kernel.
    pub scored: u64,
    /// Candidates eliminated by the conservative bound, never exactly scored.
    pub pruned: u64,
    /// Candidates re-scored exactly in `f64`.
    pub rescored: u64,
    /// Wall time of the prune-and-rescore passes.
    pub rescore_ns: u64,
}

impl KernelActivity {
    /// Field-wise sum — aggregates activity across kernels or shards.
    pub fn merged(self, other: Self) -> Self {
        Self {
            scored: self.scored.saturating_add(other.scored),
            pruned: self.pruned.saturating_add(other.pruned),
            rescored: self.rescored.saturating_add(other.rescored),
            rescore_ns: self.rescore_ns.saturating_add(other.rescore_ns),
        }
    }

    /// Field-wise difference against an earlier copy (saturating, so a torn
    /// concurrent read cannot underflow).
    pub fn delta_since(self, earlier: Self) -> Self {
        Self {
            scored: self.scored.saturating_sub(earlier.scored),
            pruned: self.pruned.saturating_sub(earlier.pruned),
            rescored: self.rescored.saturating_sub(earlier.rescored),
            rescore_ns: self.rescore_ns.saturating_sub(earlier.rescore_ns),
        }
    }
}

/// Data packed for the reduced-precision kernels selected by a
/// [`ScoringOptions`]: an `f32` tile, an `i8` quantized tile, or neither
/// (the default exact path needs no preprocessing).
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    options: ScoringOptions,
    f32_tile: Option<FloatTile>,
    quant: Option<QuantTile>,
    counters: KernelCounters,
}

/// Equality ignores the activity counters: two kernels prepared the same way
/// are the same kernel regardless of how much traffic each has served.
impl PartialEq for PreparedKernel {
    fn eq(&self, other: &Self) -> bool {
        self.options == other.options
            && self.f32_tile == other.f32_tile
            && self.quant == other.quant
    }
}

impl PreparedKernel {
    /// Packs `data` into the tile(s) the options call for. The default
    /// options prepare nothing (the exact path scores `DenseVector`s
    /// directly).
    pub fn prepare(data: &[DenseVector], options: ScoringOptions) -> Result<Self> {
        let quant = if options.quantized {
            Some(QuantTile::from_vectors(data)?)
        } else {
            None
        };
        let f32_tile = if options.dtype == Dtype::F32 && !options.quantized {
            Some(FloatTile::from_vectors(data)?)
        } else {
            None
        };
        Ok(Self {
            options,
            f32_tile,
            quant,
            counters: KernelCounters::new(),
        })
    }

    /// The options this kernel was prepared for.
    pub fn options(&self) -> ScoringOptions {
        self.options
    }

    /// The quantized tile, when `quantized=true`.
    pub fn quant_tile(&self) -> Option<&QuantTile> {
        self.quant.as_ref()
    }

    /// Lifetime scoring activity of this kernel (zero on the exact path).
    pub fn activity(&self) -> KernelActivity {
        self.counters.activity()
    }
}

/// The batched brute scan under the prepared kernel: same answer shape as
/// [`crate::mips::data_major_batch`], dispatched by [`ScoringOptions`].
///
/// The default options delegate to the exact `f64` scan (bit-identical);
/// `quantized` runs the prune-and-rescore kernel whose final matches are
/// *identical* to the exact scan (see the module docs for the argument);
/// `f32` runs the tiled single-precision argmax with the winner exactly
/// re-scored, which preserves validity exactly and differs from `f64` only
/// on near-ties.
pub(crate) fn scored_batch(
    data: &[DenseVector],
    prepared: &PreparedKernel,
    queries: &[DenseVector],
    spec: &JoinSpec,
) -> Result<Vec<Option<SearchResult>>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    if data.is_empty() {
        return Err(CoreError::EmptyDataSet);
    }
    match (&prepared.quant, &prepared.f32_tile) {
        (Some(quant), _) => queries
            .iter()
            .map(|q| quantized_best(data, quant, q, spec, &prepared.counters))
            .collect(),
        (None, Some(tile)) => queries
            .iter()
            .map(|q| f32_best(data, tile, q, spec, &prepared.counters))
            .collect(),
        (None, None) => crate::mips::data_major_batch(data, queries, spec),
    }
}

/// One query against the `f32` tile: single-precision argmax, exact `f64`
/// re-score of the winner, promise filter — mirroring the exact scan's
/// strict-`>` earliest-argmax rule at `f32` precision.
fn f32_best(
    data: &[DenseVector],
    tile: &FloatTile,
    query: &DenseVector,
    spec: &JoinSpec,
    counters: &KernelCounters,
) -> Result<Option<SearchResult>> {
    if query.dim() != tile.dim() {
        // Score through the checked path to fail exactly as the f64 scan would.
        data[0].dot(query)?;
    }
    let q32: Vec<f32> = query.iter().map(|&x| x as f32).collect();
    let mut best: Option<(usize, f32)> = None;
    for (i, row) in tile.iter_rows().enumerate() {
        let value = match spec.variant {
            crate::problem::JoinVariant::Signed => ips_linalg::tile::dot_f32(row, &q32),
            crate::problem::JoinVariant::Unsigned => ips_linalg::tile::dot_f32(row, &q32).abs(),
        };
        if best.map(|(_, b)| value > b).unwrap_or(true) {
            best = Some((i, value));
        }
    }
    let Some((winner, _)) = best else {
        counters.note(tile.rows() as u64, 0, 0, 0);
        return Ok(None);
    };
    counters.note(tile.rows() as u64, 0, 1, 0);
    let ip = data[winner].dot(query)?;
    Ok(Some(SearchResult {
        data_index: winner,
        inner_product: ip,
    })
    .filter(|b| spec.satisfies_promise(b.inner_product)))
}

/// One query against the quantized tile: approximate scores with rigorous
/// bounds, conservative argmax pruning, exact re-score of every survivor.
/// Identical final answer to the exact `f64` scan (module docs).
fn quantized_best(
    data: &[DenseVector],
    quant: &QuantTile,
    query: &DenseVector,
    spec: &JoinSpec,
    counters: &KernelCounters,
) -> Result<Option<SearchResult>> {
    if query.dim() != quant.dim() {
        data[0].dot(query)?;
    }
    let qv = QuantVector::from_vector(query);
    let mut best: Option<SearchResult> = None;
    let consider = |i: usize, best: &mut Option<SearchResult>| -> Result<()> {
        let ip = data[i].dot(query)?;
        let value = spec.variant.value(ip);
        let better = best
            .as_ref()
            .map(|b| value > spec.variant.value(b.inner_product))
            .unwrap_or(true);
        if better {
            *best = Some(SearchResult {
                data_index: i,
                inner_product: ip,
            });
        }
        Ok(())
    };
    // Certified lower bound on the true maximum value.
    let mut floor = f64::NEG_INFINITY;
    let mut approx = Vec::with_capacity(quant.rows());
    for i in 0..quant.rows() {
        let a = spec.variant.value(quant.approx_dot(i, &qv));
        let b = quant.error_bound(i, &qv);
        floor = floor.max(a - b);
        approx.push((a, b));
    }
    let rescore_start = Instant::now();
    let mut rescored = 0u64;
    for (i, &(a, b)) in approx.iter().enumerate() {
        // Keep iff the optimistic value could still reach the floor: every
        // true maximiser satisfies a + b >= value >= floor.
        if a + b >= floor {
            rescored += 1;
            consider(i, &mut best)?;
        }
    }
    counters.note(
        quant.rows() as u64,
        (quant.rows() as u64).saturating_sub(rescored),
        rescored,
        rescore_start.elapsed().as_nanos() as u64,
    );
    Ok(best.filter(|b| spec.satisfies_promise(b.inner_product)))
}

/// The best result among an ordered candidate list, scored through the
/// quantized prune-and-rescore kernel: identical to exactly scoring every
/// candidate in order with the strict-`>` update (no promise or
/// acceptability filter — callers apply their own, as the exact loops do).
pub(crate) fn best_among_candidates_quantized(
    data: &[DenseVector],
    quant: &QuantTile,
    candidates: &[usize],
    query: &DenseVector,
    spec: &JoinSpec,
    counters: &KernelCounters,
) -> Result<Option<SearchResult>> {
    if let Some(&first) = candidates.first() {
        if query.dim() != quant.dim() {
            data[first].dot(query)?;
        }
    }
    let qv = QuantVector::from_vector(query);
    let mut floor = f64::NEG_INFINITY;
    let mut approx = Vec::with_capacity(candidates.len());
    for &i in candidates {
        let a = spec.variant.value(quant.approx_dot(i, &qv));
        let b = quant.error_bound(i, &qv);
        floor = floor.max(a - b);
        approx.push((a, b));
    }
    let rescore_start = Instant::now();
    let mut rescored = 0u64;
    let mut best: Option<SearchResult> = None;
    for (&i, &(a, b)) in candidates.iter().zip(approx.iter()) {
        if a + b < floor {
            continue;
        }
        rescored += 1;
        let ip = data[i].dot(query)?;
        let value = spec.variant.value(ip);
        let better = best
            .as_ref()
            .map(|bst| value > spec.variant.value(bst.inner_product))
            .unwrap_or(true);
        if better {
            best = Some(SearchResult {
                data_index: i,
                inner_product: ip,
            });
        }
    }
    counters.note(
        candidates.len() as u64,
        (candidates.len() as u64).saturating_sub(rescored),
        rescored,
        rescore_start.elapsed().as_nanos() as u64,
    );
    Ok(best)
}

/// Top-`k` over a candidate list through the quantized kernel: candidates
/// are conservatively pruned against the `k`-th largest *pessimistic* value,
/// survivors are exactly re-scored, and the same finalize rule (retain
/// acceptable, sort by value then index, truncate) runs on the survivors.
///
/// Every member of the exact top-`k` list survives the prune: its true value
/// is at least the `k`-th largest true value, which is at least the `k`-th
/// largest pessimistic value (pessimistic ≤ true pointwise), and its
/// optimistic value is at least its true value.
pub(crate) fn top_k_candidates_quantized(
    data: &[DenseVector],
    quant: &QuantTile,
    candidates: &[usize],
    query: &DenseVector,
    spec: &JoinSpec,
    k: usize,
    counters: &KernelCounters,
) -> Result<Vec<usize>> {
    if candidates.len() <= k {
        return Ok(candidates.to_vec());
    }
    if let Some(&first) = candidates.first() {
        if query.dim() != quant.dim() {
            data[first].dot(query)?;
        }
    }
    let qv = QuantVector::from_vector(query);
    let mut approx = Vec::with_capacity(candidates.len());
    let mut pessimistic = Vec::with_capacity(candidates.len());
    for &i in candidates {
        let a = spec.variant.value(quant.approx_dot(i, &qv));
        let b = quant.error_bound(i, &qv);
        approx.push((a, b));
        pessimistic.push(a - b);
    }
    pessimistic.sort_by(|x, y| y.partial_cmp(x).expect("bounds are finite"));
    let floor = pessimistic[k - 1];
    let survivors: Vec<usize> = candidates
        .iter()
        .zip(approx.iter())
        .filter(|(_, &(a, b))| a + b >= floor)
        .map(|(&i, _)| i)
        .collect();
    // The caller exactly re-scores every survivor (`rescore_candidates`), so
    // the survivor count is the rescored count; its wall time is not on this
    // side of the call and stays out of `rescore_ns`.
    counters.note(
        candidates.len() as u64,
        (candidates.len() as u64).saturating_sub(survivors.len() as u64),
        survivors.len() as u64,
        0,
    );
    Ok(survivors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mips::data_major_batch;
    use crate::problem::JoinVariant;
    use ips_linalg::random::random_ball_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::str::FromStr;

    fn vectors(rng: &mut StdRng, count: usize, dim: usize) -> Vec<DenseVector> {
        (0..count)
            .map(|_| random_ball_vector(rng, dim, 1.0).unwrap())
            .collect()
    }

    #[test]
    fn dtype_parse_and_display_roundtrip() {
        assert_eq!(Dtype::from_str("f64").unwrap(), Dtype::F64);
        assert_eq!(Dtype::from_str("f32").unwrap(), Dtype::F32);
        assert!(Dtype::from_str("f16").is_err());
        assert_eq!(Dtype::F64.to_string(), "f64");
        assert_eq!(Dtype::F32.to_string(), "f32");
        assert!(ScoringOptions::default().is_default());
        assert!(!ScoringOptions {
            quantized: true,
            ..Default::default()
        }
        .is_default());
    }

    #[test]
    fn default_options_prepare_nothing_and_delegate_bit_identically() {
        let mut rng = StdRng::seed_from_u64(0xD7);
        let data = vectors(&mut rng, 40, 16);
        let queries = vectors(&mut rng, 9, 16);
        let spec = JoinSpec::new(0.1, 0.8, JoinVariant::Signed).unwrap();
        let prepared = PreparedKernel::prepare(&data, ScoringOptions::default()).unwrap();
        assert!(prepared.quant_tile().is_none());
        let exact = data_major_batch(&data, &queries, &spec).unwrap();
        let kernel = scored_batch(&data, &prepared, &queries, &spec).unwrap();
        assert_eq!(exact.len(), kernel.len());
        for (e, k) in exact.iter().zip(kernel.iter()) {
            match (e, k) {
                (None, None) => {}
                (Some(e), Some(k)) => {
                    assert_eq!(e.data_index, k.data_index);
                    assert_eq!(e.inner_product.to_bits(), k.inner_product.to_bits());
                }
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn quantized_batch_is_identical_to_exact_for_both_variants() {
        let mut rng = StdRng::seed_from_u64(0xABCD);
        for variant in [JoinVariant::Signed, JoinVariant::Unsigned] {
            let data = vectors(&mut rng, 120, 24);
            let queries = vectors(&mut rng, 25, 24);
            let spec = JoinSpec::new(0.05, 0.9, variant).unwrap();
            let options = ScoringOptions {
                quantized: true,
                ..Default::default()
            };
            let prepared = PreparedKernel::prepare(&data, options).unwrap();
            let exact = data_major_batch(&data, &queries, &spec).unwrap();
            let quant = scored_batch(&data, &prepared, &queries, &spec).unwrap();
            assert_eq!(exact, quant);
        }
    }

    #[test]
    fn f32_batch_winners_are_valid_and_exactly_scored() {
        let mut rng = StdRng::seed_from_u64(0xF32);
        let data = vectors(&mut rng, 80, 16);
        let queries = vectors(&mut rng, 20, 16);
        let spec = JoinSpec::new(0.05, 0.8, JoinVariant::Signed).unwrap();
        let options = ScoringOptions {
            dtype: Dtype::F32,
            quantized: false,
        };
        let prepared = PreparedKernel::prepare(&data, options).unwrap();
        let hits = scored_batch(&data, &prepared, &queries, &spec).unwrap();
        for (j, hit) in hits.iter().enumerate() {
            if let Some(h) = hit {
                let true_ip = data[h.data_index].dot(&queries[j]).unwrap();
                assert_eq!(true_ip.to_bits(), h.inner_product.to_bits());
                assert!(spec.satisfies_promise(h.inner_product));
            }
        }
    }

    #[test]
    fn candidate_kernels_match_plain_rescoring() {
        let mut rng = StdRng::seed_from_u64(0xCA2D);
        let data = vectors(&mut rng, 100, 12);
        let quant = QuantTile::from_vectors(&data).unwrap();
        let query = random_ball_vector(&mut rng, 12, 1.0).unwrap();
        let spec = JoinSpec::new(0.05, 0.9, JoinVariant::Signed).unwrap();
        let candidates: Vec<usize> = (0..100).step_by(3).collect();

        // Exact reference: strict-> loop over the candidates in order.
        let mut reference: Option<SearchResult> = None;
        for &i in &candidates {
            let ip = data[i].dot(&query).unwrap();
            let better = reference
                .as_ref()
                .map(|b| spec.variant.value(ip) > spec.variant.value(b.inner_product))
                .unwrap_or(true);
            if better {
                reference = Some(SearchResult {
                    data_index: i,
                    inner_product: ip,
                });
            }
        }
        let counters = KernelCounters::new();
        let got =
            best_among_candidates_quantized(&data, &quant, &candidates, &query, &spec, &counters)
                .unwrap();
        assert_eq!(reference, got);
        let activity = counters.activity();
        assert_eq!(activity.scored, candidates.len() as u64);
        assert_eq!(activity.pruned + activity.rescored, activity.scored);
        assert_eq!(
            best_among_candidates_quantized(&data, &quant, &[], &query, &spec, &counters).unwrap(),
            None
        );

        // The top-k prune keeps a superset of the exact top-k indices.
        let k = 7;
        let survivors =
            top_k_candidates_quantized(&data, &quant, &candidates, &query, &spec, k, &counters)
                .unwrap();
        let mut scored: Vec<(f64, usize)> = candidates
            .iter()
            .map(|&i| (spec.variant.value(data[i].dot(&query).unwrap()), i))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, i) in scored.iter().take(k) {
            assert!(survivors.contains(&i), "exact top-k member {i} was pruned");
        }
        // Small candidate lists skip pruning entirely.
        let few: Vec<usize> = (0..5).collect();
        assert_eq!(
            top_k_candidates_quantized(&data, &quant, &few, &query, &spec, 5, &counters).unwrap(),
            few
        );
    }

    #[test]
    fn kernel_activity_counts_the_quantized_scan_and_ignores_the_exact_path() {
        let mut rng = StdRng::seed_from_u64(0xAC7);
        let data = vectors(&mut rng, 60, 12);
        let queries = vectors(&mut rng, 8, 12);
        let spec = JoinSpec::new(0.05, 0.9, JoinVariant::Signed).unwrap();

        let exact = PreparedKernel::prepare(&data, ScoringOptions::default()).unwrap();
        scored_batch(&data, &exact, &queries, &spec).unwrap();
        assert_eq!(exact.activity(), KernelActivity::default());

        let quant = PreparedKernel::prepare(
            &data,
            ScoringOptions {
                quantized: true,
                ..Default::default()
            },
        )
        .unwrap();
        scored_batch(&data, &quant, &queries, &spec).unwrap();
        let a = quant.activity();
        assert_eq!(a.scored, (data.len() * queries.len()) as u64);
        assert_eq!(a.pruned + a.rescored, a.scored);
        assert!(
            a.rescored >= queries.len() as u64,
            "each query rescores its floor witness"
        );

        // Counters never participate in kernel equality, and clones diverge.
        let fresh = PreparedKernel::prepare(
            &data,
            ScoringOptions {
                quantized: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(quant, fresh);
        let cloned = quant.clone();
        scored_batch(&data, &cloned, &queries, &spec).unwrap();
        assert_eq!(quant.activity(), a, "the original's tallies are untouched");
        assert_eq!(cloned.activity().scored, 2 * a.scored);

        // Activity arithmetic: merge and delta are field-wise.
        let merged = a.merged(a);
        assert_eq!(merged.scored, 2 * a.scored);
        assert_eq!(merged.delta_since(a), a);
    }

    #[test]
    fn dimension_mismatch_fails_like_the_exact_path() {
        let data = vec![DenseVector::from(&[1.0, 0.0][..])];
        let queries = vec![DenseVector::from(&[1.0, 0.0, 0.0][..])];
        let spec = JoinSpec::new(0.1, 0.9, JoinVariant::Signed).unwrap();
        for options in [
            ScoringOptions {
                dtype: Dtype::F32,
                quantized: false,
            },
            ScoringOptions {
                quantized: true,
                ..Default::default()
            },
        ] {
            let prepared = PreparedKernel::prepare(&data, options).unwrap();
            assert!(scored_batch(&data, &prepared, &queries, &spec).is_err());
        }
    }
}
