//! The hardness landscape of Table 1.
//!
//! Table 1 of the paper summarises, for each problem variant (signed/unsigned join over
//! `{−1,1}^d` or `{0,1}^d`), the ranges of the approximation factor `c` — equivalently
//! of the ratio `log(s/d)/log(cs/d)` — for which a truly subquadratic join algorithm
//! would refute the OVP conjecture ("hard"), and the ranges for which subquadratic
//! algorithms are actually known ("permissible"). This module turns those asymptotic
//! statements into concrete, testable predicates for a given instance size `n`, using
//! the natural reading of the `o(·)` terms:
//!
//! * `c ≥ e^{−o(√(log n / log log n))}` becomes `c ≥ e^{−√(ln n / ln ln n)}`,
//! * `c = 1 − o(1)` becomes `c ≥ 1 − 1/log₂ n`,
//! * "permissible when `c < n^{−ε}`" is evaluated at a caller-supplied `ε`.
//!
//! The classification drives the `table1` benchmark binary (experiment E1), which also
//! cross-checks the "hard" rows against the gap guarantees of the concrete embeddings
//! in `ips-ovp`.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The vector domain of a Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VectorDomain {
    /// Vectors over `{−1, +1}`.
    PlusMinusOne,
    /// Vectors over `{0, 1}`.
    ZeroOne,
}

/// The problem variant of a Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemVariant {
    /// Signed `(cs, s)` join.
    Signed,
    /// Unsigned `(cs, s)` join.
    Unsigned,
}

/// The verdict for a parameter regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hardness {
    /// A truly subquadratic algorithm in this regime would refute the OVP conjecture
    /// (Theorems 1 and 2).
    Hard,
    /// A truly subquadratic algorithm is known in this regime (Section 4.3 /
    /// Karppa et al. \[29\]).
    Permissible,
    /// Neither a hardness reduction nor a subquadratic algorithm is known.
    Open,
}

/// Classifies an approximation factor `c` for a given problem, domain, and instance
/// size `n`, following the second and third columns of Table 1. `permissible_epsilon`
/// is the `ε` in the "`c < n^{−ε}` is permissible" entries.
pub fn classify_approximation(
    domain: VectorDomain,
    variant: ProblemVariant,
    c: f64,
    n: usize,
    permissible_epsilon: f64,
) -> Result<Hardness> {
    if !(c > 0.0 && c < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "c",
            reason: format!("approximation factor must lie in (0,1), got {c}"),
        });
    }
    if n < 4 {
        return Err(CoreError::InvalidParameter {
            name: "n",
            reason: "instance size must be at least 4".into(),
        });
    }
    if !(permissible_epsilon > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "permissible_epsilon",
            reason: "epsilon must be positive".into(),
        });
    }
    let n_f = n as f64;
    let permissible_cutoff = n_f.powf(-permissible_epsilon);
    let verdict = match (domain, variant) {
        // Signed {−1,1}: hard for every c > 0 (Theorem 1, case 1); nothing permissible.
        (VectorDomain::PlusMinusOne, ProblemVariant::Signed) => Hardness::Hard,
        // Unsigned {−1,1}: hard when c ≥ e^{−√(log n / log log n)}; permissible when
        // c < n^{−ε} (the Section 4.3 sketch, or Karppa et al. with FMM).
        (VectorDomain::PlusMinusOne, ProblemVariant::Unsigned) => {
            let hard_cutoff = (-(n_f.ln() / n_f.ln().ln().max(1.0)).sqrt()).exp();
            if c >= hard_cutoff {
                Hardness::Hard
            } else if c < permissible_cutoff {
                Hardness::Permissible
            } else {
                Hardness::Open
            }
        }
        // {0,1}: the signed and unsigned versions coincide for nonnegative data; hard
        // only when c = 1 − o(1), permissible when c < n^{−ε}.
        (VectorDomain::ZeroOne, _) => {
            let hard_cutoff = 1.0 - 1.0 / n_f.log2();
            if c >= hard_cutoff {
                Hardness::Hard
            } else if c < permissible_cutoff {
                Hardness::Permissible
            } else {
                Hardness::Open
            }
        }
    };
    Ok(verdict)
}

/// Classifies a ratio `log(s/d)/log(cs/d)` for the unsigned problems, following the
/// fourth and fifth columns of Table 1: hard when the ratio is `1 − o(1/√(log n))`
/// (`{−1,1}`) or `1 − o(1/log n)` (`{0,1}`); permissible when the ratio is bounded away
/// from 1 by a constant `margin`.
pub fn classify_ratio(domain: VectorDomain, ratio: f64, n: usize, margin: f64) -> Result<Hardness> {
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "ratio",
            reason: format!("log(s/d)/log(cs/d) must lie in (0,1], got {ratio}"),
        });
    }
    if n < 4 {
        return Err(CoreError::InvalidParameter {
            name: "n",
            reason: "instance size must be at least 4".into(),
        });
    }
    if !(margin > 0.0 && margin < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "margin",
            reason: format!("margin must lie in (0,1), got {margin}"),
        });
    }
    let n_f = n as f64;
    let hard_cutoff = match domain {
        VectorDomain::PlusMinusOne => 1.0 - 1.0 / n_f.log2().sqrt(),
        VectorDomain::ZeroOne => 1.0 - 1.0 / n_f.log2(),
    };
    Ok(if ratio >= hard_cutoff {
        Hardness::Hard
    } else if ratio <= 1.0 - margin {
        Hardness::Permissible
    } else {
        Hardness::Open
    })
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Human-readable problem name (first column of the table).
    pub problem: String,
    /// Hard approximation range, parametrised by `c`.
    pub hard_c: String,
    /// Permissible approximation range, parametrised by `c`.
    pub permissible_c: String,
    /// Hard range of the ratio `log(s/d)/log(cs/d)`.
    pub hard_ratio: String,
    /// Permissible range of the ratio.
    pub permissible_ratio: String,
}

/// The three rows of Table 1, as printable strings (the `table1` bench binary augments
/// them with numerically verified embedding gaps).
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            problem: "Signed (cs,s) over {-1,1}^d".to_string(),
            hard_c: "c > 0".to_string(),
            permissible_c: "-".to_string(),
            hard_ratio: "log(s/d)/log(cs/d) > 0".to_string(),
            permissible_ratio: "-".to_string(),
        },
        Table1Row {
            problem: "Unsigned (cs,s) over {-1,1}^d".to_string(),
            hard_c: "c >= exp(-o(sqrt(log n / log log n)))".to_string(),
            permissible_c: "c < n^-eps  [29] / Sec. 4.3".to_string(),
            hard_ratio: ">= 1 - o(1/sqrt(log n))".to_string(),
            permissible_ratio: "= 1 - eps [29];  = 1/2 - eps".to_string(),
        },
        Table1Row {
            problem: "Unsigned (cs,s) over {0,1}^d".to_string(),
            hard_c: "c >= 1 - o(1)".to_string(),
            permissible_c: "c < n^-eps".to_string(),
            hard_ratio: ">= 1 - o(1/log n)".to_string(),
            permissible_ratio: "= 1 - eps".to_string(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 20;

    #[test]
    fn signed_pm1_is_always_hard() {
        for &c in &[1e-6, 0.01, 0.5, 0.999] {
            assert_eq!(
                classify_approximation(
                    VectorDomain::PlusMinusOne,
                    ProblemVariant::Signed,
                    c,
                    N,
                    0.1
                )
                .unwrap(),
                Hardness::Hard
            );
        }
    }

    #[test]
    fn unsigned_pm1_transitions_from_permissible_to_hard() {
        // Tiny c (polynomially small) is permissible; constant c is hard.
        assert_eq!(
            classify_approximation(
                VectorDomain::PlusMinusOne,
                ProblemVariant::Unsigned,
                1e-4,
                N,
                0.25
            )
            .unwrap(),
            Hardness::Permissible
        );
        assert_eq!(
            classify_approximation(
                VectorDomain::PlusMinusOne,
                ProblemVariant::Unsigned,
                0.5,
                N,
                0.25
            )
            .unwrap(),
            Hardness::Hard
        );
    }

    #[test]
    fn zero_one_constant_c_is_open() {
        // The headline open problem: constant approximation over {0,1} is neither hard
        // nor known to be easy.
        assert_eq!(
            classify_approximation(
                VectorDomain::ZeroOne,
                ProblemVariant::Unsigned,
                0.5,
                N,
                0.25
            )
            .unwrap(),
            Hardness::Open
        );
        // c extremely close to 1 is hard.
        assert_eq!(
            classify_approximation(
                VectorDomain::ZeroOne,
                ProblemVariant::Unsigned,
                1.0 - 1e-9,
                N,
                0.25
            )
            .unwrap(),
            Hardness::Hard
        );
        // Polynomially small c is permissible.
        assert_eq!(
            classify_approximation(
                VectorDomain::ZeroOne,
                ProblemVariant::Unsigned,
                1e-4,
                N,
                0.25
            )
            .unwrap(),
            Hardness::Permissible
        );
    }

    #[test]
    fn ratio_classification_matches_table() {
        assert_eq!(
            classify_ratio(VectorDomain::PlusMinusOne, 0.9999, N, 0.25).unwrap(),
            Hardness::Hard
        );
        assert_eq!(
            classify_ratio(VectorDomain::PlusMinusOne, 0.5, N, 0.25).unwrap(),
            Hardness::Permissible
        );
        // {0,1} has a weaker hardness cutoff than {-1,1}: there is a ratio that is hard
        // for {-1,1} but not for {0,1}.
        let borderline = 1.0 - 1.0 / (N as f64).log2().sqrt();
        assert_eq!(
            classify_ratio(VectorDomain::PlusMinusOne, borderline, N, 0.25).unwrap(),
            Hardness::Hard
        );
        assert_ne!(
            classify_ratio(VectorDomain::ZeroOne, borderline, N, 0.25).unwrap(),
            Hardness::Hard
        );
    }

    #[test]
    fn validation_errors() {
        assert!(classify_approximation(
            VectorDomain::ZeroOne,
            ProblemVariant::Unsigned,
            1.5,
            N,
            0.25
        )
        .is_err());
        assert!(classify_approximation(
            VectorDomain::ZeroOne,
            ProblemVariant::Unsigned,
            0.5,
            2,
            0.25
        )
        .is_err());
        assert!(classify_approximation(
            VectorDomain::ZeroOne,
            ProblemVariant::Unsigned,
            0.5,
            N,
            0.0
        )
        .is_err());
        assert!(classify_ratio(VectorDomain::ZeroOne, 1.5, N, 0.25).is_err());
        assert!(classify_ratio(VectorDomain::ZeroOne, 0.5, 2, 0.25).is_err());
        assert!(classify_ratio(VectorDomain::ZeroOne, 0.5, N, 1.5).is_err());
    }

    #[test]
    fn table_has_three_rows_matching_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].problem.contains("Signed"));
        assert!(rows[1].problem.contains("{-1,1}"));
        assert!(rows[2].problem.contains("{0,1}"));
        assert_eq!(rows[0].permissible_c, "-");
        assert!(rows[2].hard_c.contains("1 - o(1)"));
    }
}
