//! Cost-based adaptive join planning: choose the join strategy, don't ask the caller.
//!
//! The paper's central message is that no single inner-product-join strategy
//! dominates: the quadratic scan, the Section 4.1 asymmetric-LSH reduction, the
//! Section 4.2 symmetric LSH and the Section 4.3 sketch structure each win in
//! different `(n, m, d, threshold, correlation)` regimes. This module turns that
//! observation into a system: [`JoinPlanner`] estimates what each strategy
//! *would* cost on the workload at hand and dispatches the winner through the
//! existing [`JoinEngine`], so callers write [`auto_join`] instead of picking
//! one of the four manual entry points in [`crate::join`].
//!
//! The pipeline is classical cost-based query planning:
//!
//! 1. **Statistics** — [`WorkloadStats::sample`] measures `n`, `m`, `d` and the
//!    norm distributions exactly (one pass, the same order of work as answering
//!    a single brute-force query), and estimates the inner-product distribution
//!    from a *sampled mini-join*: a few dozen data and query vectors are drawn
//!    and their cross inner products computed, giving the promise/output pair
//!    densities and the sample the LSH candidate-set predictor extrapolates
//!    from.
//! 2. **Cost model** — closed-form flop counts per strategy (the LSH hashing
//!    and candidate predictions come from [`ips_lsh::cost`], the sketch-tree
//!    shapes from [`ips_sketch::cost`]) are scaled by per-strategy
//!    nanoseconds-per-flop constants in [`CostModel`], fitted on real
//!    measurements by the `calibrate_planner` binary in `ips-bench`.
//! 3. **Eligibility** — strategies whose domain preconditions the workload
//!    violates (ALSH and symmetric LSH need data in the unit ball, symmetric
//!    LSH needs the queries there too) are excluded rather than mis-costed.
//! 4. **Dispatch** — the cheapest eligible strategy is recorded in a
//!    [`JoinPlan`], which [`JoinPlan::execute`]s through exactly the same
//!    `*_engine` entry points a caller would use manually, so a plan's result
//!    is bit-identical to the manual call with the same parameters and RNG.
//!
//! Ties favour the earlier entry in [`Strategy::ALL`], which lists the exact
//! scan first — when the model cannot separate two strategies, the planner
//! prefers the one with guaranteed recall.

use crate::asymmetric::AlshParams;
use crate::brute::BorrowedBruteIndex;
use crate::engine::{EngineConfig, JoinEngine};
use crate::error::{CoreError, Result};
use crate::join::{alsh_engine_scored, sketch_engine, symmetric_engine_scored};
use crate::problem::{JoinSpec, MatchPair};
use crate::symmetric::{SymmetricParams, SymmetricSphereMap};
use ips_linalg::DenseVector;
use ips_sketch::linf_mips::MaxIpConfig;
use rand::Rng;

/// Tolerance applied to unit-ball eligibility checks, matching the slack the
/// index constructors themselves allow on vector norms.
const NORM_TOLERANCE: f64 = 1e-9;

/// The join strategies the planner chooses between — one per manual entry
/// point in [`crate::join`] plus the exact scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The exact data-major quadratic scan ([`crate::brute`]).
    BruteForce,
    /// The Section 4.1 asymmetric-LSH index ([`crate::join::alsh_join`]).
    Alsh,
    /// The Section 4.2 symmetric LSH ([`crate::join::symmetric_join`]).
    Symmetric,
    /// The Section 4.3 linear-sketch structure ([`crate::join::sketch_join`]).
    Sketch,
}

impl Strategy {
    /// Every strategy, in tie-breaking order: exact first, then the
    /// approximate structures in paper-section order.
    pub const ALL: [Strategy; 4] = [
        Strategy::BruteForce,
        Strategy::Alsh,
        Strategy::Symmetric,
        Strategy::Sketch,
    ];

    /// The name used by the CLI (`algorithm=`) and in explain output.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute",
            Strategy::Alsh => "alsh",
            Strategy::Symmetric => "symmetric",
            Strategy::Sketch => "sketch",
        }
    }

    /// Whether the strategy answers every promised query (recall 1 by
    /// construction rather than by measurement).
    pub fn is_exact(self) -> bool {
        matches!(self, Strategy::BruteForce)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload statistics the cost model consumes.
///
/// All fields are public so decision tests (and external tooling) can pin
/// planner behaviour on hand-built statistics without materialising a
/// workload; [`WorkloadStats::sample`] is how real workloads are measured.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of data vectors `n = |P|`.
    pub data_count: usize,
    /// Number of query vectors `m = |Q|`.
    pub query_count: usize,
    /// Shared dimensionality `d`.
    pub dim: usize,
    /// Largest data-vector norm (decides unit-ball eligibility).
    pub max_data_norm: f64,
    /// Mean data-vector norm.
    pub mean_data_norm: f64,
    /// Largest query-vector norm (decides the ALSH query radius `U`).
    pub max_query_norm: f64,
    /// Mean query-vector norm.
    pub mean_query_norm: f64,
    /// Sampled fraction of (data, query) pairs clearing the promise
    /// threshold `s` under the spec's variant.
    pub promise_density: f64,
    /// Sampled fraction of pairs clearing the relaxed threshold `cs`.
    pub output_density: f64,
    /// The raw inner products of the sampled mini-join, kept so the LSH
    /// candidate-set predictor can extrapolate collision probabilities.
    pub sampled_inner_products: Vec<f64>,
}

impl WorkloadStats {
    /// Measures a workload: exact `n`/`m`/`d`/norm statistics plus a sampled
    /// mini-join of at most `sample_data × sample_queries` inner products.
    ///
    /// Fails on an empty data set (nothing can be planned, matching the join
    /// entry points) and on mixed dimensions. An empty *query* set is fine and
    /// produces an empty sample.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        data: &[DenseVector],
        queries: &[DenseVector],
        spec: JoinSpec,
        sample_data: usize,
        sample_queries: usize,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataSet);
        }
        let dim = data[0].dim();
        for v in data.iter().chain(queries) {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        let (max_data_norm, mean_data_norm) = norm_stats(data);
        let (max_query_norm, mean_query_norm) = norm_stats(queries);

        let mut sampled = Vec::new();
        if !queries.is_empty() && sample_data > 0 && sample_queries > 0 {
            let picked_data = sample_indices(rng, data.len(), sample_data);
            let picked_queries = sample_indices(rng, queries.len(), sample_queries);
            sampled.reserve(picked_data.len() * picked_queries.len());
            for &i in &picked_data {
                for &j in &picked_queries {
                    sampled.push(data[i].dot(&queries[j])?);
                }
            }
        }
        let total = sampled.len().max(1) as f64;
        let promise_density = sampled
            .iter()
            .filter(|&&ip| spec.satisfies_promise(ip))
            .count() as f64
            / total;
        let output_density =
            sampled.iter().filter(|&&ip| spec.acceptable(ip)).count() as f64 / total;
        Ok(Self {
            data_count: data.len(),
            query_count: queries.len(),
            dim,
            max_data_norm,
            mean_data_norm,
            max_query_norm,
            mean_query_norm,
            promise_density,
            output_density,
            sampled_inner_products: sampled,
        })
    }

    /// Normalized drift of these statistics relative to a `baseline`: the
    /// largest relative change across the dimensions the cost model is
    /// sensitive to (`n`, the norm means, and the promise/output densities).
    ///
    /// The score is in `[0, 1]` — 0 when every dimension is unchanged, 1 when
    /// some dimension moved by its own magnitude (e.g. a density collapsing to
    /// zero or the data set doubling). Taking the max rather than a weighted
    /// sum keeps the score interpretable: "the most-drifted statistic moved by
    /// this fraction", which is what a hysteresis threshold should gate on —
    /// a single flipped dimension is enough to flip the plan, so averaging it
    /// away against stable dimensions would blind the detector.
    pub fn drift_from(&self, baseline: &Self) -> f64 {
        fn rel(now: f64, then: f64) -> f64 {
            let scale = now.abs().max(then.abs());
            if scale < 1e-12 {
                0.0
            } else {
                ((now - then).abs() / scale).min(1.0)
            }
        }
        [
            rel(self.data_count as f64, baseline.data_count as f64),
            rel(self.mean_data_norm, baseline.mean_data_norm),
            rel(self.mean_query_norm, baseline.mean_query_norm),
            rel(self.max_query_norm, baseline.max_query_norm),
            rel(self.promise_density, baseline.promise_density),
            rel(self.output_density, baseline.output_density),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

fn norm_stats(vectors: &[DenseVector]) -> (f64, f64) {
    if vectors.is_empty() {
        return (0.0, 0.0);
    }
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for v in vectors {
        let n = v.norm();
        max = max.max(n);
        sum += n;
    }
    (max, sum / vectors.len() as f64)
}

/// `count` indices drawn uniformly (with replacement) from `0..len`, or every
/// index when the population is no larger than the request.
fn sample_indices<R: Rng + ?Sized>(rng: &mut R, len: usize, count: usize) -> Vec<usize> {
    if len <= count {
        (0..len).collect()
    } else {
        (0..count).map(|_| rng.gen_range(0..len)).collect()
    }
}

/// Per-strategy nanoseconds-per-flop constants.
///
/// The flop counts in [`JoinPlanner::plan_from_stats`] are exact arithmetic
/// over known shapes; these constants absorb everything the counts ignore —
/// memory traffic, bucket bookkeeping, per-query overhead — on a concrete
/// machine. The defaults were fitted by `cargo run --release -p ips-bench
/// --bin calibrate_planner` (least squares through the origin over the
/// adversarial workload suite of `ips_datagen::adversarial`); rerun it to
/// refit for different hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// ns per flop of the data-major brute-force kernel.
    pub brute_ns_per_flop: f64,
    /// ns per flop of the tiled `f32` brute kernel (`dtype=f32`), measured by
    /// the `kernel_throughput` bench bin in `ips-bench`.
    pub brute_f32_ns_per_flop: f64,
    /// ns per flop of the `i8` quantized brute kernel (`quantized=true`,
    /// including the exact rescoring of pruned survivors), measured by
    /// `kernel_throughput`.
    pub brute_quantized_ns_per_flop: f64,
    /// ns per flop of ALSH hashing + candidate re-scoring.
    pub alsh_ns_per_flop: f64,
    /// ns per flop of the symmetric map + hashing + re-scoring.
    pub symmetric_ns_per_flop: f64,
    /// ns per flop of the sketch tree's dense linear algebra.
    pub sketch_ns_per_flop: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Fitted by calibrate_planner on the reference container (single
        // CPU): the brute kernel's data-major loop is far cheaper per flop
        // than the LSH strategies' bucket bookkeeping, which is exactly why a
        // planner is needed — flop counts alone would flip to an index far
        // too early. Last refit after the probes-aware candidate model
        // landed (the ALSH flop prediction now includes probed lookups).
        Self {
            brute_ns_per_flop: 0.415,
            // Reduced-precision brute kernels: the calibrated f64 constant
            // scaled by the dim=32 kernel ratios the kernel_throughput bench
            // measures (f32 0.1221 / f64 0.1865 ns/flop, quantized 0.1638 /
            // f64 0.1865 — see BENCH_BASELINE.json), so the planner's relative
            // costs track the measured kernel speedups.
            brute_f32_ns_per_flop: 0.272,
            brute_quantized_ns_per_flop: 0.364,
            alsh_ns_per_flop: 3.535,
            symmetric_ns_per_flop: 0.848,
            sketch_ns_per_flop: 0.290,
        }
    }
}

impl CostModel {
    /// The constant applied to a strategy's flop count.
    pub fn ns_per_flop(&self, strategy: Strategy) -> f64 {
        match strategy {
            Strategy::BruteForce => self.brute_ns_per_flop,
            Strategy::Alsh => self.alsh_ns_per_flop,
            Strategy::Symmetric => self.symmetric_ns_per_flop,
            Strategy::Sketch => self.sketch_ns_per_flop,
        }
    }

    /// The brute-force constant under a scoring-kernel selection: the
    /// quantized kernel when `quantized=true` (it takes precedence, matching
    /// [`crate::kernel`]'s dispatch), else the `f32` tile kernel for
    /// `dtype=f32`, else the default `f64` scan.
    pub fn brute_ns_per_flop_for(&self, scoring: crate::kernel::ScoringOptions) -> f64 {
        if scoring.quantized {
            self.brute_quantized_ns_per_flop
        } else if scoring.dtype == crate::kernel::Dtype::F32 {
            self.brute_f32_ns_per_flop
        } else {
            self.brute_ns_per_flop
        }
    }
}

/// What the planner predicted for one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyEstimate {
    /// The strategy this estimate describes.
    pub strategy: Strategy,
    /// Predicted total flops (build + all queries).
    pub flops: f64,
    /// Predicted wall-clock cost in nanoseconds (`flops × ns_per_flop`).
    pub cost_ns: f64,
    /// Whether the workload satisfies the strategy's domain preconditions.
    pub eligible: bool,
    /// Human-readable detail: the dominant cost term, or why ineligible.
    pub note: String,
}

/// Tuning knobs of the [`JoinPlanner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Data vectors sampled for the mini-join (the sample has at most
    /// `sample_data × sample_queries` pairs).
    pub sample_data: usize,
    /// Query vectors sampled for the mini-join.
    pub sample_queries: usize,
    /// ALSH parameters; `query_radius` is treated as a lower bound and raised
    /// to the measured maximum query norm at plan time.
    pub alsh: AlshParams,
    /// Sketch configuration used when the sketch strategy is chosen.
    pub sketch: MaxIpConfig,
    /// Leaf size of the sketch recovery tree.
    pub sketch_leaf_size: usize,
    /// Symmetric-LSH parameters.
    pub symmetric: SymmetricParams,
    /// Engine schedule every dispatched strategy runs under.
    pub engine: EngineConfig,
    /// Scoring-kernel selection (`dtype` / `quantized`) the dispatched
    /// strategy runs with; the brute estimate is costed with the matching
    /// per-dtype constant so `algo=auto` can pick the cheap path.
    pub scoring: crate::kernel::ScoringOptions,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            sample_data: 48,
            sample_queries: 24,
            alsh: AlshParams::default(),
            sketch: MaxIpConfig::default(),
            sketch_leaf_size: 16,
            symmetric: SymmetricParams::default(),
            engine: EngineConfig::default(),
            scoring: crate::kernel::ScoringOptions::default(),
        }
    }
}

impl PlannerConfig {
    /// Default sampling with explicit per-strategy parameters — the one
    /// assembly both fluent builders ([`crate::facade::JoinBuilder`] and
    /// `ips_store`'s `IndexBuilder`) use, so their planner configuration
    /// cannot drift.
    pub fn with_params(
        alsh: AlshParams,
        symmetric: SymmetricParams,
        sketch: MaxIpConfig,
        sketch_leaf_size: usize,
        engine: EngineConfig,
    ) -> Self {
        Self {
            alsh,
            symmetric,
            sketch,
            sketch_leaf_size,
            engine,
            ..Self::default()
        }
    }
}

/// The cost-based join planner: statistics in, [`JoinPlan`] out.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JoinPlanner {
    /// Sampling and per-strategy parameter configuration.
    pub config: PlannerConfig,
    /// The calibrated cost constants.
    pub model: CostModel,
}

/// A fully resolved plan: the chosen strategy, the parameters it will run
/// with, and the estimates that justified the choice.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// The `(cs, s)` spec the plan answers.
    pub spec: JoinSpec,
    /// The winning strategy.
    pub choice: Strategy,
    /// The statistics the decision was based on.
    pub stats: WorkloadStats,
    /// One estimate per strategy, in [`Strategy::ALL`] order.
    pub estimates: Vec<StrategyEstimate>,
    /// ALSH parameters (with the query radius resolved) used if ALSH runs.
    pub alsh_params: AlshParams,
    /// Sketch configuration used if the sketch strategy runs.
    pub sketch_config: MaxIpConfig,
    /// Sketch recovery-tree leaf size.
    pub sketch_leaf_size: usize,
    /// Symmetric-LSH parameters used if the symmetric strategy runs.
    pub symmetric_params: SymmetricParams,
    /// The engine schedule the join runs under.
    pub engine: EngineConfig,
    /// The scoring-kernel selection the dispatched strategy runs with.
    pub scoring: crate::kernel::ScoringOptions,
}

impl JoinPlanner {
    /// A planner with an explicit configuration and cost model.
    pub fn new(config: PlannerConfig, model: CostModel) -> Self {
        Self { config, model }
    }

    /// Plans a join: samples [`WorkloadStats`] from the workload, then decides
    /// via [`JoinPlanner::plan_from_stats`].
    pub fn plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &[DenseVector],
        queries: &[DenseVector],
        spec: JoinSpec,
    ) -> Result<JoinPlan> {
        let stats = WorkloadStats::sample(
            rng,
            data,
            queries,
            spec,
            self.config.sample_data,
            self.config.sample_queries,
        )?;
        Ok(self.plan_from_stats(stats, spec))
    }

    /// The pure decision step: estimates every strategy's cost on the given
    /// statistics and picks the cheapest eligible one (ties go to the earlier
    /// entry in [`Strategy::ALL`], i.e. toward the exact scan).
    pub fn plan_from_stats(&self, stats: WorkloadStats, spec: JoinSpec) -> JoinPlan {
        let (n, m, d) = (stats.data_count, stats.query_count, stats.dim);
        let nf = n as f64;
        let mf = m as f64;
        let df = d as f64;
        let alsh_params = self.resolved_alsh_params(&stats, spec);

        let mut estimates = Vec::with_capacity(Strategy::ALL.len());

        // Brute force: the n·m·d data-major scan, costed with the constant of
        // whichever kernel the scoring options select. Always eligible.
        let brute_flops = nf * mf * df;
        let brute_ns = self.model.brute_ns_per_flop_for(self.config.scoring);
        let kernel_tag = if self.config.scoring.quantized {
            " [quantized kernel]"
        } else if self.config.scoring.dtype == crate::kernel::Dtype::F32 {
            " [f32 kernel]"
        } else {
            ""
        };
        estimates.push(StrategyEstimate {
            strategy: Strategy::BruteForce,
            flops: brute_flops,
            cost_ns: brute_flops * brute_ns,
            eligible: true,
            note: format!("n·m·d scan ({n}×{m}×{d}){kernel_tag}"),
        });

        // ALSH: hash everything into L tables of k bits over the mapped
        // (d+2)-dimensional sphere, then re-score the predicted candidates.
        // The SIMPLE-ALSH map sends a pair's mapped cosine to exactly pᵀq/U.
        let u = alsh_params.query_radius;
        let mapped_cosines: Vec<f64> = stats
            .sampled_inner_products
            .iter()
            .map(|&ip| ip / u)
            .collect();
        // Probing widens the per-table hit probability (more candidates to
        // re-score) without touching the hashing term — which is exactly the
        // trade the planner can exploit: fewer tables, a few probes, and the
        // hashing term shrinks faster than the candidate term grows.
        let candidates_per_query = ips_lsh::cost::expected_candidates_probed(
            n,
            &mapped_cosines,
            alsh_params.bits_per_table,
            alsh_params.tables,
            alsh_params.probes,
        );
        let alsh_hash =
            ips_lsh::cost::hash_flops(d + 2, alsh_params.bits_per_table, alsh_params.tables);
        let alsh_flops = (nf + mf) * alsh_hash + mf * candidates_per_query * df;
        // The resolved query radius already covers the measured query norms
        // and the promise threshold, so the only precondition left to check
        // is the index constructor's unit-ball requirement on the data side.
        let alsh_eligible = stats.max_data_norm <= 1.0 + NORM_TOLERANCE;
        estimates.push(self.estimate(
            Strategy::Alsh,
            alsh_flops,
            alsh_eligible,
            if alsh_eligible {
                let probe_tag = if alsh_params.probes > 0 {
                    format!(", +{} probes/table", alsh_params.probes)
                } else {
                    String::new()
                };
                format!("≈{candidates_per_query:.1} candidates/query, U={u:.2}{probe_tag}")
            } else {
                format!(
                    "ineligible: data norm {:.3} outside the unit ball",
                    stats.max_data_norm
                )
            },
        ));

        // Symmetric LSH: the same hashing shape over the (d + tag)-dimensional
        // mapped sphere, with the mapped cosine ≈ pᵀq itself (within ε).
        let map_probe = SymmetricSphereMap::new(
            d.max(1),
            self.config.symmetric.epsilon,
            self.config.symmetric.precision_bits,
        );
        let sym_in_ball = stats.max_data_norm <= 1.0 + NORM_TOLERANCE
            && stats.max_query_norm <= 1.0 + NORM_TOLERANCE;
        match map_probe {
            Ok(map) => {
                let mapped_dim = map.output_dim();
                let sym_candidates = ips_lsh::cost::expected_candidates_probed(
                    n,
                    &stats.sampled_inner_products,
                    self.config.symmetric.bits_per_table,
                    self.config.symmetric.tables,
                    self.config.symmetric.probes,
                );
                let sym_hash = mapped_dim as f64
                    + ips_lsh::cost::hash_flops(
                        mapped_dim,
                        self.config.symmetric.bits_per_table,
                        self.config.symmetric.tables,
                    );
                let sym_flops = (nf + mf) * sym_hash + mf * sym_candidates * df;
                estimates.push(self.estimate(
                    Strategy::Symmetric,
                    sym_flops,
                    sym_in_ball,
                    if sym_in_ball {
                        format!("mapped dim {mapped_dim}, ≈{sym_candidates:.1} candidates/query")
                    } else {
                        "ineligible: data or queries outside the unit ball".to_string()
                    },
                ));
            }
            Err(e) => estimates.push(self.estimate(
                Strategy::Symmetric,
                f64::INFINITY,
                false,
                format!("ineligible: {e}"),
            )),
        }

        // Sketch: the recovery-tree build plus one walk per query. No domain
        // preconditions (the structure is natively unsigned; under a signed
        // spec the adapter keeps validity at the price of recall on
        // anti-correlated pairs).
        let sketch_flops = ips_sketch::cost::tree_build_flops(
            n,
            d,
            &self.config.sketch,
            self.config.sketch_leaf_size,
        ) + mf
            * ips_sketch::cost::tree_query_flops(
                n,
                d,
                &self.config.sketch,
                self.config.sketch_leaf_size,
            );
        estimates.push(self.estimate(
            Strategy::Sketch,
            sketch_flops,
            true,
            format!(
                "{} rows/copy × {} copies",
                ips_sketch::cost::resolved_rows(n, &self.config.sketch),
                self.config.sketch.copies
            ),
        ));

        let choice = estimates
            .iter()
            .filter(|e| e.eligible)
            .min_by(|a, b| a.cost_ns.total_cmp(&b.cost_ns))
            .map(|e| e.strategy)
            .unwrap_or(Strategy::BruteForce);

        JoinPlan {
            spec,
            choice,
            stats,
            estimates,
            alsh_params,
            sketch_config: self.config.sketch,
            sketch_leaf_size: self.config.sketch_leaf_size,
            symmetric_params: self.config.symmetric,
            engine: self.config.engine,
            scoring: self.config.scoring,
        }
    }

    /// The ALSH parameters a plan will run with: the configured parameters
    /// with the query radius raised to cover the measured query norms and the
    /// promise threshold (both hard requirements of the index constructor).
    fn resolved_alsh_params(&self, stats: &WorkloadStats, spec: JoinSpec) -> AlshParams {
        AlshParams {
            query_radius: self
                .config
                .alsh
                .query_radius
                .max(stats.max_query_norm)
                .max(spec.threshold),
            ..self.config.alsh
        }
    }

    fn estimate(
        &self,
        strategy: Strategy,
        flops: f64,
        eligible: bool,
        note: String,
    ) -> StrategyEstimate {
        StrategyEstimate {
            strategy,
            flops,
            cost_ns: flops * self.model.ns_per_flop(strategy),
            eligible,
            note,
        }
    }
}

impl JoinPlan {
    /// Runs the planned join: dispatches the chosen strategy through exactly
    /// the engine-backed entry point a caller would use manually, with the
    /// plan's resolved parameters. Given the same RNG state, the result is
    /// identical to that manual call.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        data: &[DenseVector],
        queries: &[DenseVector],
    ) -> Result<Vec<MatchPair>> {
        match self.choice {
            Strategy::BruteForce => JoinEngine::with_config(
                BorrowedBruteIndex::with_options(data, self.spec, self.scoring)?,
                self.engine,
            )
            .run(queries),
            Strategy::Alsh => alsh_engine_scored(
                rng,
                data,
                self.spec,
                self.alsh_params,
                self.engine,
                self.scoring,
            )?
            .run(queries),
            Strategy::Symmetric => symmetric_engine_scored(
                rng,
                data,
                self.spec,
                self.symmetric_params,
                self.engine,
                self.scoring,
            )?
            .run(queries),
            Strategy::Sketch => sketch_engine(
                rng,
                data,
                self.spec,
                self.sketch_config,
                self.sketch_leaf_size,
                self.engine,
            )?
            .run(queries),
        }
    }

    /// The estimate of the chosen strategy.
    pub fn chosen_estimate(&self) -> &StrategyEstimate {
        self.estimates
            .iter()
            .find(|e| e.strategy == self.choice)
            .expect("plan always carries an estimate for its choice")
    }

    /// A human-readable account of the decision: the workload statistics and
    /// one line per strategy with its predicted cost. This is what the CLI
    /// prints under `explain=true`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let s = &self.stats;
        out.push_str(&format!(
            "plan: {} (estimated {})\n",
            self.choice,
            format_ns(self.chosen_estimate().cost_ns)
        ));
        out.push_str(&format!(
            "workload: n={} m={} d={}; data norms mean {:.3} max {:.3}; query norms mean {:.3} max {:.3}\n",
            s.data_count,
            s.query_count,
            s.dim,
            s.mean_data_norm,
            s.max_data_norm,
            s.mean_query_norm,
            s.max_query_norm,
        ));
        out.push_str(&format!(
            "sampled {} pairs: promise density {:.4}, output density {:.4}\n",
            s.sampled_inner_products.len(),
            s.promise_density,
            s.output_density,
        ));
        for e in &self.estimates {
            let marker = if e.strategy == self.choice { "*" } else { " " };
            out.push_str(&format!(
                "{marker} {:<10} {:>12}  {}\n",
                e.strategy.name(),
                if e.eligible {
                    format_ns(e.cost_ns)
                } else {
                    "—".to_string()
                },
                e.note,
            ));
        }
        out
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "∞".to_string()
    } else if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Plans and runs a `(cs, s)` join in one call, letting the planner pick the
/// strategy. The adaptive sibling of the four manual entry points in
/// [`crate::join`].
///
/// ```
/// use ips_core::planner::auto_join;
/// use ips_core::problem::{evaluate_join, JoinSpec, JoinVariant};
/// use ips_datagen::planted::{PlantedConfig, PlantedInstance};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let inst = PlantedInstance::generate(&mut rng, PlantedConfig {
///     data: 120, queries: 10, dim: 16,
///     background_scale: 0.05, planted_ip: 0.85, planted: 4,
/// }).unwrap();
/// let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
/// let pairs = auto_join(&mut rng, inst.data(), inst.queries(), spec).unwrap();
/// // Whatever strategy was chosen, the output satisfies the validity half of
/// // Definition 1: every reported pair clears cs.
/// let (_, valid) = evaluate_join(inst.data(), inst.queries(), &spec, &pairs).unwrap();
/// assert!(valid);
/// ```
pub fn auto_join<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
) -> Result<Vec<MatchPair>> {
    Ok(auto_join_with_plan(rng, data, queries, spec)?.0)
}

/// Like [`auto_join`], but also returns the [`JoinPlan`] so the caller can
/// inspect (or [`JoinPlan::explain`]) the decision.
///
/// Legacy shim over [`crate::facade::JoinBuilder`] with
/// [`crate::facade::Strategy::Auto`] (bit-identical given the same RNG state;
/// proptested in `tests/tests/proptest_facade.rs`).
pub fn auto_join_with_plan<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[DenseVector],
    queries: &[DenseVector],
    spec: JoinSpec,
) -> Result<(Vec<MatchPair>, JoinPlan)> {
    let report = crate::facade::Join::data(data)
        .queries(queries)
        .spec(spec)
        .strategy(crate::facade::Strategy::Auto)
        .run_with_rng(rng)?;
    let plan = report.plan.expect("Strategy::Auto always attaches a plan");
    Ok((report.matches, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;
    use ips_linalg::random::random_unit_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(s: f64, c: f64) -> JoinSpec {
        JoinSpec::new(s, c, JoinVariant::Signed).unwrap()
    }

    /// Hand-built statistics: `sampled` inner products over an `n × m × d`
    /// workload whose vectors sit inside the unit ball.
    fn stats(n: usize, m: usize, d: usize, sampled: Vec<f64>) -> WorkloadStats {
        let sp = spec(0.8, 0.6);
        let total = sampled.len().max(1) as f64;
        WorkloadStats {
            data_count: n,
            query_count: m,
            dim: d,
            max_data_norm: 1.0,
            mean_data_norm: 0.5,
            max_query_norm: 1.0,
            mean_query_norm: 0.9,
            promise_density: sampled
                .iter()
                .filter(|&&ip| sp.satisfies_promise(ip))
                .count() as f64
                / total,
            output_density: sampled.iter().filter(|&&ip| sp.acceptable(ip)).count() as f64 / total,
            sampled_inner_products: sampled,
        }
    }

    #[test]
    fn drift_score_is_zero_on_identical_stats_and_tracks_the_worst_dimension() {
        let base = stats(1000, 100, 32, vec![0.1; 64]);
        assert_eq!(base.drift_from(&base), 0.0);

        // Doubling the data set is a relative change of 0.5 against the
        // larger magnitude; every other dimension is unchanged.
        let mut grown = base.clone();
        grown.data_count = 2000;
        assert!((grown.drift_from(&base) - 0.5).abs() < 1e-12);

        // A query-norm shift registers even when the data is untouched, and
        // the max of the per-dimension changes wins.
        let mut shifted = base.clone();
        shifted.mean_query_norm = base.mean_query_norm * 1.1;
        let small = shifted.drift_from(&base);
        assert!(
            small > 0.0 && small < 0.1,
            "10% shift scores < 0.1: {small}"
        );
        shifted.output_density = 0.3;
        assert_eq!(
            shifted.drift_from(&base),
            1.0,
            "a density appearing from zero saturates the score"
        );

        // Symmetric up to which side is the baseline (both normalize by the
        // larger magnitude).
        assert_eq!(grown.drift_from(&base), base.drift_from(&grown));
    }

    #[test]
    fn small_workloads_use_brute_force() {
        // 30×10×8: hashing alone would dwarf the 2400-flop scan.
        let plan =
            JoinPlanner::default().plan_from_stats(stats(30, 10, 8, vec![0.1; 64]), spec(0.8, 0.6));
        assert_eq!(plan.choice, Strategy::BruteForce);
    }

    #[test]
    fn large_sparse_workloads_leave_the_quadratic_scan() {
        // 100k × 10k × 32, near-orthogonal sample: candidate sets are tiny
        // and the query volume amortises any index build, so one of the
        // sub-quadratic structures (ALSH or the sketch tree — which of the
        // two depends on the fitted constants) must beat the 3.2e10-flop
        // scan.
        let sampled = vec![0.02; 256];
        let plan = JoinPlanner::default()
            .plan_from_stats(stats(100_000, 10_000, 32, sampled), spec(0.8, 0.6));
        assert!(
            matches!(plan.choice, Strategy::Alsh | Strategy::Sketch),
            "expected an index strategy, got {:?}",
            plan.choice
        );
        let cost = |s: Strategy| {
            plan.estimates
                .iter()
                .find(|e| e.strategy == s)
                .unwrap()
                .cost_ns
        };
        assert!(cost(plan.choice) < cost(Strategy::BruteForce));
    }

    #[test]
    fn dense_samples_defeat_the_lsh_strategies() {
        // Same shape but highly correlated: nearly every vector collides into
        // the candidate set, so LSH degenerates to the scan plus hashing
        // overhead and must never be chosen.
        let sampled = vec![0.95; 256];
        let plan = JoinPlanner::default()
            .plan_from_stats(stats(100_000, 10_000, 32, sampled), spec(0.8, 0.6));
        let cost = |s: Strategy| {
            plan.estimates
                .iter()
                .find(|e| e.strategy == s)
                .unwrap()
                .cost_ns
        };
        assert!(cost(Strategy::Alsh) > cost(Strategy::BruteForce));
        assert!(cost(Strategy::Symmetric) > cost(Strategy::BruteForce));
        assert!(!matches!(plan.choice, Strategy::Alsh | Strategy::Symmetric));
    }

    #[test]
    fn dense_workloads_with_few_queries_use_brute_force() {
        // With only 50 queries nothing can amortise an index build: the scan
        // is 50·n·d while every index pays Ω(n) hashing or sketching up front.
        let sampled = vec![0.95; 256];
        let plan =
            JoinPlanner::default().plan_from_stats(stats(50_000, 50, 32, sampled), spec(0.8, 0.6));
        assert_eq!(plan.choice, Strategy::BruteForce);
    }

    #[test]
    fn out_of_ball_data_disqualifies_the_lsh_strategies() {
        let mut st = stats(100_000, 10_000, 32, vec![0.02; 256]);
        st.max_data_norm = 3.0;
        let plan = JoinPlanner::default().plan_from_stats(st, spec(0.8, 0.6));
        for e in &plan.estimates {
            match e.strategy {
                Strategy::Alsh | Strategy::Symmetric => assert!(!e.eligible, "{e:?}"),
                _ => assert!(e.eligible),
            }
        }
        assert!(matches!(
            plan.choice,
            Strategy::BruteForce | Strategy::Sketch
        ));
    }

    #[test]
    fn probes_trade_against_tables_in_the_alsh_estimate() {
        // Sparse sample, big workload: ALSH's cost is hashing-dominated, so
        // halving the tables and adding probes must come out cheaper while
        // still predicting at least as many candidates per query.
        let st = stats(100_000, 10_000, 32, vec![0.02; 256]);
        let full = JoinPlanner::default().plan_from_stats(st.clone(), spec(0.8, 0.6));
        let mut config = PlannerConfig::default();
        config.alsh.tables /= 2;
        config.alsh.probes = 4;
        let probed =
            JoinPlanner::new(config, CostModel::default()).plan_from_stats(st, spec(0.8, 0.6));
        let alsh_cost = |p: &JoinPlan| {
            p.estimates
                .iter()
                .find(|e| e.strategy == Strategy::Alsh)
                .unwrap()
                .cost_ns
        };
        assert!(
            alsh_cost(&probed) < alsh_cost(&full),
            "half the tables with probes must be estimated cheaper: {} vs {}",
            alsh_cost(&probed),
            alsh_cost(&full)
        );
        assert_eq!(probed.alsh_params.probes, 4, "plan carries the probe count");
        assert!(probed
            .estimates
            .iter()
            .any(|e| e.note.contains("+4 probes/table")));
    }

    #[test]
    fn plan_resolves_query_radius_to_cover_queries_and_threshold() {
        let mut st = stats(1000, 100, 16, vec![0.1; 64]);
        st.max_query_norm = 2.5;
        let plan = JoinPlanner::default().plan_from_stats(st, spec(0.8, 0.6));
        assert!(plan.alsh_params.query_radius >= 2.5);
        let st2 = stats(1000, 100, 16, vec![0.1; 64]);
        let plan2 = JoinPlanner::default()
            .plan_from_stats(st2, JoinSpec::new(0.9, 0.6, JoinVariant::Signed).unwrap());
        assert!(plan2.alsh_params.query_radius >= 0.9);
    }

    #[test]
    fn estimates_cover_every_strategy_in_order() {
        let plan =
            JoinPlanner::default().plan_from_stats(stats(50, 5, 4, vec![0.0; 16]), spec(0.8, 0.6));
        let order: Vec<Strategy> = plan.estimates.iter().map(|e| e.strategy).collect();
        assert_eq!(order, Strategy::ALL.to_vec());
        assert_eq!(plan.chosen_estimate().strategy, plan.choice);
        // Explain renders every strategy plus the header lines.
        let text = plan.explain();
        for s in Strategy::ALL {
            assert!(text.contains(s.name()), "{text}");
        }
        assert!(text.contains("plan: brute"));
    }

    #[test]
    fn sampling_measures_norms_and_densities() {
        let mut rng = StdRng::seed_from_u64(0x9147);
        let data: Vec<DenseVector> = (0..40)
            .map(|_| random_unit_vector(&mut rng, 8).unwrap().scaled(0.5))
            .collect();
        let queries: Vec<DenseVector> = (0..10)
            .map(|_| random_unit_vector(&mut rng, 8).unwrap())
            .collect();
        let st = WorkloadStats::sample(&mut rng, &data, &queries, spec(0.8, 0.6), 16, 8).unwrap();
        assert_eq!(st.data_count, 40);
        assert_eq!(st.query_count, 10);
        assert_eq!(st.dim, 8);
        assert!((st.max_data_norm - 0.5).abs() < 1e-9);
        assert!((st.max_query_norm - 1.0).abs() < 1e-9);
        assert_eq!(st.sampled_inner_products.len(), 16 * 8);
        // All inner products are at most 0.5, so nothing clears s = 0.8.
        assert_eq!(st.promise_density, 0.0);
    }

    #[test]
    fn sampling_rejects_bad_workloads() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = vec![DenseVector::from(&[1.0, 0.0][..])];
        assert!(WorkloadStats::sample(&mut rng, &[], &q, spec(0.8, 0.6), 8, 8).is_err());
        let mixed = vec![
            DenseVector::from(&[1.0, 0.0][..]),
            DenseVector::from(&[1.0][..]),
        ];
        assert!(WorkloadStats::sample(&mut rng, &mixed, &q, spec(0.8, 0.6), 8, 8).is_err());
    }

    #[test]
    fn empty_query_set_plans_and_executes_to_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<DenseVector> = (0..20)
            .map(|_| random_unit_vector(&mut rng, 6).unwrap())
            .collect();
        let (pairs, plan) = auto_join_with_plan(&mut rng, &data, &[], spec(0.8, 0.6)).unwrap();
        assert!(pairs.is_empty());
        assert!(plan.stats.sampled_inner_products.is_empty());
    }

    #[test]
    fn auto_join_is_valid_on_a_planted_workload() {
        use ips_datagen::planted::{PlantedConfig, PlantedInstance};
        let mut rng = StdRng::seed_from_u64(0xAD07);
        let inst = PlantedInstance::generate(
            &mut rng,
            PlantedConfig {
                data: 200,
                queries: 20,
                dim: 16,
                background_scale: 0.05,
                planted_ip: 0.85,
                planted: 5,
            },
        )
        .unwrap();
        let sp = spec(0.8, 0.6);
        let (pairs, plan) = auto_join_with_plan(&mut rng, inst.data(), inst.queries(), sp).unwrap();
        let (_, valid) =
            crate::problem::evaluate_join(inst.data(), inst.queries(), &sp, &pairs).unwrap();
        assert!(valid);
        assert!(plan.estimates.iter().any(|e| e.eligible));
    }
}
