//! # ips-core
//!
//! Inner product similarity join and search — a faithful, runnable reproduction of
//! *"On the Complexity of Inner Product Similarity Join"* (Ahle, Pagh, Razenshteyn,
//! Silvestri; PODS 2016).
//!
//! The crate is organised around the paper's three parts:
//!
//! * **Problem definitions and baselines** — [`problem`] defines signed/unsigned exact
//!   and `(cs, s)`-approximate joins and search (Definition 1); [`brute`] provides the
//!   quadratic baselines every upper bound is measured against; [`algebraic`] wraps the
//!   matrix-multiplication joins of `ips-matmul` — the Valiant/Karppa-style baselines
//!   behind the *permissible* entries of Table 1.
//! * **Upper bounds (Section 4)** — [`asymmetric`] implements the Section 4.1 MIPS
//!   index (ball-to-sphere reduction + sphere LSH, with the ρ of equation 3);
//!   [`symmetric`] implements the Section 4.2 symmetric LSH for "almost all vectors"
//!   built on an explicit incoherent vector collection; [`join`] assembles joins out of
//!   these indexes and out of the Section 4.3 sketch structure (adapted from
//!   `ips-sketch`); [`mips`] gives a common trait over all MIPS indexes; [`engine`]
//!   provides the unified parallel, chunk-batched [`JoinEngine`] every join entry
//!   point runs through; [`shard`] is the exact merge layer the sharded serving
//!   index of `ips-store` reassembles per-shard answers with (per-shard bests and
//!   top-`k` heaps merged bit-identically to one unsharded search);
//!   [`planner`] adds the cost-based [`JoinPlanner`] that picks
//!   the strategy from workload statistics ([`auto_join`]), since no single strategy
//!   dominates — the paper's central message, operationalised; [`facade`] puts one
//!   fluent, typed [`JoinBuilder`] (`Join::data(d).queries(q)…run()`) in front of
//!   all of it — the entry point new code should use.
//! * **Lower bounds (Sections 2–3)** — [`lower_bounds`] contains the hard sequence
//!   constructions of Theorem 3, the grid partition and mass-accounting argument of
//!   Lemma 4 (Figure 1), and the closed-form gap bounds; [`theory`] classifies parameter
//!   regimes into the hard / permissible regions of Table 1 and re-exports the ρ curves
//!   of Figure 2.
//!
//! The OVP reductions behind the hardness results live in the companion crate
//! [`ips_ovp`]; workload generators live in `ips-datagen`; the benchmark harness that
//! regenerates every table and figure lives in `ips-bench`.
//!
//! # Quickstart
//!
//! The core workflow — generate a workload, describe the `(cs, s)` join with the
//! fluent builder, let the planner pick the strategy, and check the result against
//! the exact scan (this is the runnable version of the README quickstart):
//!
//! ```
//! use ips_core::brute::brute_force_join;
//! use ips_core::facade::{Join, Strategy};
//! use ips_core::problem::{evaluate_join, JoinSpec, JoinVariant};
//! use ips_datagen::planted::{PlantedConfig, PlantedInstance};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! // 1. a synthetic workload: near-orthogonal background, 4 planted pairs.
//! let instance = PlantedInstance::generate(&mut rng, PlantedConfig {
//!     data: 300, queries: 24, dim: 24,
//!     background_scale: 0.1, planted_ip: 0.85, planted: 4,
//! }).unwrap();
//! // 2–3. the (cs, s) contract of Definition 1 (report pairs above cs = 0.48,
//! //    promise answers above s = 0.8) and the adaptive dispatch, in one fluent
//! //    chain: Strategy::Auto samples the workload, costs every strategy, and
//! //    runs the winner through the JoinEngine.
//! let report = Join::data(instance.data())
//!     .queries(instance.queries())
//!     .threshold(0.8)
//!     .approximation(0.6)
//!     .strategy(Strategy::Auto)
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! println!("{}", report.plan.as_ref().unwrap().explain());
//! // 4. validity holds whatever was chosen; the exact join bounds the answer set.
//! let spec = JoinSpec::new(0.8, 0.6, JoinVariant::Signed).unwrap();
//! let (_, valid) =
//!     evaluate_join(instance.data(), instance.queries(), &spec, &report.matches).unwrap();
//! assert!(valid);
//! let exact = brute_force_join(instance.data(), instance.queries(), &spec).unwrap();
//! assert!(report.matches.len() <= exact.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebraic;
pub mod asymmetric;
pub mod brute;
pub mod engine;
pub mod error;
pub mod facade;
pub mod join;
pub mod kernel;
pub mod lower_bounds;
pub mod mips;
pub mod planner;
pub mod problem;
pub mod shard;
pub mod symmetric;
pub mod theory;
pub mod topk;

pub use asymmetric::AlshMipsIndex;
pub use engine::{EngineConfig, JoinEngine};
pub use error::{CoreError, Result};
pub use facade::{Join, JoinBuilder, JoinReport, Strategy};
pub use kernel::{Dtype, KernelActivity, KernelCounters, PreparedKernel, ScoringOptions};
pub use mips::{MipsIndex, SearchResult, SketchMipsAdapter};
pub use planner::{auto_join, auto_join_with_plan, CostModel, JoinPlan, JoinPlanner};
pub use problem::{JoinSpec, JoinVariant, MatchPair};
pub use symmetric::SymmetricLshMips;
pub use topk::{top_k_join, top_k_recall, TopKMipsIndex};
