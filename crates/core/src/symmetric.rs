//! The Section 4.2 *symmetric* LSH for "almost all vectors".
//!
//! Neyshabur and Srebro \[39\] proved that no symmetric LSH for signed IPS exists when the
//! data and query domains are the same ball — the culprit being the pair `q = p`, whose
//! collision probability is forced to 1. Section 4.2 of the paper circumvents the
//! impossibility by relaxing the LSH definition to ignore identical pairs: assuming all
//! coordinates are `k`-bit numbers, each vector `p` in the unit ball is mapped to the
//! unit sphere by
//!
//! ```text
//! f(p) = ( p , √(1 − ‖p‖²) · v_p )
//! ```
//!
//! where `{v_u}` is a *strongly explicit* collection of pairwise ε-incoherent unit
//! vectors indexed by the vector's bit pattern (Reed–Solomon codes, \[38\]). For `p ≠ q`
//! the cross terms contribute at most ε, so `|f(p)ᵀf(q) − pᵀq| ≤ ε`, the map is the same
//! on both sides (symmetric!), and any sphere LSH applies; only the diagonal `p = q`
//! loses its guarantee, which is handled by an explicit exact-match lookup before the
//! hash tables are consulted.

use crate::error::{CoreError, Result};
use crate::mips::{MipsIndex, SearchResult};
use crate::problem::JoinSpec;
use ips_linalg::incoherent::ReedSolomonCollection;
use ips_linalg::DenseVector;
use ips_lsh::hyperplane::HyperplaneFamily;
use ips_lsh::table::{IndexParams, LshIndex};
use ips_lsh::SymmetricAsAsymmetric;
use rand::Rng;
use std::collections::HashMap;

/// The symmetric ball-to-sphere map of Section 4.2.
#[derive(Debug, Clone)]
pub struct SymmetricSphereMap {
    dim: usize,
    precision_bits: u32,
    collection: ReedSolomonCollection,
}

impl SymmetricSphereMap {
    /// Creates the map for `dim`-dimensional vectors whose coordinates are treated as
    /// `precision_bits`-bit fixed-point numbers in `[−1, 1]`, with pairwise tag
    /// incoherence at most `epsilon`.
    ///
    /// The tag collection is indexed by a 64-bit fingerprint of the quantised
    /// coordinates, realising the paper's "almost all vectors" guarantee: two distinct
    /// vectors receive distinct tags unless their fingerprints collide (probability
    /// `≈ 2^{−64}` per pair).
    pub fn new(dim: usize, epsilon: f64, precision_bits: u32) -> Result<Self> {
        if dim == 0 {
            return Err(CoreError::InvalidParameter {
                name: "dim",
                reason: "dimension must be positive".into(),
            });
        }
        if precision_bits == 0 || precision_bits > 32 {
            return Err(CoreError::InvalidParameter {
                name: "precision_bits",
                reason: format!("precision must be in 1..=32 bits, got {precision_bits}"),
            });
        }
        let collection = ReedSolomonCollection::with_capacity(1u128 << 64, epsilon)?;
        Ok(Self {
            dim,
            precision_bits,
            collection,
        })
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Output dimension (`dim` + the tag dimension).
    pub fn output_dim(&self) -> usize {
        self.dim + self.collection.dim()
    }

    /// The incoherence bound ε of the tag collection: for distinct vectors,
    /// `|f(p)ᵀf(q) − pᵀq| ≤ ε`.
    pub fn epsilon(&self) -> f64 {
        self.collection.coherence()
    }

    /// The canonical byte encoding of a vector at the configured precision; two vectors
    /// are "identical" for the purposes of the construction iff their encodings agree.
    pub fn encode(&self, v: &DenseVector) -> Result<Vec<u8>> {
        if v.dim() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                actual: v.dim(),
            });
        }
        let scale = f64::from((1u32 << (self.precision_bits - 1)) - 1);
        let mut bytes = Vec::with_capacity(self.dim * 4);
        for &x in v.iter() {
            let q = (x.clamp(-1.0, 1.0) * scale).round() as i32;
            bytes.extend_from_slice(&q.to_le_bytes());
        }
        Ok(bytes)
    }

    /// Applies the symmetric map `f`.
    ///
    /// Returns an error when the vector is outside the unit ball.
    pub fn map(&self, v: &DenseVector) -> Result<DenseVector> {
        let norm_sq = v.norm_sq();
        if norm_sq > 1.0 + 1e-9 {
            return Err(CoreError::InvalidParameter {
                name: "v",
                reason: format!("vector norm {} exceeds 1", norm_sq.sqrt()),
            });
        }
        let bytes = self.encode(v)?;
        let tag = self.collection.vector_for_bytes(&bytes)?;
        let tail_mass = (1.0 - norm_sq).max(0.0).sqrt();
        Ok(v.concat(&tag.scaled(tail_mass)))
    }
}

/// Tuning parameters of the [`SymmetricLshMips`] index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricParams {
    /// Incoherence ε of the tag collection (the additive inner-product error).
    pub epsilon: f64,
    /// Coordinate precision in bits.
    pub precision_bits: u32,
    /// Number of hyperplane bits per table.
    pub bits_per_table: usize,
    /// Number of hash tables.
    pub tables: usize,
    /// Extra query-directed probe buckets visited per table (see `ips_lsh::probe`).
    /// `0` (the default) is the classical single-bucket lookup, bit-identical to the
    /// pre-probing behaviour; larger values trade lookups for fewer tables.
    pub probes: usize,
}

impl Default for SymmetricParams {
    fn default() -> Self {
        Self {
            epsilon: 0.25,
            precision_bits: 16,
            bits_per_table: 10,
            tables: 32,
            probes: 0,
        }
    }
}

/// The Section 4.2 symmetric-LSH MIPS index over a shared unit-ball domain.
///
/// Like [`crate::asymmetric::AlshMipsIndex`], the index is *dynamic*
/// ([`SymmetricLshMips::insert`] / [`SymmetricLshMips::delete`] maintain the hash
/// tables and the exact-match lookup incrementally, with tombstoned slots keeping
/// their vector so slot ids stay stable) and *persistable* (the sphere map is a
/// deterministic function of the parameters, so raw-parts round-trips only need the
/// data, the liveness mask and the sampled LSH state).
pub struct SymmetricLshMips {
    data: Vec<DenseVector>,
    live: Vec<bool>,
    live_count: usize,
    map: SymmetricSphereMap,
    index: LshIndex<SymmetricAsAsymmetric<HyperplaneFamily>>,
    /// Encoding → live slot ids in insertion order; the *last* entry answers the
    /// diagonal lookup, matching what a fresh build (which overwrites earlier ids)
    /// would store.
    exact_lookup: HashMap<Vec<u8>, Vec<usize>>,
    spec: JoinSpec,
    params: SymmetricParams,
    /// Quantized mirror of `data` for the cheap candidate-scoring kernel
    /// ([`SymmetricLshMips::set_scoring`]); cleared by insert/delete, which
    /// fall back to exact scoring (correctness never depends on this tile).
    quant: Option<ips_linalg::QuantTile>,
    /// Lifetime tallies of the quantized candidate kernel's activity
    /// (scored/pruned/rescored) — the serving telemetry reads deltas of this.
    kernel_counters: crate::kernel::KernelCounters,
}

impl SymmetricLshMips {
    /// Builds the index over `data` (all inside the unit ball) for the given spec.
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        data: Vec<DenseVector>,
        spec: JoinSpec,
        params: SymmetricParams,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataSet);
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        let map = SymmetricSphereMap::new(dim, params.epsilon, params.precision_bits)?;
        let mut mapped = Vec::with_capacity(data.len());
        let mut exact_lookup: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(data.len());
        for (i, v) in data.iter().enumerate() {
            mapped.push(map.map(v)?);
            exact_lookup.entry(map.encode(v)?).or_default().push(i);
        }
        let family = SymmetricAsAsymmetric(HyperplaneFamily::single_bit(map.output_dim())?);
        let index = LshIndex::build(
            &family,
            IndexParams {
                k: params.bits_per_table,
                l: params.tables,
            },
            &mapped,
            rng,
        )?;
        let live_count = data.len();
        Ok(Self {
            live: vec![true; live_count],
            live_count,
            data,
            map,
            index,
            exact_lookup,
            spec,
            params,
            quant: None,
            kernel_counters: crate::kernel::KernelCounters::new(),
        })
    }

    /// Applies a scoring-kernel selection: `quantized=true` packs the data
    /// into an `i8` tile so [`SymmetricLshMips::candidate_best`] runs through
    /// the cheap prune-and-exact-rescore kernel (identical results — see
    /// [`crate::kernel`]). The diagonal probe stays exact either way.
    ///
    /// A subsequent [`SymmetricLshMips::insert`] or
    /// [`SymmetricLshMips::delete`] clears the tile and falls back to exact
    /// scoring; call this again after a batch of mutations.
    pub fn set_scoring(&mut self, options: crate::kernel::ScoringOptions) -> Result<()> {
        self.quant = if options.quantized {
            Some(ips_linalg::QuantTile::from_vectors(&self.data)?)
        } else {
            None
        };
        Ok(())
    }

    /// Inserts a new data vector (unit ball), hashing its sphere image into every
    /// table and registering its encoding in the exact-match lookup. Returns the new
    /// slot id; slot ids are stable and never reused.
    pub fn insert(&mut self, v: DenseVector) -> Result<usize> {
        let dim = self.data[0].dim();
        if v.dim() != dim {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                actual: v.dim(),
            });
        }
        let mapped = self.map.map(&v)?; // also rejects vectors outside the unit ball
        let id = self.data.len();
        self.index.insert(id as u32, &mapped)?;
        self.exact_lookup
            .entry(self.map.encode(&v)?)
            .or_default()
            .push(id);
        self.data.push(v);
        self.live.push(true);
        self.live_count += 1;
        // The quantized tile no longer mirrors the data; drop it so scoring
        // falls back to the exact path (see `set_scoring`).
        self.quant = None;
        Ok(id)
    }

    /// Deletes the vector in slot `id`: removes it from every hash table and from the
    /// exact-match lookup, tombstoning the slot.
    pub fn delete(&mut self, id: usize) -> Result<()> {
        if id >= self.data.len() || !self.live[id] {
            return Err(CoreError::InvalidParameter {
                name: "id",
                reason: format!("slot {id} is out of range or already deleted"),
            });
        }
        let mapped = self.map.map(&self.data[id])?;
        self.index.remove(id as u32, &mapped)?;
        let encoding = self.map.encode(&self.data[id])?;
        if let Some(ids) = self.exact_lookup.get_mut(&encoding) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.exact_lookup.remove(&encoding);
            }
        }
        self.live[id] = false;
        self.live_count -= 1;
        self.quant = None;
        Ok(())
    }

    /// Whether slot `id` currently holds a live (non-deleted) vector.
    pub fn is_live(&self, id: usize) -> bool {
        self.live.get(id).copied().unwrap_or(false)
    }

    /// Total number of slots ever allocated, live or tombstoned.
    pub fn slots(&self) -> usize {
        self.data.len()
    }

    /// The quantized tile when the cheap candidate kernel is enabled
    /// ([`SymmetricLshMips::set_scoring`]) and no mutation has invalidated it.
    pub(crate) fn quant_tile(&self) -> Option<&ips_linalg::QuantTile> {
        self.quant.as_ref()
    }

    /// The quantized kernel's activity tallies (zero while exact scoring runs).
    pub fn kernel_activity(&self) -> crate::kernel::KernelActivity {
        self.kernel_counters.activity()
    }

    /// The counters the quantized candidate kernel ticks into.
    pub(crate) fn kernel_counters(&self) -> &crate::kernel::KernelCounters {
        &self.kernel_counters
    }

    /// The tuning parameters the index was built with.
    pub fn params(&self) -> SymmetricParams {
        self.params
    }

    /// Overrides the number of extra probe buckets visited per table at query time
    /// (see [`SymmetricParams::probes`]). Probing is a pure query-time policy — the
    /// tables are untouched, so the override applies to the next search immediately
    /// and `set_probes(0)` restores the classical bit-identical lookup.
    pub fn set_probes(&mut self, probes: usize) {
        self.params.probes = probes;
    }

    /// The underlying multi-table LSH index (persistence accessor). Its points are the
    /// *sphere images* of the data vectors, which the sphere map recomputes
    /// deterministically on load.
    pub fn lsh_index(&self) -> &LshIndex<SymmetricAsAsymmetric<HyperplaneFamily>> {
        &self.index
    }

    /// Reassembles an index from previously extracted state. The sphere map and the
    /// exact-match lookup are deterministic functions of `data`, `live` and `params`,
    /// so only the sampled LSH state needs to have been persisted.
    pub fn from_raw_parts(
        data: Vec<DenseVector>,
        live: Vec<bool>,
        index: LshIndex<SymmetricAsAsymmetric<HyperplaneFamily>>,
        spec: JoinSpec,
        params: SymmetricParams,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataSet);
        }
        if live.len() != data.len() {
            return Err(CoreError::InvalidParameter {
                name: "live",
                reason: format!(
                    "liveness mask has {} entries for {} slots",
                    live.len(),
                    data.len()
                ),
            });
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        let live_count = live.iter().filter(|&&l| l).count();
        if index.len() != live_count {
            return Err(CoreError::InvalidParameter {
                name: "index",
                reason: format!(
                    "LSH index stores {} points but the mask marks {live_count} live",
                    index.len()
                ),
            });
        }
        let map = SymmetricSphereMap::new(dim, params.epsilon, params.precision_bits)?;
        let mut exact_lookup: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(live_count);
        for (i, v) in data.iter().enumerate() {
            if live[i] {
                exact_lookup.entry(map.encode(v)?).or_default().push(i);
            }
        }
        Ok(Self {
            data,
            live,
            live_count,
            map,
            index,
            exact_lookup,
            spec,
            params,
            quant: None,
            kernel_counters: crate::kernel::KernelCounters::new(),
        })
    }

    /// The symmetric sphere map in use (exposed so the additive-error guarantee can be
    /// verified externally).
    pub fn sphere_map(&self) -> &SymmetricSphereMap {
        &self.map
    }

    /// Number of LSH candidates produced for a query (before exact re-scoring).
    pub fn candidate_count(&self, query: &DenseVector) -> Result<usize> {
        Ok(self
            .index
            .probe_lookup(&self.map.map(query)?, self.params.probes)?
            .len())
    }

    /// The candidate data indices produced for a query (deduplicated, ascending),
    /// including the exact-lookup hit for an identical query when present — what the
    /// top-`k` search re-scores.
    pub fn candidate_indices(&self, query: &DenseVector) -> Result<Vec<usize>> {
        let mut out = self
            .index
            .probe_lookup(&self.map.map(query)?, self.params.probes)?;
        if let Some(&i) = self
            .exact_lookup
            .get(&self.map.encode(query)?)
            .and_then(|ids| ids.last())
        {
            if !out.contains(&i) {
                out.push(i);
                out.sort_unstable();
            }
        }
        Ok(out)
    }

    /// The vectors held by the index, one per slot — tombstoned slots keep their
    /// vector (so slot ids stay stable) but never appear as candidates.
    pub fn data(&self) -> &[DenseVector] {
        &self.data
    }

    /// Step 1 of the two-step search, exposed on its own: the diagonal probe.
    ///
    /// Looks the query's encoding up in the exact-match table and returns the *last*
    /// live slot sharing it (the one a fresh build would answer with), scored exactly
    /// — **unfiltered**, so a sharded merge layer can apply the promise check across
    /// the union of shards exactly as [`MipsIndex::search`] applies it to one index.
    pub fn exact_probe(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        match self
            .exact_lookup
            .get(&self.map.encode(query)?)
            .and_then(|ids| ids.last())
        {
            Some(&i) => Ok(Some(SearchResult {
                data_index: i,
                inner_product: self.data[i].dot(query)?,
            })),
            None => Ok(None),
        }
    }

    /// Step 2 of the two-step search, exposed on its own: the best LSH candidate by
    /// exact re-scoring (strict `>`, so ties keep the lowest slot) — **unfiltered**
    /// by the relaxed threshold, for the same sharded-merge reason as
    /// [`SymmetricLshMips::exact_probe`].
    pub fn candidate_best(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        let mapped = self.map.map(query)?;
        let candidates = self.index.probe_lookup(&mapped, self.params.probes)?;
        if let Some(quant) = &self.quant {
            // Cheap integer scoring + conservative pruning + exact rescoring:
            // identical result to the exact loop below (see `crate::kernel`).
            return crate::kernel::best_among_candidates_quantized(
                &self.data,
                quant,
                &candidates,
                query,
                &self.spec,
                &self.kernel_counters,
            );
        }
        let mut best: Option<SearchResult> = None;
        for i in candidates {
            let ip = self.data[i].dot(query)?;
            let value = self.spec.variant.value(ip);
            let better = best
                .as_ref()
                .map(|b| value > self.spec.variant.value(b.inner_product))
                .unwrap_or(true);
            if better {
                best = Some(SearchResult {
                    data_index: i,
                    inner_product: ip,
                });
            }
        }
        Ok(best)
    }
}

impl MipsIndex for SymmetricLshMips {
    fn len(&self) -> usize {
        self.live_count
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        // Step 1 (paper): check whether the query itself is an input vector; the hash
        // guarantees do not cover the diagonal, so it is handled exactly.
        if let Some(hit) = self.exact_probe(query)? {
            if self.spec.satisfies_promise(hit.inner_product) {
                return Ok(Some(hit));
            }
        }
        // Step 2: symmetric LSH lookup plus exact re-scoring.
        Ok(self
            .candidate_best(query)?
            .filter(|b| self.spec.acceptable(b.inner_product)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;
    use ips_linalg::random::{random_ball_vector, random_unit_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5CA1E)
    }

    fn spec(s: f64, c: f64) -> JoinSpec {
        JoinSpec::new(s, c, JoinVariant::Signed).unwrap()
    }

    #[test]
    fn map_validation_and_shape() {
        assert!(SymmetricSphereMap::new(0, 0.2, 16).is_err());
        assert!(SymmetricSphereMap::new(4, 0.2, 0).is_err());
        assert!(SymmetricSphereMap::new(4, 0.2, 64).is_err());
        assert!(SymmetricSphereMap::new(4, 1.5, 16).is_err());
        let map = SymmetricSphereMap::new(4, 0.25, 16).unwrap();
        assert_eq!(map.dim(), 4);
        assert!(map.output_dim() > 4);
        assert!(map.epsilon() <= 0.25 + 1e-12);
        let too_long = DenseVector::from(&[2.0, 0.0, 0.0, 0.0][..]);
        assert!(map.map(&too_long).is_err());
        assert!(map.encode(&DenseVector::zeros(3)).is_err());
    }

    #[test]
    fn mapped_vectors_are_unit_and_symmetric() {
        let mut r = rng();
        let map = SymmetricSphereMap::new(8, 0.25, 16).unwrap();
        for _ in 0..10 {
            let v = random_ball_vector(&mut r, 8, 1.0).unwrap();
            let mapped = map.map(&v).unwrap();
            assert!((mapped.norm() - 1.0).abs() < 1e-6);
            // The map is deterministic and identical for "data" and "query" roles.
            assert_eq!(map.map(&v).unwrap(), mapped);
        }
    }

    #[test]
    fn inner_products_preserved_up_to_epsilon_for_distinct_vectors() {
        let mut r = rng();
        let map = SymmetricSphereMap::new(12, 0.2, 16).unwrap();
        for _ in 0..20 {
            let a = random_ball_vector(&mut r, 12, 1.0).unwrap();
            let b = random_ball_vector(&mut r, 12, 1.0).unwrap();
            let original = a.dot(&b).unwrap();
            let mapped = map.map(&a).unwrap().dot(&map.map(&b).unwrap()).unwrap();
            assert!(
                (mapped - original).abs() <= map.epsilon() + 1e-6,
                "additive error too large: {} vs {}",
                mapped,
                original
            );
        }
    }

    #[test]
    fn identical_vectors_map_to_identical_points() {
        // For p = q the map gives f(p)ᵀf(p) = 1 regardless of pᵀp — exactly the pair the
        // relaxed definition excludes.
        let mut r = rng();
        let map = SymmetricSphereMap::new(6, 0.25, 16).unwrap();
        let v = random_ball_vector(&mut r, 6, 0.5).unwrap();
        let mapped = map.map(&v).unwrap();
        assert!((mapped.dot(&mapped).unwrap() - 1.0).abs() < 1e-9);
        assert!(v.dot(&v).unwrap() < 0.5);
    }

    #[test]
    fn index_finds_planted_partner() {
        let mut r = rng();
        let dim = 16;
        let n = 200;
        let query = random_unit_vector(&mut r, dim).unwrap().scaled(0.95);
        let mut data: Vec<DenseVector> = (0..n)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.2))
            .collect();
        // Plant a distinct vector with a high inner product with the query.
        data[77] = query.scaled(0.9);
        let spec = spec(0.6, 0.5);
        let index =
            SymmetricLshMips::build(&mut r, data, spec, SymmetricParams::default()).unwrap();
        assert_eq!(index.len(), n);
        assert!(!index.is_empty());
        assert_eq!(index.spec(), spec);
        let hit = index
            .search(&query)
            .unwrap()
            .expect("planted partner not found");
        assert_eq!(hit.data_index, 77);
        assert!(hit.inner_product >= 0.3);
        assert!(index.candidate_count(&query).unwrap() < n);
        assert!(index.sphere_map().epsilon() <= 0.25 + 1e-12);
    }

    #[test]
    fn identical_query_is_answered_by_the_exact_lookup() {
        let mut r = rng();
        let dim = 10;
        let data: Vec<DenseVector> = (0..50)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let target = data[13].clone();
        let self_ip = target.dot(&target).unwrap();
        let spec = JoinSpec::new(self_ip * 0.9, 0.9, JoinVariant::Signed).unwrap();
        let index =
            SymmetricLshMips::build(&mut r, data, spec, SymmetricParams::default()).unwrap();
        let hit = index
            .search(&target)
            .unwrap()
            .expect("self-match must be found");
        assert_eq!(hit.data_index, 13);
        assert!((hit.inner_product - self_ip).abs() < 1e-9);
    }

    #[test]
    fn insert_and_delete_maintain_search_and_exact_lookup() {
        let mut r = rng();
        let dim = 12;
        let data: Vec<DenseVector> = (0..60)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.1))
            .collect();
        let spec = spec(0.6, 0.5);
        let mut index =
            SymmetricLshMips::build(&mut r, data, spec, SymmetricParams::default()).unwrap();
        let query = random_unit_vector(&mut r, dim).unwrap().scaled(0.95);
        assert!(index.search(&query).unwrap().is_none());
        // A dynamically inserted strong partner is found...
        let id = index.insert(query.scaled(0.9)).unwrap();
        assert_eq!(id, 60);
        assert_eq!(index.len(), 61);
        let hit = index.search(&query).unwrap().expect("inserted point found");
        assert_eq!(hit.data_index, id);
        // ...including through the diagonal exact-match path.
        let self_hit = index.search(&index.data()[id].clone()).unwrap().unwrap();
        assert_eq!(self_hit.data_index, id);
        // Delete restores the original behaviour, for both paths.
        index.delete(id).unwrap();
        assert_eq!(index.len(), 60);
        assert!(!index.is_live(id));
        assert_eq!(index.slots(), 61);
        assert!(index.search(&query).unwrap().is_none());
        assert!(index.delete(id).is_err());
        // Raw-parts round-trip preserves results (the sphere map and lookup are
        // rebuilt deterministically).
        let rebuilt = SymmetricLshMips::from_raw_parts(
            index.data().to_vec(),
            (0..index.slots()).map(|i| index.is_live(i)).collect(),
            LshIndex::from_raw_parts(
                index.lsh_index().functions().to_vec(),
                index.lsh_index().tables().to_vec(),
                index.lsh_index().params(),
                index.lsh_index().len(),
            )
            .unwrap(),
            index.spec(),
            index.params(),
        )
        .unwrap();
        for q in index.data().iter().take(8) {
            assert_eq!(index.search(q).unwrap(), rebuilt.search(q).unwrap());
        }
    }

    #[test]
    fn duplicate_vectors_keep_an_exact_lookup_entry_after_delete() {
        let mut r = rng();
        let dim = 8;
        let v = random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.7);
        let mut data: Vec<DenseVector> = (0..20)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.1))
            .collect();
        data.push(v.clone()); // slot 20
        let self_ip = v.dot(&v).unwrap();
        let spec = JoinSpec::new(self_ip * 0.9, 0.9, JoinVariant::Signed).unwrap();
        let mut index =
            SymmetricLshMips::build(&mut r, data, spec, SymmetricParams::default()).unwrap();
        // Insert a duplicate of v: the diagonal lookup now answers with the later slot
        // (matching what a fresh build over the same sequence stores).
        let dup = index.insert(v.clone()).unwrap();
        assert_eq!(index.search(&v).unwrap().unwrap().data_index, dup);
        // Deleting the duplicate falls back to the original copy, not to a miss.
        index.delete(dup).unwrap();
        assert_eq!(index.search(&v).unwrap().unwrap().data_index, 20);
    }

    #[test]
    fn probes_enlarge_candidates_and_zero_restores_baseline() {
        let mut r = rng();
        let dim = 14;
        let data: Vec<DenseVector> = (0..150)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let mut index =
            SymmetricLshMips::build(&mut r, data, spec(0.5, 0.5), SymmetricParams::default())
                .unwrap();
        let queries: Vec<DenseVector> = (0..10)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let baseline: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| index.candidate_indices(q).unwrap())
            .collect();
        index.set_probes(4);
        assert_eq!(index.params().probes, 4);
        let mut grew = false;
        for (q, base) in queries.iter().zip(&baseline) {
            let probed = index.candidate_indices(q).unwrap();
            assert!(base.iter().all(|i| probed.contains(i)));
            grew |= probed.len() > base.len();
        }
        assert!(grew, "probing never enlarged a candidate set");
        index.set_probes(0);
        for (q, base) in queries.iter().zip(&baseline) {
            assert_eq!(&index.candidate_indices(q).unwrap(), base);
        }
    }

    #[test]
    fn build_rejects_bad_input() {
        let mut r = rng();
        assert!(SymmetricLshMips::build(
            &mut r,
            vec![],
            spec(0.5, 0.5),
            SymmetricParams::default()
        )
        .is_err());
        let mixed = vec![DenseVector::zeros(3), DenseVector::zeros(4)];
        assert!(
            SymmetricLshMips::build(&mut r, mixed, spec(0.5, 0.5), SymmetricParams::default())
                .is_err()
        );
    }
}
