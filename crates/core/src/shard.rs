//! The exact merge layer behind sharded serving: combining per-shard search
//! results into the answer one unsharded index would give.
//!
//! A sharded serving index (see `ips-store`) partitions its data across shards
//! by a deterministic hash of the external id and queries every shard through
//! the same per-family search the unsharded index runs. This module is the
//! other half of that design: the *merge* that reassembles per-shard answers
//! — per-shard bests for the single-partner `(cs, s)` search, per-shard heaps
//! for top-`k` — into one result, **exactly**.
//!
//! The merge can be exact (no re-approximation, no re-ordering noise) because
//! every comparison mirrors the one the per-family searches already make: the
//! spec's similarity value, descending, with ties broken toward the lowest
//! data index — the order a strict-`>` scan over ascending candidate slots
//! produces. When the shards were built with the *same* structure seed (so the
//! sampled hash functions agree across shards and the candidate sets decompose
//! over the partition), merging per-shard results through these functions is
//! bit-identical to searching one index over the union:
//!
//! * **brute force** — the exact maximum trivially decomposes;
//! * **ALSH (Section 4.1)** — a data point collides with the query in a
//!   shard's table iff it collides in the unsharded table (same functions,
//!   bucket membership is per-point), so the candidate union is preserved and
//!   [`merge_best`] over per-shard filtered bests is the unsharded answer;
//! * **symmetric LSH (Section 4.2)** — the two-step search (diagonal probe,
//!   then candidate re-scoring) needs the two steps merged *separately*, which
//!   is what [`merge_two_step`] does over per-shard [`ShardParts`];
//! * **sketch (Section 4.3)** — the recovery tree is a global structure (its
//!   descent compares subtree estimates across the whole data set), so
//!   per-shard trees answer a *different* — typically better-recall — walk;
//!   the merge is still exact and deterministic, but only a single-shard
//!   sketch index reproduces the unsharded walk bit for bit.
//!
//! The functions here are deliberately small and allocation-light; the
//! concurrency (read locks, scoped threads, chunking through
//! [`crate::engine::JoinEngine`]) lives with the shards in `ips-store`.

use crate::mips::SearchResult;
use crate::problem::JoinSpec;

/// One shard's contribution to a two-step (symmetric-LSH) sharded search:
/// both halves of [`crate::symmetric::SymmetricLshMips`]'s search, unfiltered,
/// with indices already translated to the global (external) id space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardParts {
    /// The shard's diagonal probe ([`crate::symmetric::SymmetricLshMips::exact_probe`]):
    /// its last slot sharing the query's encoding, scored exactly.
    pub exact: Option<SearchResult>,
    /// The shard's best LSH candidate
    /// ([`crate::symmetric::SymmetricLshMips::candidate_best`]), unfiltered.
    pub best: Option<SearchResult>,
}

/// Whether `a` beats `b` under the spec's ordering: higher similarity value
/// first, ties toward the lower data index — exactly the order a strict-`>`
/// scan over ascending candidate indices settles on.
pub fn beats(spec: &JoinSpec, a: &SearchResult, b: &SearchResult) -> bool {
    let (va, vb) = (
        spec.variant.value(a.inner_product),
        spec.variant.value(b.inner_product),
    );
    va > vb || (va == vb && a.data_index < b.data_index)
}

/// Merges per-shard single-partner answers into the global best.
///
/// Per-shard answers must already carry global data indices. Because each
/// family's per-shard filter (promise for brute, relaxed threshold for the
/// LSH and sketch families) is monotone in the spec's similarity value, a
/// global maximum that clears it is reported by its shard and survives this
/// merge, and a global maximum that does not leaves every shard silent — so
/// no re-filtering is needed here.
pub fn merge_best(
    spec: &JoinSpec,
    hits: impl IntoIterator<Item = SearchResult>,
) -> Option<SearchResult> {
    let mut best: Option<SearchResult> = None;
    for hit in hits {
        let better = best.as_ref().map(|b| beats(spec, &hit, b)).unwrap_or(true);
        if better {
            best = Some(hit);
        }
    }
    best
}

/// Merges per-shard two-step (symmetric-LSH) parts into the answer the
/// unsharded two-step search would give:
///
/// 1. the global diagonal probe is the probe with the **highest** data index
///    across shards (the unsharded exact-lookup answers with the last slot
///    sharing the encoding, and external ids ascend in insertion order); if it
///    satisfies the promise threshold, it is the answer — even when a better
///    candidate exists, exactly like the unsharded early exit;
/// 2. otherwise the per-shard candidate bests are merged with [`merge_best`]
///    and the relaxed threshold is applied to the winner.
pub fn merge_two_step(spec: &JoinSpec, parts: &[ShardParts]) -> Option<SearchResult> {
    let probe = parts
        .iter()
        .filter_map(|p| p.exact)
        .max_by_key(|h| h.data_index);
    if let Some(hit) = probe {
        if spec.satisfies_promise(hit.inner_product) {
            return Some(hit);
        }
    }
    merge_best(spec, parts.iter().filter_map(|p| p.best))
        .filter(|b| spec.acceptable(b.inner_product))
}

/// Merges per-shard top-`k` lists into the global top-`k`.
///
/// Every global top-`k` entry is necessarily inside its own shard's top-`k`
/// (a shard holds a subset of the data, so an entry outranked by fewer than
/// `k` results globally is outranked by at most that many within its shard),
/// so merging the per-shard lists and keeping the best `k` under the same
/// comparator is exact. Input lists are expected best-first (the
/// [`crate::topk::TopKMipsIndex`] contract); the output is best-first with
/// ties toward the lower data index.
pub fn merge_top_k(
    spec: &JoinSpec,
    lists: impl IntoIterator<Item = Vec<SearchResult>>,
    k: usize,
) -> Vec<SearchResult> {
    let mut all: Vec<SearchResult> = lists.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        spec.variant
            .value(b.inner_product)
            .partial_cmp(&spec.variant.value(a.inner_product))
            .expect("inner products are finite")
            .then(a.data_index.cmp(&b.data_index))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;

    fn hit(data_index: usize, inner_product: f64) -> SearchResult {
        SearchResult {
            data_index,
            inner_product,
        }
    }

    fn spec() -> JoinSpec {
        JoinSpec::new(0.5, 0.8, JoinVariant::Signed).unwrap()
    }

    #[test]
    fn merge_best_takes_the_maximum_with_low_index_ties() {
        let s = spec();
        assert_eq!(merge_best(&s, []), None);
        assert_eq!(
            merge_best(&s, [hit(3, 0.6), hit(1, 0.9), hit(7, 0.7)]),
            Some(hit(1, 0.9))
        );
        // Bit-equal values tie toward the lower index, whatever the input order.
        assert_eq!(
            merge_best(&s, [hit(9, 0.8), hit(2, 0.8), hit(5, 0.8)]),
            Some(hit(2, 0.8))
        );
        assert!(beats(&s, &hit(2, 0.8), &hit(9, 0.8)));
        assert!(!beats(&s, &hit(9, 0.8), &hit(2, 0.8)));
    }

    #[test]
    fn unsigned_merge_ranks_by_absolute_value() {
        let s = JoinSpec::new(0.5, 0.8, JoinVariant::Unsigned).unwrap();
        assert_eq!(
            merge_best(&s, [hit(0, 0.7), hit(1, -0.9)]),
            Some(hit(1, -0.9))
        );
    }

    #[test]
    fn two_step_merge_mirrors_the_unsharded_early_exit() {
        let s = spec(); // promise 0.5, relaxed 0.4
                        // A promise-clearing diagonal probe wins even over a better candidate,
                        // and among probes the highest data index answers (the "last slot"
                        // a fresh unsharded build would store).
        let parts = [
            ShardParts {
                exact: Some(hit(4, 0.55)),
                best: Some(hit(9, 0.95)),
            },
            ShardParts {
                exact: Some(hit(6, 0.52)),
                best: None,
            },
        ];
        assert_eq!(merge_two_step(&s, &parts), Some(hit(6, 0.52)));
        // A probe below the promise falls through to the candidate merge...
        let parts = [ShardParts {
            exact: Some(hit(4, 0.45)),
            best: Some(hit(9, 0.95)),
        }];
        assert_eq!(merge_two_step(&s, &parts), Some(hit(9, 0.95)));
        // ...and the merged candidate best is filtered by the relaxed threshold.
        let parts = [ShardParts {
            exact: None,
            best: Some(hit(9, 0.3)),
        }];
        assert_eq!(merge_two_step(&s, &parts), None);
        assert_eq!(merge_two_step(&s, &[]), None);
    }

    #[test]
    fn top_k_merge_is_the_global_ranking() {
        let s = spec();
        let merged = merge_top_k(
            &s,
            [
                vec![hit(0, 0.9), hit(2, 0.7)],
                vec![hit(1, 0.8), hit(3, 0.7)],
            ],
            3,
        );
        assert_eq!(merged, vec![hit(0, 0.9), hit(1, 0.8), hit(2, 0.7)]);
        assert!(merge_top_k(&s, Vec::<Vec<SearchResult>>::new(), 5).is_empty());
    }
}
