//! The Section 4.1 asymmetric LSH index for signed IPS.
//!
//! Construction (paper, Section 4.1): data vectors (unit ball) and query vectors (ball
//! of radius `U`) are mapped to the `(d+2)`-dimensional unit sphere with the asymmetric
//! map of \[39\] — `p ↦ (p, √(1−‖p‖²), 0)`, `q ↦ (q/U, 0, √(1−‖q‖²/U²))` — after which
//! signed inner product search *is* approximate near-neighbour search on the sphere
//! with distance threshold `r = √(2(1 − s/U))` and approximation
//! `c' = √((1 − cs/U)/(1 − s/U))`. Plugging in the optimal data-dependent sphere LSH \[9\]
//! gives the exponent of equation 3,
//!
//! ```text
//! ρ = (1 − s/U) / (1 + (1 − 2c)·s/U),
//! ```
//!
//! the DATA-DEP curve of Figure 2. The runnable index here uses hyperplane (SimHash)
//! hashing as the sphere substrate — the same reduction with the SIMP exponent — because
//! the data-dependent scheme of \[9\] is a theoretical construction; the ρ *formulas* for
//! both are exposed so the benchmarks can compare predicted exponents with measured
//! candidate-set sizes.

use crate::error::{CoreError, Result};
use crate::mips::{MipsIndex, SearchResult};
use crate::problem::JoinSpec;
use ips_linalg::DenseVector;
use ips_lsh::rho::{rho_data_dependent, rho_simple_alsh};
use ips_lsh::simple_alsh::SimpleAlshFamily;
use ips_lsh::table::{IndexParams, LshIndex};
use rand::Rng;

/// Tuning parameters of the [`AlshMipsIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlshParams {
    /// Radius `U` of the query domain (data vectors must lie in the unit ball).
    pub query_radius: f64,
    /// Number of hyperplane bits per table (the AND-construction width `k`).
    pub bits_per_table: usize,
    /// Number of hash tables (the OR-construction width `L`).
    pub tables: usize,
    /// Cap on the number of candidates that are exactly re-scored per query; `None`
    /// re-scores every candidate.
    pub rescore_limit: Option<usize>,
    /// Extra query-directed probe buckets visited per table (see `ips_lsh::probe`).
    /// `0` (the default) is the classical single-bucket lookup, bit-identical to the
    /// pre-probing behaviour; larger values trade lookups for fewer tables.
    pub probes: usize,
}

impl Default for AlshParams {
    fn default() -> Self {
        Self {
            query_radius: 1.0,
            bits_per_table: 12,
            tables: 32,
            rescore_limit: None,
            probes: 0,
        }
    }
}

/// The Section 4.1 MIPS index: ball-to-sphere reduction + multi-table sphere LSH +
/// exact re-scoring of candidates.
///
/// The index is *dynamic*: [`AlshMipsIndex::insert`] and [`AlshMipsIndex::delete`]
/// maintain the hash tables incrementally using the functions sampled at build time, so
/// a serving process can mutate a loaded index without rebuilding it. Deleted slots are
/// tombstoned (their vector stays in `data` to keep slot ids stable) but are removed
/// from every hash table, so they can never appear as candidates again.
pub struct AlshMipsIndex {
    data: Vec<DenseVector>,
    live: Vec<bool>,
    live_count: usize,
    index: LshIndex<SimpleAlshFamily>,
    spec: JoinSpec,
    params: AlshParams,
    /// Quantized mirror of `data` for the cheap candidate-scoring kernel
    /// ([`AlshMipsIndex::set_scoring`]); cleared by insert/delete, which fall
    /// back to exact scoring (correctness never depends on this tile).
    quant: Option<ips_linalg::QuantTile>,
    /// Lifetime tallies of the quantized candidate kernel's activity
    /// (scored/pruned/rescored) — the serving telemetry reads deltas of this.
    kernel_counters: crate::kernel::KernelCounters,
}

impl AlshMipsIndex {
    /// Builds the index over `data` for the given `(cs, s)` spec.
    ///
    /// Every data vector must lie in the unit ball; queries must lie in the ball of
    /// radius `params.query_radius`, and the spec's threshold must satisfy
    /// `0 < s ≤ U` for the reduction to make sense.
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        data: Vec<DenseVector>,
        spec: JoinSpec,
        params: AlshParams,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataSet);
        }
        if spec.threshold > params.query_radius {
            return Err(CoreError::InvalidParameter {
                name: "spec.threshold",
                reason: format!(
                    "threshold {} exceeds the query radius {}; no pair can satisfy the promise",
                    spec.threshold, params.query_radius
                ),
            });
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
            if v.norm() > 1.0 + 1e-9 {
                return Err(CoreError::InvalidParameter {
                    name: "data",
                    reason: format!("data vector norm {} exceeds 1", v.norm()),
                });
            }
        }
        let family = SimpleAlshFamily::new(dim, params.query_radius, 1)?;
        let index_params = IndexParams {
            k: params.bits_per_table,
            l: params.tables,
        };
        let index = LshIndex::build(&family, index_params, &data, rng)?;
        let live_count = data.len();
        Ok(Self {
            live: vec![true; live_count],
            live_count,
            data,
            index,
            spec,
            params,
            quant: None,
            kernel_counters: crate::kernel::KernelCounters::new(),
        })
    }

    /// Applies a scoring-kernel selection: `quantized=true` packs the data
    /// into an `i8` tile so candidate scoring runs through the cheap
    /// prune-and-exact-rescore kernel (identical results — see
    /// [`crate::kernel`]). `dtype` does not apply to LSH candidate scoring
    /// (the candidate sets are small; the win is in the integer kernel), so
    /// only the `quantized` knob has an effect here.
    ///
    /// A subsequent [`AlshMipsIndex::insert`] or [`AlshMipsIndex::delete`]
    /// clears the tile and falls back to exact scoring; call this again after
    /// a batch of mutations to re-enable the cheap kernel.
    pub fn set_scoring(&mut self, options: crate::kernel::ScoringOptions) -> Result<()> {
        self.quant = if options.quantized {
            Some(ips_linalg::QuantTile::from_vectors(&self.data)?)
        } else {
            None
        };
        Ok(())
    }

    /// Inserts a new data vector, hashing it into every table with the functions
    /// sampled at build time, and returns its slot id.
    ///
    /// The vector must match the index dimension and lie in the unit ball. Slot ids
    /// are stable: they are never reused, so an id handed out here stays valid until
    /// [`AlshMipsIndex::delete`]d.
    pub fn insert(&mut self, v: DenseVector) -> Result<usize> {
        let dim = self.data[0].dim();
        if v.dim() != dim {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                actual: v.dim(),
            });
        }
        if v.norm() > 1.0 + 1e-9 {
            return Err(CoreError::InvalidParameter {
                name: "v",
                reason: format!("data vector norm {} exceeds 1", v.norm()),
            });
        }
        let id = self.data.len();
        self.index.insert(id as u32, &v)?;
        self.data.push(v);
        self.live.push(true);
        self.live_count += 1;
        // The quantized tile no longer mirrors the data; drop it so scoring
        // falls back to the exact path (see `set_scoring`).
        self.quant = None;
        Ok(id)
    }

    /// Deletes the vector in slot `id`: removes it from every hash table and
    /// tombstones the slot (the slot id is never reused).
    ///
    /// Returns an error for an out-of-range or already-deleted slot.
    pub fn delete(&mut self, id: usize) -> Result<()> {
        if id >= self.data.len() || !self.live[id] {
            return Err(CoreError::InvalidParameter {
                name: "id",
                reason: format!("slot {id} is out of range or already deleted"),
            });
        }
        self.index.remove(id as u32, &self.data[id])?;
        self.live[id] = false;
        self.live_count -= 1;
        self.quant = None;
        Ok(())
    }

    /// Whether slot `id` currently holds a live (non-deleted) vector.
    pub fn is_live(&self, id: usize) -> bool {
        self.live.get(id).copied().unwrap_or(false)
    }

    /// Total number of slots ever allocated, live or tombstoned
    /// ([`MipsIndex::len`] counts only live vectors).
    pub fn slots(&self) -> usize {
        self.data.len()
    }

    /// The underlying multi-table LSH index (persistence accessor).
    pub fn lsh_index(&self) -> &LshIndex<SimpleAlshFamily> {
        &self.index
    }

    /// Reassembles an index from previously extracted state — the inverse of
    /// [`AlshMipsIndex::data`] / [`AlshMipsIndex::lsh_index`] / accessors plus the
    /// liveness mask, used by snapshot persistence to restore an index bit-identically
    /// (same functions, same buckets, same query results) without re-sampling.
    pub fn from_raw_parts(
        data: Vec<DenseVector>,
        live: Vec<bool>,
        index: LshIndex<SimpleAlshFamily>,
        spec: JoinSpec,
        params: AlshParams,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::EmptyDataSet);
        }
        if live.len() != data.len() {
            return Err(CoreError::InvalidParameter {
                name: "live",
                reason: format!(
                    "liveness mask has {} entries for {} slots",
                    live.len(),
                    data.len()
                ),
            });
        }
        let dim = data[0].dim();
        for v in &data {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        let live_count = live.iter().filter(|&&l| l).count();
        if index.len() != live_count {
            return Err(CoreError::InvalidParameter {
                name: "index",
                reason: format!(
                    "LSH index stores {} points but the mask marks {live_count} live",
                    index.len()
                ),
            });
        }
        Ok(Self {
            data,
            live,
            live_count,
            index,
            spec,
            params,
            quant: None,
            kernel_counters: crate::kernel::KernelCounters::new(),
        })
    }

    /// The tuning parameters.
    pub fn params(&self) -> AlshParams {
        self.params
    }

    /// Overrides the number of extra probe buckets visited per table at query time
    /// (see [`AlshParams::probes`]). Probing is a pure query-time policy — the tables
    /// are untouched, so the override applies to the next search immediately and
    /// `set_probes(0)` restores the classical bit-identical lookup.
    pub fn set_probes(&mut self, probes: usize) {
        self.params.probes = probes;
    }

    /// The ρ exponent the *ideal* (data-dependent, equation 3) instantiation of this
    /// reduction would achieve for this index's spec.
    pub fn rho_data_dependent(&self) -> Result<f64> {
        Ok(rho_data_dependent(
            self.spec.threshold,
            self.spec.approximation,
            self.params.query_radius,
        )?)
    }

    /// The ρ exponent of the hyperplane-based instantiation actually built (the SIMP
    /// curve of Figure 2).
    pub fn rho_simple(&self) -> Result<f64> {
        Ok(rho_simple_alsh(
            self.spec.threshold,
            self.spec.approximation,
            self.params.query_radius,
        )?)
    }

    /// Number of candidates the underlying LSH tables produce for a query, before
    /// re-scoring — the quantity whose growth with `n` the ρ exponent predicts.
    pub fn candidate_count(&self, query: &DenseVector) -> Result<usize> {
        Ok(self.index.probe_lookup(query, self.params.probes)?.len())
    }

    /// The candidate data indices the underlying LSH tables produce for a query
    /// (deduplicated, ascending) — what the top-`k` search re-scores.
    pub fn candidate_indices(&self, query: &DenseVector) -> Result<Vec<usize>> {
        Ok(self.index.probe_lookup(query, self.params.probes)?)
    }

    /// The vectors held by the index, one per slot — tombstoned slots keep their
    /// vector (so slot ids stay stable) but never appear as candidates.
    pub fn data(&self) -> &[DenseVector] {
        &self.data
    }

    /// The quantized tile when the cheap candidate kernel is enabled
    /// ([`AlshMipsIndex::set_scoring`]) and no mutation has invalidated it.
    pub(crate) fn quant_tile(&self) -> Option<&ips_linalg::QuantTile> {
        self.quant.as_ref()
    }

    /// The quantized kernel's activity tallies (zero while exact scoring runs).
    pub fn kernel_activity(&self) -> crate::kernel::KernelActivity {
        self.kernel_counters.activity()
    }

    /// The counters the quantized candidate kernel ticks into.
    pub(crate) fn kernel_counters(&self) -> &crate::kernel::KernelCounters {
        &self.kernel_counters
    }
}

impl MipsIndex for AlshMipsIndex {
    fn len(&self) -> usize {
        self.live_count
    }

    fn spec(&self) -> JoinSpec {
        self.spec
    }

    fn search(&self, query: &DenseVector) -> Result<Option<SearchResult>> {
        let candidates = self.index.probe_lookup(query, self.params.probes)?;
        let limit = self.params.rescore_limit.unwrap_or(usize::MAX);
        let limited = &candidates[..candidates.len().min(limit)];
        let best = if let Some(quant) = &self.quant {
            // Cheap integer scoring + conservative pruning + exact rescoring:
            // identical result to the exact loop below (see `crate::kernel`).
            crate::kernel::best_among_candidates_quantized(
                &self.data,
                quant,
                limited,
                query,
                &self.spec,
                &self.kernel_counters,
            )?
        } else {
            let mut best: Option<SearchResult> = None;
            for &i in limited {
                let ip = self.data[i].dot(query)?;
                let value = self.spec.variant.value(ip);
                let better = best
                    .as_ref()
                    .map(|b| value > self.spec.variant.value(b.inner_product))
                    .unwrap_or(true);
                if better {
                    best = Some(SearchResult {
                        data_index: i,
                        inner_product: ip,
                    });
                }
            }
            best
        };
        // Only answers clearing the relaxed threshold cs are reported (Definition 1).
        Ok(best.filter(|b| self.spec.acceptable(b.inner_product)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::JoinVariant;
    use ips_linalg::random::{random_ball_vector, random_unit_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA15B)
    }

    fn spec(s: f64, c: f64) -> JoinSpec {
        JoinSpec::new(s, c, JoinVariant::Signed).unwrap()
    }

    #[test]
    fn build_validation() {
        let mut r = rng();
        assert!(
            AlshMipsIndex::build(&mut r, vec![], spec(0.5, 0.5), AlshParams::default()).is_err()
        );
        let too_long = vec![DenseVector::from(&[2.0, 0.0][..])];
        assert!(
            AlshMipsIndex::build(&mut r, too_long, spec(0.5, 0.5), AlshParams::default()).is_err()
        );
        let mixed = vec![
            DenseVector::from(&[0.5, 0.0][..]),
            DenseVector::from(&[0.5][..]),
        ];
        assert!(
            AlshMipsIndex::build(&mut r, mixed, spec(0.5, 0.5), AlshParams::default()).is_err()
        );
        let data = vec![DenseVector::from(&[0.5, 0.0][..])];
        assert!(
            AlshMipsIndex::build(&mut r, data, spec(2.0, 0.5), AlshParams::default()).is_err(),
            "threshold above the query radius must be rejected"
        );
    }

    #[test]
    fn finds_planted_high_inner_product() {
        let mut r = rng();
        let dim = 24;
        let n = 300;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let mut data: Vec<DenseVector> = (0..n)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.3))
            .collect();
        data[42] = query.scaled(0.9);
        let spec = spec(0.8, 0.6);
        let index = AlshMipsIndex::build(&mut r, data, spec, AlshParams::default()).unwrap();
        assert_eq!(index.len(), n);
        assert!(!index.is_empty());
        assert_eq!(index.spec(), spec);
        assert_eq!(index.data().len(), n);
        let hit = index
            .search(&query)
            .unwrap()
            .expect("planted point must be found");
        assert_eq!(hit.data_index, 42);
        assert!(hit.inner_product >= 0.8 - 1e-9);
        // Candidate sets should be (much) smaller than the data set.
        let candidates = index.candidate_count(&query).unwrap();
        assert!(candidates < n, "candidate set not pruned: {candidates}");
    }

    #[test]
    fn rho_accessors_match_figure2_formulas() {
        let mut r = rng();
        let data = vec![DenseVector::from(&[0.3, 0.1][..])];
        let s = spec(0.5, 0.7);
        let index = AlshMipsIndex::build(&mut r, data, s, AlshParams::default()).unwrap();
        let dd = index.rho_data_dependent().unwrap();
        let simp = index.rho_simple().unwrap();
        assert!((dd - rho_data_dependent(0.5, 0.7, 1.0).unwrap()).abs() < 1e-12);
        assert!((simp - rho_simple_alsh(0.5, 0.7, 1.0).unwrap()).abs() < 1e-12);
        assert!(dd <= simp);
        assert_eq!(index.params(), AlshParams::default());
    }

    #[test]
    fn low_similarity_queries_return_none() {
        let mut r = rng();
        let dim = 16;
        let data: Vec<DenseVector> = (0..100)
            .map(|_| random_unit_vector(&mut r, dim).unwrap().scaled(0.05))
            .collect();
        let spec = spec(0.5, 0.8);
        let index = AlshMipsIndex::build(&mut r, data, spec, AlshParams::default()).unwrap();
        let query = random_unit_vector(&mut r, dim).unwrap();
        // All inner products are at most 0.05 < cs = 0.4: nothing may be reported.
        assert!(index.search(&query).unwrap().is_none());
    }

    #[test]
    fn insert_and_delete_maintain_search_results() {
        let mut r = rng();
        let dim = 16;
        let query = random_unit_vector(&mut r, dim).unwrap();
        let data: Vec<DenseVector> = (0..120)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap().scaled(0.2))
            .collect();
        let spec = spec(0.8, 0.6);
        let mut index = AlshMipsIndex::build(&mut r, data, spec, AlshParams::default()).unwrap();
        // Nothing matches the query yet.
        assert!(index.search(&query).unwrap().is_none());
        // Insert a strong partner dynamically: it must now be found.
        let id = index.insert(query.scaled(0.9)).unwrap();
        assert_eq!(id, 120);
        assert_eq!(index.len(), 121);
        assert_eq!(index.slots(), 121);
        assert!(index.is_live(id));
        let hit = index.search(&query).unwrap().expect("inserted point found");
        assert_eq!(hit.data_index, id);
        // Delete it again: the index returns to reporting nothing.
        index.delete(id).unwrap();
        assert_eq!(index.len(), 120);
        assert_eq!(index.slots(), 121);
        assert!(!index.is_live(id));
        assert!(index.search(&query).unwrap().is_none());
        // A tombstoned or out-of-range slot cannot be deleted again.
        assert!(index.delete(id).is_err());
        assert!(index.delete(10_000).is_err());
        // Validation of dynamic inserts matches build validation.
        assert!(index.insert(DenseVector::zeros(dim + 1)).is_err());
        assert!(index
            .insert(random_unit_vector(&mut r, dim).unwrap().scaled(1.5))
            .is_err());
    }

    #[test]
    fn raw_parts_roundtrip_preserves_results() {
        let mut r = rng();
        let dim = 12;
        let data: Vec<DenseVector> = (0..80)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let spec = spec(0.4, 0.5);
        let index =
            AlshMipsIndex::build(&mut r, data.clone(), spec, AlshParams::default()).unwrap();
        let rebuilt = AlshMipsIndex::from_raw_parts(
            index.data().to_vec(),
            (0..index.slots()).map(|i| index.is_live(i)).collect(),
            super::LshIndex::from_raw_parts(
                index.lsh_index().functions().to_vec(),
                index.lsh_index().tables().to_vec(),
                index.lsh_index().params(),
                index.lsh_index().len(),
            )
            .unwrap(),
            index.spec(),
            index.params(),
        )
        .unwrap();
        for q in &data[..10] {
            assert_eq!(index.search(q).unwrap(), rebuilt.search(q).unwrap());
        }
        // A liveness mask that disagrees with the LSH index is rejected.
        assert!(AlshMipsIndex::from_raw_parts(
            index.data().to_vec(),
            vec![false; index.slots()],
            super::LshIndex::from_raw_parts(
                index.lsh_index().functions().to_vec(),
                index.lsh_index().tables().to_vec(),
                index.lsh_index().params(),
                index.lsh_index().len(),
            )
            .unwrap(),
            index.spec(),
            index.params(),
        )
        .is_err());
    }

    #[test]
    fn probes_enlarge_candidates_without_changing_validity() {
        let mut r = rng();
        let dim = 16;
        let data: Vec<DenseVector> = (0..150)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let spec = spec(0.5, 0.5);
        let mut index =
            AlshMipsIndex::build(&mut r, data.clone(), spec, AlshParams::default()).unwrap();
        let queries: Vec<DenseVector> = (0..10)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let baseline: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| index.candidate_indices(q).unwrap())
            .collect();
        index.set_probes(4);
        assert_eq!(index.params().probes, 4);
        let mut grew = false;
        for (q, base) in queries.iter().zip(&baseline) {
            let probed = index.candidate_indices(q).unwrap();
            assert!(base.iter().all(|i| probed.contains(i)));
            grew |= probed.len() > base.len();
            // Any reported answer still clears the relaxed threshold.
            if let Some(hit) = index.search(q).unwrap() {
                assert!(spec.acceptable(hit.inner_product));
            }
        }
        assert!(grew, "probing never enlarged a candidate set");
        // Returning to zero probes restores the classical candidates exactly.
        index.set_probes(0);
        for (q, base) in queries.iter().zip(&baseline) {
            assert_eq!(&index.candidate_indices(q).unwrap(), base);
        }
    }

    #[test]
    fn rescore_limit_is_respected() {
        let mut r = rng();
        let dim = 8;
        let data: Vec<DenseVector> = (0..50)
            .map(|_| random_ball_vector(&mut r, dim, 1.0).unwrap())
            .collect();
        let params = AlshParams {
            rescore_limit: Some(1),
            ..Default::default()
        };
        let spec = spec(0.9, 0.1);
        let index = AlshMipsIndex::build(&mut r, data, spec, params).unwrap();
        let query = random_unit_vector(&mut r, dim).unwrap();
        // With a rescore limit of one, the search still runs and returns either nothing
        // or a pair clearing cs.
        if let Some(hit) = index.search(&query).unwrap() {
            assert!(spec.acceptable(hit.inner_product));
        }
    }
}
