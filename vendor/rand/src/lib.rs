//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the subset of the `rand` 0.8 API the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is deterministic for a given seed (the property every test and
//! experiment in the workspace relies on) but is *not* the same stream as the
//! upstream `StdRng` (ChaCha12); seeds were chosen independently per call site,
//! so nothing depends on the exact stream identity.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod rngs;

pub use distributions::{SampleRange, SampleUniform, StandardSample};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full range for integers, uniform in `[0, 1)` for floats,
    /// fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (`low..high` or `low..=high`).
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        T: SampleUniform,
        RA: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with values sampled from their standard distributions.
    fn fill<T: StandardSample + Copy>(&mut self, dest: &mut [T]) {
        for slot in dest.iter_mut() {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 state expansion.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from operating-system entropy.
    ///
    /// Offline stand-in: derives the seed from the system clock and a
    /// process-local counter, which is enough for the non-test call sites
    /// that just want "some fresh stream".
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(5i32..=8);
            assert!((5..=8).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let expected = draws / 8;
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn bool_coin_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(23);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
