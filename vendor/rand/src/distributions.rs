//! Standard and uniform sampling for the primitive types the workspace uses.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable from their "standard" distribution: uniform over the whole
/// range for integers, uniform in `[0, 1)` for floats, a fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]`. Panics when `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Maps 64 random bits into `[0, span)` without modulo bias (widening multiply).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain request: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let value = low + (high - low) * unit;
                // Floating rounding can land exactly on `high`; clamp just inside.
                if value < high { value } else { <$t>::from_bits(high.to_bits() - 1) }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 2];
        for _ in 0..1_000 {
            match rng.gen_range(0u32..=1) {
                0 => seen[0] = true,
                1 => seen[1] = true,
                _ => unreachable!(),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.gen_range(3usize..3);
    }

    #[test]
    fn float_half_open_never_returns_high() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100_000 {
            let x = rng.gen_range(0.0f64..1e-12);
            assert!(x < 1e-12);
        }
    }
}
