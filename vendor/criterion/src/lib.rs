//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over a simple wall-clock
//! measurement loop: a warm-up phase sizes the iteration batch, then
//! `sample_size` batches are timed and min / median / mean per-iteration times
//! are printed. No statistical regression analysis, HTML reports or saved
//! baselines; `--no-run` compile checks and honest relative timings are the
//! goal.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id rendered as just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    /// Converts to the printable id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Runs the timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, called repeatedly; timings are recorded per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find an iteration count that makes one batch ≥ ~5 ms, so
        // Instant overhead stays negligible even for nanosecond bodies.
        let target = Duration::from_millis(5);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = target.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale.clamp(1.5, 8.0)) as u64).max(iters + 1)
            };
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_name:<50} (no samples recorded)");
        return;
    }
    let per_iter: Vec<Duration> = bencher
        .samples
        .iter()
        .map(|s| *s / bencher.iters_per_sample.max(1) as u32)
        .collect();
    let mut sorted = per_iter.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    println!(
        "{full_name:<50} min {:>10}   median {:>10}   mean {:>10}   ({} samples × {} iters)",
        format_duration(min),
        format_duration(median),
        format_duration(mean),
        per_iter.len(),
        bencher.iters_per_sample,
    );
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The benchmark context handed to every bench target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, N, F>(&mut self, id: N, input: &I, f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is just a marker).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
///
/// Arguments passed by `cargo bench` (e.g. `--bench`, filters) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("p", 7), &7, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
