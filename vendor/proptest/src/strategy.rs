//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Offline stand-in: strategies sample directly (no shrink trees), so the trait
/// is just "produce one value from an RNG" plus the mapping combinators.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` to pick a dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);

impl Strategy for () {
    type Value = ();

    fn sample(&self, _rng: &mut StdRng) -> Self::Value {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_maps_and_tuples_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (1usize..4, 0.0f64..1.0)
            .prop_flat_map(|(n, x)| crate::collection::vec(0i32..10, n).prop_map(move |v| (v, x)));
        for _ in 0..200 {
            let (v, x) = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|e| (0..10).contains(e)));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
