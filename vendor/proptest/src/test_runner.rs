//! Configuration, failure reporting and deterministic per-case RNG for the
//! [`crate::proptest!`] harness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Why one sampled case did not pass: a genuine failure (`prop_assert!`) or a
/// rejection (`prop_assume!` filtered the inputs out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The inputs were rejected by an assumption; the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(reason) => write!(f, "{reason}"),
            Self::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// How the [`crate::proptest!`] harness runs a property (`Config` upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the offline runner uses fewer because
        // several properties here build LSH indexes per case.
        Self { cases: 64 }
    }
}

/// Deterministic RNG for one case of one property: seeded from an FNV-1a hash
/// of the fully qualified test name and the case number, so reruns (locally and
/// in CI) always sample the same cases.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn distinct_names_and_cases_give_distinct_streams() {
        let a = case_rng("mod::test_a", 0).next_u64();
        let b = case_rng("mod::test_b", 0).next_u64();
        let c = case_rng("mod::test_a", 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_rng("mod::test_a", 0).next_u64());
    }
}
