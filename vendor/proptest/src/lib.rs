//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support);
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   numeric ranges and tuples of strategies;
//! * [`arbitrary::any`] for primitives;
//! * [`collection::vec`] with `usize` / range size arguments;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: cases are sampled from a seed derived
//! deterministically from the test name (stable across runs — failures always
//! reproduce), and failing cases are **not shrunk**; the failure message reports
//! the case number instead of a minimal counterexample.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The whole public API again, under the `prop` name the prelude glob exposes.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test, returning
/// [`test_runner::TestCaseError::Fail`] from the enclosing `Result` function
/// (the [`proptest!`] harness wraps each body in one, so `?` works as upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Rejects the current case when the condition does not hold; rejected cases
/// are skipped without counting as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` (the attribute is written explicitly by the caller, as with
/// upstream proptest) that samples the strategies for `config.cases` cases and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)*);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    #[allow(unused_variables, unused_mut)]
                    let ($($arg,)*) = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Fail(reason))) => {
                            panic!(
                                "proptest case {case}/{} of `{}` failed: {reason} (offline runner: no shrinking)",
                                config.cases,
                                stringify!($name),
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest case {case}/{} of `{}` panicked (offline runner: no shrinking)",
                                config.cases,
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{@run ($config) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@run ($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}
