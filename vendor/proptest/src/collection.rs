//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The number of elements a collection strategy may generate (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range must be non-empty");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(
            r.start() <= r.end(),
            "collection size range must be non-empty"
        );
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`]; `size` may be a `usize`, a `Range` or a `RangeInclusive`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(vec(0u32..5, 7).sample(&mut rng).len(), 7);
        for _ in 0..100 {
            let v = vec(0u32..5, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = vec(0u32..5, 3..=4).sample(&mut rng);
            assert!((3..=4).contains(&w.len()));
        }
    }
}
