//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i32, i64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: u64 = any::<u64>().sample(&mut rng);
        let b: u64 = any::<u64>().sample(&mut rng);
        assert_ne!(a, b);
    }
}
