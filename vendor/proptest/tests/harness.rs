//! Exercises the `proptest!` macro grammar the workspace's test files use.

use proptest::prelude::*;

fn pairs(len: usize) -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0u32..100, any::<bool>()), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ranges_stay_in_bounds(x in 1usize..40, y in 0.0f64..3.0, z in 2usize..=6) {
        prop_assert!((1..40).contains(&x));
        prop_assert!((0.0..3.0).contains(&y));
        prop_assert!((2..=6).contains(&z));
    }

    #[test]
    fn flat_mapped_collections_work(
        rows in (1usize..5, 2usize..6).prop_flat_map(|(n, dim)| {
            prop::collection::vec(prop::collection::vec(-0.4f64..0.4, dim..=dim), n..=n)
        }),
        seed in any::<u64>(),
    ) {
        prop_assert!(!rows.is_empty());
        let dim = rows[0].len();
        prop_assert!(rows.iter().all(|r| r.len() == dim));
        let _ = seed;
    }
}

proptest! {
    #[test]
    fn default_config_runs(v in pairs(3), flag in any::<bool>()) {
        prop_assert_eq!(v.len(), 3);
        let _ = flag;
    }
}

#[test]
fn cases_are_deterministic_across_processes() {
    use proptest::strategy::Strategy;
    let mut rng = proptest::test_runner::case_rng("harness::fixed", 0);
    let a = (0u32..1000).sample(&mut rng);
    let mut rng = proptest::test_runner::case_rng("harness::fixed", 0);
    let b = (0u32..1000).sample(&mut rng);
    assert_eq!(a, b);
}
