//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, which are
//! unavailable offline). Supports the shapes the workspace actually derives on:
//! plain non-generic `struct`s and `enum`s. Generic types get no impl (the
//! workspace has none today); deriving on one is a compile error at the use site
//! the moment a bound is required, which is the failure mode we want.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword, or
/// `None` when the type is generic (a `<` immediately follows the name).
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}
