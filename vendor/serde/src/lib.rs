//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) framework.
//!
//! The build environment has no access to crates.io. The workspace only *derives*
//! `Serialize` / `Deserialize` (no serialization backend such as `serde_json` is
//! used anywhere), so this vendored crate provides the two traits as markers and
//! re-exports a minimal derive that implements them. Code can keep writing
//! `#[derive(Serialize, Deserialize)]` and downstream crates can take
//! `T: Serialize` bounds; swapping in the real `serde` later is a manifest change
//! only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// Offline stand-in: carries no methods because no serialization backend is
/// available in this environment; the derive implements it so trait bounds and
/// derives compile unchanged.
pub trait Serialize {}

/// Marker for types that can be deserialized.
///
/// See [`Serialize`] for why this is a marker in the offline build.
pub trait Deserialize<'de>: Sized {}
